#!/usr/bin/env python3
"""Network packet processing on a GPU: the 40 us IPV6 deadline.

The few-kernel side of the paper (Section 3.1.2): IPV6 longest-prefix
matching must finish within 40 us and CUCKOO hash lookups within 600 us,
with batches of 8192 packets arriving at line rate.  At these time scales
a single bad scheduling decision blows the deadline, and CPU-side
schedulers lose just from communication latency — Baymax's 50 us
prediction call alone exceeds the whole IPV6 budget.

This example runs both networking benchmarks at line rate and prints the
deadline-success picture per scheduler, including where each scheduler's
time went (useful vs wasted workgroups).

Run:  python examples/packet_processing.py [--jobs N]
"""

import argparse

from repro import build_workload, make_scheduler, run_workload
from repro.harness.formatting import format_table
from repro.units import to_us

SCHEDULERS = ("RR", "EDF", "BAY", "LAX-SW", "LAX")


def run_benchmark(benchmark: str, num_jobs: int):
    rows = []
    for scheduler in SCHEDULERS:
        jobs = build_workload(benchmark, "high", num_jobs=num_jobs, seed=1)
        deadline_us = to_us(jobs[0].deadline)
        metrics = run_workload(make_scheduler(scheduler), jobs)
        p99 = metrics.p99_latency_ticks
        rows.append((
            scheduler,
            f"{metrics.jobs_meeting_deadline}/{metrics.num_jobs}",
            metrics.jobs_rejected,
            f"{to_us(int(p99)):.0f} us" if p99 is not None else "-",
            f"{metrics.effective_wg_fraction * 100:.0f}%",
        ))
    return deadline_us, rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=96,
                        help="packet batches per benchmark")
    args = parser.parse_args()
    for benchmark in ("IPV6", "CUCKOO"):
        deadline_us, rows = run_benchmark(benchmark, args.jobs)
        print(format_table(
            ("scheduler", "met deadline", "rejected", "p99",
             "useful work"),
            rows,
            title=(f"\n{benchmark}: 8192-packet batches at line rate, "
                   f"{deadline_us:.0f} us deadline")))
    print("\nNote how BAY completes zero IPV6 batches: its prediction"
          "\nmodel costs more than the entire deadline (Section 6.1.1),"
          "\nwhile LAX's in-CP admission keeps the device doing only"
          "\nwork that can still make it.")


if __name__ == "__main__":
    main()
