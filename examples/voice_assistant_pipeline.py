#!/usr/bin/env python3
"""Intelligent personal assistant: sharing a GPU between ASR stages.

Section 3.1.3's scenario: the GMM scoring and STEM stemming stages of a
Sirius/Lucida-style speech pipeline are offloaded to a GPU, each with its
own real-time budget (3 ms and 300 us).  Here the two stages arrive as
*interleaved* request streams — a situation the paper's per-benchmark
evaluation approximates by running one type at a time — and the laxity
scheduler must juggle two very different deadline scales at once.

This exercises LAX's per-kernel-type completion-rate tracking: GMM and
STEM kernels have independent rates in the Kernel Profiling Table, so
their laxity estimates stay accurate even when the device runs a mix.

Run:  python examples/voice_assistant_pipeline.py [--queries N]
"""

import argparse

from repro import build_workload, make_scheduler, run_workload
from repro.harness.formatting import format_table
from repro.units import to_us

SCHEDULERS = ("RR", "EDF", "LAX")


def build_pipeline_workload(num_queries: int, seed: int):
    """Interleave GMM and STEM request streams on one device.

    Each assistant query contributes one GMM scoring job and several STEM
    jobs (stemming runs per recognised word); job ids are remapped to keep
    them unique across the merged stream.
    """
    gmm = build_workload("GMM", "medium", num_jobs=num_queries, seed=seed)
    stem = build_workload("STEM", "medium", num_jobs=num_queries * 3,
                          seed=seed + 1)
    merged = []
    for index, job in enumerate(sorted(gmm + stem,
                                       key=lambda j: (j.arrival, j.benchmark,
                                                      j.job_id))):
        job.job_id = index
        merged.append(job)
    return merged


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=24,
                        help="assistant queries (1 GMM + 3 STEM jobs each)")
    args = parser.parse_args()
    rows = []
    for scheduler in SCHEDULERS:
        jobs = build_pipeline_workload(args.queries, seed=1)
        metrics = run_workload(make_scheduler(scheduler), jobs)
        per_stage = {}
        for stage in ("GMM", "STEM"):
            outcomes = [o for o in metrics.outcomes if o.benchmark == stage]
            met = sum(1 for o in outcomes if o.met_deadline)
            per_stage[stage] = f"{met}/{len(outcomes)}"
        p99 = metrics.p99_latency_ticks
        rows.append((scheduler, per_stage["GMM"], per_stage["STEM"],
                     f"{to_us(int(p99)):.0f} us" if p99 is not None else "-",
                     f"{metrics.wasted_wg_fraction * 100:.0f}%"))
    print(format_table(
        ("scheduler", "GMM met (3 ms)", "STEM met (300 us)",
         "p99 latency", "wasted work"),
        rows,
        title=(f"Mixed ASR pipeline: {args.queries} queries "
               f"({args.queries} GMM + {args.queries * 3} STEM jobs)")))
    print("\nWith two deadline scales in flight, deadline-blind RR starves"
          "\nthe 300 us STEM jobs behind 1.5 ms GMM workgroups; LAX's"
          "\nper-kernel completion rates keep both estimates honest.")


if __name__ == "__main__":
    main()
