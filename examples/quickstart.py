#!/usr/bin/env python3
"""Quickstart: run LAX against the contemporary round-robin baseline.

Builds one of the paper's workloads (LSTM inference requests arriving at
the high Table 4 rate), runs it under the deadline-blind RR scheduler that
contemporary GPUs implement and under LAX, and prints the comparison the
paper is about: how many jobs met their 7 ms deadline, how much of the
device's work was wasted on jobs that missed, and the tail latency.

Run:  python examples/quickstart.py
"""

from repro import build_workload, make_scheduler, run_workload
from repro.harness.formatting import format_table
from repro.units import to_ms


def run_one(scheduler_name: str):
    """One simulation cell: 64 LSTM jobs at the high arrival rate."""
    jobs = build_workload("LSTM", rate_level="high", num_jobs=64, seed=1)
    policy = make_scheduler(scheduler_name)
    return run_workload(policy, jobs)


def main() -> None:
    rows = []
    for name in ("RR", "LAX"):
        metrics = run_one(name)
        p99 = metrics.p99_latency_ticks
        rows.append((
            name,
            f"{metrics.jobs_meeting_deadline}/{metrics.num_jobs}",
            metrics.jobs_rejected,
            f"{metrics.wasted_wg_fraction * 100:.0f}%",
            f"{to_ms(int(p99)):.2f} ms" if p99 is not None else "-",
            f"{metrics.successful_throughput:.0f}/s",
        ))
    print(format_table(
        ("scheduler", "met deadline", "rejected", "wasted work",
         "p99 latency", "successful throughput"),
        rows,
        title="LSTM inference, high arrival rate (7 ms deadline)"))
    print("\nLAX meets more deadlines by rejecting work it cannot finish"
          "\nand prioritising the jobs with the least laxity.")


if __name__ == "__main__":
    main()
