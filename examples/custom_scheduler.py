#!/usr/bin/env python3
"""Writing your own GPU kernel scheduler against the public API.

The scheduler interface is small: subclass
:class:`repro.SchedulerPolicy`, override the hooks you need, and run any
workload through :func:`repro.run_workload`.  This example implements a
*deadline-slack-fair* policy — a simplified laxity variant that ranks jobs
by remaining deadline budget only (no work estimation at all) — and shows
it landing between EDF and the full LAX on a mixed workload, which is a
nice demonstration of how much of LAX's win comes from the remaining-work
estimate rather than deadline awareness alone.

Run:  python examples/custom_scheduler.py
"""

from repro import SchedulerPolicy, build_workload, make_scheduler, run_workload
from repro.harness.formatting import format_table
from repro.sim.engine import PeriodicTask


class SlackFairScheduler(SchedulerPolicy):
    """Rank jobs by remaining deadline budget, refreshed every 100 us.

    Compared to LAX this knows each job's deadline but nothing about its
    remaining work, so two jobs with equal budgets rank equally even when
    one has 10x the work left — exactly the blind spot Equation 1's
    ``RemTime`` term exists to fix.
    """

    name = "SLACK"

    def __init__(self) -> None:
        super().__init__()
        self._updater = None

    def start(self) -> None:
        self._updater = PeriodicTask(
            self.ctx.sim, self.ctx.config.overheads.lax_update_period,
            self._refresh, self._any_live_jobs)

    def on_job_admitted(self, job) -> None:
        job.priority = float(job.deadline)
        self._updater.ensure_running()

    def _refresh(self) -> None:
        now = self.ctx.now
        for job in self.ctx.live_jobs():
            job.priority = float(job.deadline - job.elapsed(now))


def evaluate(policy_factory, benchmark: str, num_jobs: int = 64):
    jobs = build_workload(benchmark, "high", num_jobs=num_jobs, seed=1)
    return run_workload(policy_factory(), jobs)


def main() -> None:
    rows = []
    for benchmark in ("LSTM", "STEM"):
        for label, factory in (
                ("EDF", lambda: make_scheduler("EDF")),
                ("SLACK (custom)", SlackFairScheduler),
                ("LAX", lambda: make_scheduler("LAX"))):
            metrics = evaluate(factory, benchmark)
            rows.append((benchmark, label,
                         f"{metrics.jobs_meeting_deadline}/{metrics.num_jobs}",
                         f"{metrics.wasted_wg_fraction * 100:.0f}%"))
        rows.append(("", "", "", ""))
    print(format_table(
        ("benchmark", "scheduler", "met deadline", "wasted work"),
        rows,
        title="A custom policy in ~20 lines, vs EDF and full LAX"))
    print("\nSLACK's deadline awareness helps over EDF's static ordering,"
          "\nbut without work estimates and admission it still burns the"
          "\ndevice on jobs that were never going to finish.")


if __name__ == "__main__":
    main()
