#!/usr/bin/env python3
"""RNN inference serving: arrival-rate sweep across schedulers.

The paper's motivating scenario (Sections 1 and 3): a datacenter GPU
serves RNN inference requests — each a chain of ~100 small kernels whose
length follows the WMT'15 sequence-length distribution — under a 7 ms
SLA.  This example sweeps the three Table 4 arrival rates over a set of
schedulers and shows where each one starts missing deadlines, plus how
LAX's admission control keeps the tail latency bounded while the
deadline-blind policies let it balloon.

Run:  python examples/rnn_inference_serving.py [--jobs N]
"""

import argparse

from repro import build_workload, make_scheduler, run_workload
from repro.harness.formatting import format_table
from repro.units import to_ms
from repro.workloads.registry import RATE_LEVELS

SCHEDULERS = ("RR", "SJF", "PREMA", "BAY", "LAX")


def sweep(benchmark: str, num_jobs: int):
    rows = []
    for rate in RATE_LEVELS:
        for scheduler in SCHEDULERS:
            jobs = build_workload(benchmark, rate, num_jobs=num_jobs, seed=1)
            metrics = run_workload(make_scheduler(scheduler), jobs)
            p99 = metrics.p99_latency_ticks
            rows.append((
                rate, scheduler,
                f"{metrics.deadline_ratio * 100:.0f}%",
                metrics.jobs_rejected,
                f"{to_ms(int(p99)):.2f}" if p99 is not None else "-",
                f"{metrics.energy_per_successful_job_mj:.2f}"
                if metrics.energy_per_successful_job_mj is not None else "-",
            ))
        rows.append(("", "", "", "", "", ""))
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=64,
                        help="requests per sweep cell (paper uses 128)")
    parser.add_argument("--benchmark", default="LSTM",
                        choices=("LSTM", "GRU", "VAN", "HYBRID"))
    args = parser.parse_args()
    rows = sweep(args.benchmark, args.jobs)
    print(format_table(
        ("arrival rate", "scheduler", "SLA met", "rejected",
         "p99 (ms)", "mJ/success"),
        rows,
        title=(f"{args.benchmark} inference serving under a 7 ms SLA "
               f"({args.jobs} requests)")))
    print("\nReading the table: at the low rate everyone is fine; as the"
          "\nrate rises, deadline-blind schedulers melt down while LAX"
          "\nsheds exactly the load it cannot serve.")


if __name__ == "__main__":
    main()
