#!/usr/bin/env python3
"""Tracing a run: what the device was doing, and when.

Attaches a :class:`repro.TraceRecorder` to a simulation, runs an
overloaded IPV6 burst under RR and LAX, and renders the device's
in-flight workgroup count over time.  The two pictures explain the
paper's Figure 9 numbers at a glance: the deadline-blind scheduler keeps
the device packed with work that will miss anyway, while LAX's admission
keeps occupancy at exactly what the deadlines can absorb.

The trace can also be exported (JSONL/CSV) for external tooling:

    trace.to_jsonl("run.jsonl")

Run:  python examples/device_timeline.py
"""

from repro import (TraceRecorder, build_workload, make_scheduler,
                   occupancy_timeline, render_occupancy)
from repro.config import SimConfig
from repro.sim.device import GPUSystem
from repro.units import US


def traced_run(scheduler_name: str):
    trace = TraceRecorder(wg_events=True)
    system = GPUSystem(make_scheduler(scheduler_name), SimConfig(),
                       trace=trace)
    jobs = build_workload("IPV6", "high", num_jobs=48, seed=1)
    system.submit_workload(jobs)
    metrics = system.run()
    return trace, metrics


def main() -> None:
    for name in ("RR", "LAX"):
        trace, metrics = traced_run(name)
        timeline = occupancy_timeline(trace, bucket=50 * US)
        counts = trace.counts()
        print(f"\n=== {name}: in-flight WGs over time "
              f"(met {metrics.jobs_meeting_deadline}/48 deadlines, "
              f"{counts.get('job_rejected', 0)} rejected) ===")
        print(f"{'time (ns)':>12s}  {'WGs':>5s}")
        print(render_occupancy(timeline, width=48, max_rows=18))
    print("\nRR packs the device with doomed work (every job arrives,"
          "\nevery job shares, every job misses); LAX admits only what"
          "\nthe 40 us deadline can absorb, so occupancy stays shallow"
          "\nand each admitted burst finishes in time.")


if __name__ == "__main__":
    main()
