"""Exception hierarchy for the LAX reproduction.

All errors raised by the package derive from :class:`ReproError` so callers
can catch everything from this library with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state."""


class SchedulingError(SimulationError):
    """A scheduling policy violated a device invariant."""


class ResourceError(SimulationError):
    """A compute-unit resource limit was violated."""


class WorkloadError(ReproError):
    """A workload description is malformed or unknown."""


class HarnessError(ReproError):
    """An experiment specification is malformed or cannot be run."""


class TelemetryError(ReproError):
    """A telemetry event, metric, or exported bundle is malformed."""
