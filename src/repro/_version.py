"""Version of the LAX reproduction package."""

__version__ = "1.0.0"
