"""The device contract: what it means to be a schedulable accelerator.

Every tier that runs jobs — the single simulated GPU
(:class:`~repro.sim.device.GPUSystem`) and the multi-GPU fleet
(:class:`~repro.cluster.system.ClusterSystem`) — exposes the same
surface, so call sites are interchangeable:

* ``submit_workload(jobs)`` — pre-generated finite job list, once;
* ``submit_stream(jobs, max_jobs=, lookahead=)`` — lazy arrival
  stream, once;
* ``run()`` — drain to completion and return the run summary
  (:class:`~repro.metrics.collector.RunMetrics` or the fleet-level
  :class:`~repro.cluster.metrics.ClusterMetrics`, which mirrors the
  same headline properties);
* construction-time attachment of telemetry (``telemetry=`` hub) and
  the job-retirement memory mode (``retire=``).

:class:`Device` is a :func:`typing.runtime_checkable` protocol, so
``isinstance(system, Device)`` verifies the method surface at runtime;
:class:`GPUSystem` is the reference implementation.
"""

from __future__ import annotations

from typing import Iterable, Optional, Protocol, runtime_checkable


@runtime_checkable
class Device(Protocol):
    """Anything that accepts a workload and runs it to completion.

    The protocol captures the implicit contract the harness, CLI and
    benchmarks were already written against.  Implementations must
    enforce single submission (a second ``submit_*`` call raises
    :class:`~repro.errors.SimulationError`) and reject empty
    workloads.
    """

    def submit_workload(self, jobs: Iterable) -> None:
        """Accept a finite, pre-generated job list; once per device."""
        ...  # pragma: no cover - protocol stub

    def submit_stream(self, jobs: Iterable, max_jobs: Optional[int] = None,
                      lookahead: int = 1):
        """Accept a lazy arrival stream (monotone non-decreasing
        arrivals), truncated at ``max_jobs``; once per device."""
        ...  # pragma: no cover - protocol stub

    def run(self):
        """Drain the submitted workload and return the run summary."""
        ...  # pragma: no cover - protocol stub
