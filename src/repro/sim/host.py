"""Simulated CPU host for CPU-side schedulers.

BAT, BAY, PRO and LAX-SW/LAX-CPU run their logic on the host and talk to
the GPU over an interconnect.  Per Section 5.1, every command (kernel
launch, priority-register write) costs one ``host_device_latency`` (4 us),
and the host learns about device events (kernel/job completions) the same
latency late.  The :class:`Host` provides those delayed command channels;
the CPU-side policy base class layers control loops on top.

Host-side rejection (a job the host never offloads) is also handled here,
so rejected jobs consume no device resources at all.
"""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

from ..config import OverheadConfig
from ..errors import SimulationError
from .engine import Simulator
from .job import Job, JobState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..metrics.collector import MetricsCollector
    from .command_processor import CommandProcessor


class Host:
    """Command channel between a CPU-side scheduler and the GPU."""

    def __init__(self, sim: Simulator, overheads: OverheadConfig,
                 cp: "CommandProcessor", metrics: "MetricsCollector") -> None:
        self._sim = sim
        self._overheads = overheads
        self._cp = cp
        self._metrics = metrics
        #: Kernel launches sent (diagnostics).
        self.commands_sent = 0

    @property
    def latency(self) -> int:
        """One-way host-device communication latency, ticks."""
        return self._overheads.host_device_latency

    # ------------------------------------------------------------------
    # Commands (each pays one interconnect crossing)
    # ------------------------------------------------------------------

    def submit_job(self, job: Job, release: int = 1) -> None:
        """Offload ``job`` with its first ``release`` kernels launched.

        The device-side inspection/admission steps are skipped — the host
        already knows the stream contents and made its own decision.
        """
        if job.state is not JobState.INIT:
            raise SimulationError(
                f"host submitting job {job.job_id} in state {job.state}")
        if not 1 <= release <= job.num_kernels:
            raise SimulationError(
                f"host release count {release} invalid for job {job.job_id}")
        self.commands_sent += 1
        self._sim.schedule(self.latency, self._do_submit, job, release)

    def release_next_kernel(self, job: Job) -> None:
        """Launch the job's next kernel (one more stream packet)."""
        self.commands_sent += 1
        self._sim.schedule(self.latency, self._do_release, job)

    def release_all_kernels(self, job: Job) -> None:
        """Launch every remaining kernel at once (one command; the device
        chains dependent kernels itself).  Used by LAX-CPU."""
        self.commands_sent += 1
        self._sim.schedule(self.latency, self._do_release_all, job)

    def set_priority(self, job: Job, priority: float) -> None:
        """Write the job's queue-priority register (LAX-CPU's API)."""
        self.commands_sent += 1
        self._sim.schedule(self.latency, self._do_set_priority, job, priority)

    def reject_job(self, job: Job) -> None:
        """Decline to offload ``job``; it never touches the device."""
        job.mark_rejected(self._sim.now)
        self._metrics.on_job_rejected(job)
        self._cp.retire_job(job)

    def cancel_job(self, job: Job) -> None:
        """Late-reject an already-offloaded job (one command crossing)."""
        self.commands_sent += 1
        self._sim.schedule(self.latency, self._do_cancel, job)

    def _do_cancel(self, job: Job) -> None:
        if job.is_live:
            self._cp.cancel_job(job)

    # ------------------------------------------------------------------
    # Notifications: run ``callback`` latency ticks after the event
    # ------------------------------------------------------------------

    def notify(self, callback: Callable[..., None], *args: object) -> None:
        """Deliver a device event to host software, one crossing late."""
        self._sim.schedule(self.latency, callback, *args)

    # ------------------------------------------------------------------
    # Deferred executions (device side)
    # ------------------------------------------------------------------

    def _do_submit(self, job: Job, release: int) -> None:
        if job.is_done:
            return
        job.released_kernels = release
        self._cp.submit_job(job, skip_inspection=True)

    def _do_release(self, job: Job) -> None:
        if job.is_done:
            return
        if job.released_kernels < job.num_kernels:
            job.released_kernels += 1
        self._cp.poke(job)

    def _do_release_all(self, job: Job) -> None:
        if job.is_done:
            return
        job.released_kernels = job.num_kernels
        self._cp.poke(job)

    def _do_set_priority(self, job: Job, priority: float) -> None:
        if job.is_done:
            return
        job.priority = priority
        # The register write may reorder the job's active kernels.
        self._cp.dispatcher.invalidate_order()
