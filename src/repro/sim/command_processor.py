"""Command processor (CP): queue management, inspection, kernel chaining.

The CP is the integrated microprocessor that parses queue packets and
launches kernels (Section 2.1 of the paper).  Here it:

* binds each submitted job's stream to a hardware compute queue (or the
  backlog when all 128 are busy),
* models **stream inspection** with a parser bank that handles four streams
  in parallel every 2 us (Section 5), producing the WGList the policy's
  admission logic consumes,
* runs the policy's admission decision and either readies or rejects the
  job,
* chains dependent kernels: when kernel ``i`` completes, kernel ``i + 1``
  activates after one CP parse latency, and
* retires jobs, releasing their queues to backlogged arrivals.
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from ..config import OverheadConfig
from ..errors import SimulationError
from . import job_pool
from .engine import Simulator
from .job import Job, JobState
from .kernel import KernelInstance

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.profiling import KernelProfilingTable
    from ..metrics.collector import MetricsCollector
    from ..schedulers.base import SchedulerPolicy
    from .dispatcher import WGDispatcher
    from .queues import QueuePool


class _ParserBank:
    """Four-wide stream parser: each inspection occupies a slot for 2 us."""

    def __init__(self, width: int, latency: int) -> None:
        self._free_at = [0] * width
        self._latency = latency

    def admit(self, now: int) -> int:
        """Reserve the earliest slot; return the inspection-done time."""
        index = min(range(len(self._free_at)), key=self._free_at.__getitem__)
        start = max(now, self._free_at[index])
        done = start + self._latency
        self._free_at[index] = done
        return done


class CommandProcessor:
    """Scheduling brain of the simulated GPU."""

    #: Event-core-mode switch (see :mod:`repro.sim.modes`): schedule the
    #: arrival fast path's engine re-entries — stream inspection and
    #: kernel activation — as fusable continuations, and count the
    #: job references they hold so the job pool can gate recycling.
    #: ``False`` restores plain scheduling; the committed event sequence
    #: is identical either way.
    fused = True

    def __init__(self, sim: Simulator, overheads: OverheadConfig,
                 pool: "QueuePool", dispatcher: "WGDispatcher",
                 policy: "SchedulerPolicy",
                 profiler: "KernelProfilingTable",
                 metrics: "MetricsCollector") -> None:
        self._sim = sim
        self._overheads = overheads
        self._pool = pool
        self._dispatcher = dispatcher
        self._policy = policy
        self._profiler = profiler
        self._metrics = metrics
        self._parser = _ParserBank(overheads.cp_parse_width,
                                   overheads.cp_parse_period)
        #: Device-side WG scheduler (read by the host's priority-register
        #: writes to invalidate the dispatcher's standing issue order).
        self.dispatcher = dispatcher
        #: Optional TraceRecorder mirroring queue-binding and kernel
        #: activations (set by the GPUSystem alongside the other sinks).
        self.trace = None
        #: Optional InvariantChecker auditing job lifecycle transitions
        #: and stream FIFO order (same off-path pattern as ``trace``).
        self.validator = None
        #: Whether terminal jobs are retired (outcome folded into the
        #: metrics stream aggregate, kernel state released).  Set by the
        #: GPUSystem from ``repro.sim.modes.RETIRE_JOBS``; off keeps the
        #: seed behaviour of one JobOutcome per job.
        self.retire = False
        dispatcher.on_wg_complete = self._on_wg_complete

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit_job(self, job: Job, skip_inspection: bool = False) -> None:
        """Accept a job's stream onto the device.

        ``skip_inspection`` is used by CPU-side schedulers: the host already
        knows the job's contents, made its own admission decision, and pays
        its own communication latency, so the device-side inspection and
        admission steps are bypassed.
        """
        if job.state is not JobState.INIT:
            raise SimulationError(
                f"job {job.job_id} submitted while {job.state}")
        queue = self._pool.try_bind(job)
        if queue is None:
            # Backlogged; (re-)submitted when a queue frees up.
            return
        job.mark_enqueued(self._sim.now, queue.queue_id)
        if self.trace is not None:
            self.trace.emit(self._sim.now, "job_enqueued",
                            job_id=job.job_id, queue=queue.queue_id)
        if skip_inspection:
            self._admit_job(job, inspected=False)
        else:
            now = self._sim.now
            done = self._parser.admit(now)
            if CommandProcessor.fused:
                job.pending_events += 1
                self._sim.schedule_fusable(done - now, self._on_inspected,
                                           job)
            else:
                self._sim.schedule_at(done, self._on_inspected, job)

    def _on_inspected(self, job: Job) -> None:
        if job.pending_events:
            job.pending_events -= 1
        if job.state is not JobState.INIT:
            return  # rejected while inspection was in flight
        self._admit_job(job, inspected=True)

    def _admit_job(self, job: Job, inspected: bool) -> None:
        if inspected and not self._policy.admit(job):
            self.reject_job(job)
            return
        job.mark_ready()
        self._metrics.on_job_admitted(job)
        self._policy.on_job_admitted(job)
        if self.validator is not None:
            self.validator.on_job_event(job, "admitted")
        self._try_activate(job)

    def reject_job(self, job: Job) -> None:
        """Refuse ``job``: free its queue, tell the CPU (rejectJob())."""
        job.mark_rejected(self._sim.now)
        self._metrics.on_job_rejected(job)
        self._policy.on_job_rejected(job)
        self._release_queue(job)
        if self.validator is not None:
            self.validator.on_job_event(job, "rejected")
        self.retire_job(job)

    def cancel_job(self, job: Job) -> None:
        """Late-reject a ready/running job (Algorithm 1, line 21).

        Any active kernel is dropped from the dispatcher, resident WGs are
        evicted without saving state, and the queue frees up for the
        backlog.  Executed WGs stay counted (they are the wasted work the
        Figure 9 metric charges the scheduler for).
        """
        if not job.is_live:
            return
        for kernel in job.kernels:
            if kernel.phase.value == "active":
                self._dispatcher.cancel_kernel(kernel)
        job.mark_rejected(self._sim.now)
        self._metrics.on_job_rejected(job)
        self._policy.on_job_rejected(job)
        self._release_queue(job)
        if self.validator is not None:
            self.validator.on_job_event(job, "cancelled")
        self.retire_job(job)

    # ------------------------------------------------------------------
    # Kernel chaining
    # ------------------------------------------------------------------

    def append_work(self, job: Job, descriptors) -> None:
        """Enqueue more kernels on a live job's stream (footnote 1).

        When the whole stream was already released (device-side
        schedulers), the new packets are released too; host-side
        schedulers keep control of their release marker.
        """
        fully_released = job.released_kernels >= job.num_kernels
        job.append_kernels(descriptors)
        if fully_released:
            job.released_kernels = job.num_kernels
        self._policy.on_job_extended(job)
        self.poke(job)

    def poke(self, job: Job) -> None:
        """Re-check a job's queue head (host released another kernel)."""
        if job.is_live and job.state is not JobState.INIT:
            self._try_activate(job)

    def _try_activate(self, job: Job) -> None:
        if CommandProcessor.fused:
            for kernel in self._pool.queue_of(job).ready_kernels():
                job.pending_events += 1
                self._sim.schedule_fusable(self._overheads.cp_parse_period,
                                           self._activate, kernel)
            return
        for kernel in self._pool.queue_of(job).ready_kernels():
            self._sim.schedule(self._overheads.cp_parse_period,
                               self._activate, kernel)

    def _activate(self, kernel: KernelInstance) -> None:
        job = kernel.job
        if job.pending_events:
            job.pending_events -= 1
        # The job may have been preempt-rearranged; guard against repeats.
        if job.is_done or kernel.phase.value != "queued":
            return
        if self.trace is not None:
            self.trace.emit(self._sim.now, "kernel_activate",
                            job_id=kernel.job.job_id, kernel=kernel.name,
                            detail=kernel.num_wgs)
        self._dispatcher.add_kernel(kernel)

    # ------------------------------------------------------------------
    # Completion path
    # ------------------------------------------------------------------

    def _on_wg_complete(self, kernel: KernelInstance, now: int) -> None:
        self._profiler.record_wg_completion(kernel.name, now)
        self._metrics.on_wg_complete(kernel)
        self._policy.on_wg_complete(kernel)
        if kernel.is_done:
            self._on_kernel_complete(kernel, now)

    def _on_kernel_complete(self, kernel: KernelInstance, now: int) -> None:
        self._metrics.on_kernel_complete(kernel)
        self._policy.on_kernel_complete(kernel)
        if self.validator is not None:
            self.validator.on_kernel_complete(kernel)
        job = kernel.job
        if job.next_kernel() is None:
            job.mark_completed(now)
            self._metrics.on_job_complete(job)
            self._policy.on_job_complete(job)
            self._release_queue(job)
            if self.validator is not None:
                self.validator.on_job_event(job, "completed")
            self.retire_job(job)
        else:
            self._try_activate(job)

    def retire_job(self, job: Job) -> None:
        """Fold a terminal job into the stream aggregate and drop its state.

        Runs *after* every completion/rejection hook (metrics, policy,
        validator) so each sees the job's kernels intact; no-op unless
        retirement is enabled.  The metrics fold happens before
        :meth:`Job.retire` clears the WGList, because the streaming
        aggregate also banks the work-ledger terms the oracles audit.
        """
        if not self.retire:
            return
        if self.validator is not None:
            self.validator.on_job_retired(job, self._pool)
        self._metrics.retire_job(job)
        # Event-core fast path: park the job for reuse instead of letting
        # the allocator churn.  Gated to device-side policies (host-side
        # command events hold job references the CP does not count) and
        # validator-off runs (the checker audits retired jobs by
        # identity); recycle() itself refuses jobs with in-flight events.
        if (CommandProcessor.fused and self.validator is None
                and not self._policy.host_side and job_pool.recycle(job)):
            return
        job.retire()

    def _release_queue(self, job: Job) -> None:
        follower = self._pool.release(job)
        if follower is not None:
            self._resubmit(follower)

    def _resubmit(self, job: Job) -> None:
        """Drain one backlogged job into the freed queue."""
        if job.state is not JobState.INIT:
            raise SimulationError(
                f"backlogged job {job.job_id} in state {job.state}")
        # Host-side schedulers manage their own backlog before submission,
        # so anything in the device backlog takes the normal inspected path
        # unless the policy marked it pre-approved via released_kernels < 0.
        self.submit_job(job, skip_inspection=self._policy.host_side)


# List of public names (keeps `from ... import *` honest in examples).
__all__: List[str] = ["CommandProcessor"]
