"""Compute queues: the hardware stream abstraction the CP schedules.

The simulated GPU has ``GPUConfig.num_queues`` (128) hardware compute
queues.  Each live job's stream is bound to one queue; the queue exposes the
job's kernel chain head and a priority register the scheduling policy can
write (this is the register LAX-CPU's user-level API pokes).

When every queue is occupied, newly admitted jobs wait in a FIFO backlog
until a queue frees up — the same oversubscription behaviour a real HSA
queue pool exhibits.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from ..errors import SimulationError
from .job import Job
from .kernel import KernelInstance


class ComputeQueue:
    """One hardware queue holding a single job's kernel chain."""

    __slots__ = ("queue_id", "job")

    def __init__(self, queue_id: int) -> None:
        self.queue_id = queue_id
        self.job: Optional[Job] = None

    @property
    def is_free(self) -> bool:
        """Whether the queue has no bound job."""
        return self.job is None

    def bind(self, job: Job) -> None:
        """Attach ``job``'s stream to this queue."""
        if self.job is not None:
            raise SimulationError(
                f"queue {self.queue_id} already bound to job {self.job.job_id}")
        self.job = job

    def release(self) -> None:
        """Detach the current job (at completion or rejection)."""
        self.job = None

    def ready_kernels(self) -> List[KernelInstance]:
        """Kernels ready for the dispatcher.

        Respects in-stream dependencies (the default chain, or the job's
        explicit DAG) and the host release marker
        (``job.released_kernels``): a kernel a CPU-side scheduler has not
        launched yet is invisible.  Chain jobs expose at most one kernel;
        DAG jobs may expose several.
        """
        if self.job is None:
            return []
        return self.job.ready_kernels()

    def head_kernel(self) -> Optional[KernelInstance]:
        """First ready kernel, or None (chain jobs have at most one)."""
        ready = self.ready_kernels()
        return ready[0] if ready else None


class QueuePool:
    """Allocator for the device's fixed set of compute queues."""

    #: Event-core-mode switch (see :mod:`repro.sim.modes`): cache the
    #: :meth:`live_jobs` list between bind/release transitions.  The
    #: admission path reads the live set several times per arrival, and
    #: each uncached read scans all 128 queues; the cached list is the
    #: same jobs in the same queue-id order.  Callers must treat the
    #: returned list as read-only (every in-repo caller only iterates).
    live_cache = True

    def __init__(self, num_queues: int) -> None:
        if num_queues <= 0:
            raise SimulationError("QueuePool needs at least one queue")
        self.queues: List[ComputeQueue] = [
            ComputeQueue(qid) for qid in range(num_queues)
        ]
        self._free: Deque[int] = deque(range(num_queues))
        self._by_job: Dict[int, ComputeQueue] = {}
        self.backlog: Deque[Job] = deque()
        #: Cached live list (invalidated on every bind/release, kept
        #: regardless of the flag so mid-run flips stay correct).
        self._live: Optional[List[Job]] = None

    @property
    def num_free(self) -> int:
        """Queues currently unbound."""
        return len(self._free)

    @property
    def num_bound(self) -> int:
        """Queues currently holding a job."""
        return len(self._by_job)

    def live_jobs(self) -> List[Job]:
        """Jobs currently bound to queues, in queue-id order."""
        if QueuePool.live_cache:
            live = self._live
            if live is None:
                live = self._live = [q.job for q in self.queues
                                     if q.job is not None]
            return live
        return [q.job for q in self.queues if q.job is not None]

    def try_bind(self, job: Job) -> Optional[ComputeQueue]:
        """Bind ``job`` to a free queue, or park it in the backlog.

        Returns the queue on success, ``None`` if the job was backlogged.
        """
        if job.job_id in self._by_job:
            # Silently overwriting the mapping would leak the first queue
            # forever (release only ever frees one entry per job id).
            raise SimulationError(
                f"job {job.job_id} is already bound to queue "
                f"{self._by_job[job.job_id].queue_id}")
        if not self._free:
            self.backlog.append(job)
            return None
        queue = self.queues[self._free.popleft()]
        queue.bind(job)
        self._by_job[job.job_id] = queue
        self._live = None
        return queue

    def release(self, job: Job) -> Optional[Job]:
        """Free ``job``'s queue; return the next backlogged job, if any.

        The caller is responsible for submitting the returned job (the pool
        does not know the submission path).
        """
        queue = self._by_job.pop(job.job_id, None)
        if queue is None:
            raise SimulationError(f"job {job.job_id} holds no queue")
        queue.release()
        self._free.append(queue.queue_id)
        self._live = None
        if self.backlog:
            return self.backlog.popleft()
        return None

    def queue_of(self, job: Job) -> ComputeQueue:
        """Queue bound to ``job`` (raises if unbound)."""
        queue = self._by_job.get(job.job_id)
        if queue is None:
            raise SimulationError(f"job {job.job_id} holds no queue")
        return queue
