"""Recycling pool for retired Job/KernelInstance objects (event-core mode).

The sustained streaming cells push millions of jobs through an engine
whose live population stays near the queue depth; with retirement
(:mod:`repro.sim.modes`) each job's state is dropped the moment its
outcome folds into the stream aggregate.  That keeps memory O(live) but
still churns the allocator: every arrival builds a fresh :class:`Job`
plus one :class:`KernelInstance` per kernel, and every retirement frees
them.  This pool closes the loop — a retired chain job parks here with
its kernel objects intact, and the stream feeder's next template build
re-initializes it in place (:meth:`repro.sim.job.Job.rebind`) instead of
allocating.

Safety argument (also in ``docs/performance.md``):

* only *terminal* (completed/rejected) jobs are parked, and only after
  the metrics collector has folded their outcome — nothing downstream
  reads a parked job;
* jobs with in-flight engine events are never parked: the event-core CP
  and host count scheduled events that hold job/kernel references
  (:attr:`repro.sim.job.Job.pending_events`), and
  :func:`repro.sim.command_processor.CommandProcessor.retire_job` only
  offers a job whose count is zero — anything else falls through to the
  plain ``retire()`` path and the garbage collector;
* recycling is gated to chain jobs (no dependency DAG) built by the
  streaming templates, whose kernel counts are stable — a shape miss
  just builds a fresh job;
* a rebound job is field-for-field identical to a constructed one, so
  simulated results are bit-identical with the pool on or off (covered
  by the modes matrix and ``benchmarks/bench_event_core.py``).

The pool is per-process module state, like the mode flags themselves;
:func:`repro.sim.modes.snapshot`/``apply`` carry the :data:`ENABLED`
flag into worker processes (which start with empty pools — a correctness
no-op, the pool only changes allocation behaviour).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .job import Job
from .kernel import KernelDescriptor

#: Event-core-mode switch (see :mod:`repro.sim.modes`).  ``False``
#: restores seed allocation behaviour: every build constructs, every
#: retirement garbage-collects.
ENABLED = True

#: Parked jobs per kernel count, newest-first.  Bounded so a burst of
#: retirements cannot pin unbounded memory (the whole point of
#: retirement); past the cap, recycle() lets the garbage collector have
#: the job, exactly as with the pool off.
_MAX_PARKED = 4096

_parked: Dict[int, List[Job]] = {}

#: Accounting for bench JSONs and run reports.
hits = 0
misses = 0
recycled = 0
dropped_pending = 0


def build_job(job_id: int, benchmark: str,
              descriptors: Sequence[KernelDescriptor], arrival: int,
              deadline: Optional[int], user_priority: int = 0,
              tag: Optional[str] = None) -> Job:
    """Build a chain job, reusing a parked one when possible.

    Drop-in replacement for the ``Job(...)`` constructor call in the
    streaming templates; identical result either way.
    """
    global hits, misses
    if ENABLED:
        bucket = _parked.get(len(descriptors))
        if bucket:
            job = bucket.pop()
            job.rebind(job_id, benchmark, descriptors, arrival, deadline,
                       user_priority, tag)
            hits += 1
            return job
    misses += 1
    return Job(job_id, benchmark, descriptors, arrival, deadline,
               user_priority, tag)


def recycle(job: Job) -> bool:
    """Park a terminal job for reuse instead of retiring it to the GC.

    Returns True when the job was parked (the caller must *not* also
    call ``job.retire()`` — the pool performs the equivalent state drop,
    keeping the kernel objects for :meth:`Job.rebind`).  Returns False
    when the job is ineligible (in-flight events, DAG job, pool full or
    disabled); the caller retires it normally.
    """
    global recycled, dropped_pending
    if not ENABLED or not job.is_done:
        return False
    if job.pending_events:
        dropped_pending += 1
        return False
    if job.dependencies is not None or not job.kernels:
        return False
    bucket = _parked.setdefault(len(job.kernels), [])
    if len(bucket) >= _MAX_PARKED:
        return False
    # retire()-equivalent: mark the state dropped but keep the kernel
    # objects — they are what the pool exists to reuse.
    job.retired = True
    job.released_kernels = 0
    job._next_cursor = 0
    bucket.append(job)
    recycled += 1
    return True


def clear() -> None:
    """Empty the pool and reset accounting (test isolation helper)."""
    global hits, misses, recycled, dropped_pending
    _parked.clear()
    hits = misses = recycled = dropped_pending = 0


def stats() -> dict:
    """Pool accounting for bench JSONs and run reports."""
    return {
        "enabled": ENABLED,
        "hits": hits,
        "misses": misses,
        "recycled": recycled,
        "dropped_pending": dropped_pending,
        "parked": sum(len(bucket) for bucket in _parked.values()),
    }
