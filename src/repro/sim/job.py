"""Jobs: chains of dependent kernels with a deadline.

A job is the unit the paper schedules — one inference request, one packet
batch, one query.  All of a job's kernels are enqueued on a single stream
(compute queue) and have sequential dependencies, so kernel ``i + 1`` may
only start once kernel ``i`` has completed.
"""

from __future__ import annotations

import enum
from typing import List, Mapping, Optional, Sequence

from ..errors import SimulationError, WorkloadError
from .kernel import KernelDescriptor, KernelInstance, KernelPhase


class JobState(enum.Enum):
    """Job lifecycle, matching the paper's Job Table states plus terminals.

    The paper's Job Table uses *init*, *ready* and *running*; a finished job
    leaves the table, which we represent with *completed*; *rejected* marks
    jobs the admission control refused to offload.
    """

    #: Arrived but not yet admitted (stream inspection / admission pending).
    INIT = "init"
    #: Admitted; first not-yet-activated kernel is schedulable.
    READY = "ready"
    #: At least one WG has been issued to a CU.
    RUNNING = "running"
    #: All kernels finished.
    COMPLETED = "completed"
    #: Refused by admission control; never touched the GPU.
    REJECTED = "rejected"


#: States in which a job still holds device-side bookkeeping.
LIVE_STATES = frozenset({JobState.INIT, JobState.READY, JobState.RUNNING})


class Job:
    """A chain of dependent kernels submitted on one stream.

    Latency-sensitive jobs carry a relative ``deadline``; passing
    ``deadline=None`` makes the job *latency-insensitive* (batch work the
    programmer attached no deadline to).  Per Section 5.2, "LAX does not
    affect latency-insensitive applications because the programmer does
    not provide a deadline for them": such jobs are never rejected, never
    counted in deadline metrics, and run at the lowest priority under
    deadline-aware policies.
    """

    __slots__ = (
        "job_id", "benchmark", "kernels", "arrival", "deadline", "state",
        "queue_id", "start_time", "first_issue_time", "completion_time",
        "rejection_time", "user_priority", "priority", "tag",
        "released_kernels", "dependencies", "_next_cursor", "rank_version",
        "retired", "pending_events", "reserve_counted",
    )

    #: Class-level engine-mode switch (see :mod:`repro.sim.modes`).
    #: ``False`` restores the seed full-chain scan in ``ready_kernels``.
    fast_ready = True

    def __init__(self, job_id: int, benchmark: str,
                 descriptors: Sequence[KernelDescriptor], arrival: int,
                 deadline: Optional[int], user_priority: int = 0,
                 tag: Optional[str] = None,
                 dependencies: Optional[Mapping[int, Sequence[int]]] = None,
                 ) -> None:
        if not descriptors:
            raise WorkloadError(f"job {job_id} has no kernels")
        if deadline is not None and deadline <= 0:
            raise WorkloadError(f"job {job_id} deadline must be positive")
        if arrival < 0:
            raise WorkloadError(f"job {job_id} arrival must be >= 0")
        if dependencies is not None:
            dependencies = {index: tuple(deps)
                            for index, deps in dependencies.items()}
            for index, deps in dependencies.items():
                if not 0 <= index < len(descriptors):
                    raise WorkloadError(
                        f"job {job_id}: dependency on unknown kernel {index}")
                for dep in deps:
                    if not 0 <= dep < index:
                        raise WorkloadError(
                            f"job {job_id}: kernel {index} may only depend "
                            f"on earlier kernels, got {dep}")
        self.job_id = job_id
        self.benchmark = benchmark
        self.kernels: List[KernelInstance] = [
            KernelInstance(desc, self, index)
            for index, desc in enumerate(descriptors)
        ]
        #: Absolute arrival time, ticks.
        self.arrival = arrival
        #: Relative deadline, ticks after arrival; None for
        #: latency-insensitive (best-effort) work.
        self.deadline = deadline
        self.state = JobState.INIT
        #: Compute queue currently bound to this job's stream.
        self.queue_id: Optional[int] = None
        #: Time the job was enqueued on the device (Job Table StartTime).
        self.start_time: Optional[int] = None
        self.first_issue_time: Optional[int] = None
        self.completion_time: Optional[int] = None
        self.rejection_time: Optional[int] = None
        #: WGs this job contributes to the admission reserve counter
        #: while READY (see ``LaxityScheduler._ready_reserve``); 0 once
        #: the first serve (or a late rejection) releases the promise.
        self.reserve_counted = 0
        #: Static application-level priority (PREMA's user priority).
        self.user_priority = user_priority
        #: Dynamic priority register; lower values run first, 0 is highest.
        self.priority: float = 0.0
        #: Free-form label used by workload generators (e.g. "seq=21").
        self.tag = tag
        #: Kernels visible to the CP.  Device-side schedulers release the
        #: whole stream at submission; host-side schedulers launch kernels
        #: one at a time and advance this marker per launch.
        self.released_kernels = 0
        #: Optional explicit dependency DAG: kernel index -> prerequisite
        #: indices.  None means the default in-order chain (each kernel
        #: depends on its predecessor); an empty tuple for an index means
        #: that kernel is dependency-free.  HSA-style DAG streams let a
        #: job expose intra-job parallelism to the dispatcher.
        self.dependencies = dependencies
        # Cursor past the completed prefix of the chain (kernels complete
        # strictly in order, and completion is irreversible, so this only
        # ever advances).
        self._next_cursor = 0
        #: Whether :meth:`retire` released this job's kernel state (the
        #: streaming-workload memory mode; see :mod:`repro.sim.modes`).
        self.retired = False
        #: In-flight engine events holding a reference to this job or its
        #: kernels (CP inspection, kernel activation, host commands).
        #: Maintained only on the event-core fast path; the object pool
        #: refuses to recycle a job while this is non-zero, so a stale
        #: event can never observe a re-initialized incarnation (see
        #: :mod:`repro.sim.job_pool`).
        self.pending_events = 0
        #: Bumped whenever this job's remaining-work inputs change (a WG
        #: completes, or kernels are appended to the stream).  Preemption
        #: does *not* bump it: evicted WGs re-execute, so the WGList's
        #: outstanding count — what the laxity estimate reads — is
        #: unchanged.  Cached estimates key on this (see
        #: :class:`repro.core.laxity.RemainingTimeCache`).
        self.rank_version = 0

    # ------------------------------------------------------------------
    # Static shape
    # ------------------------------------------------------------------

    @property
    def num_kernels(self) -> int:
        """Number of kernel launches in the job."""
        return len(self.kernels)

    @property
    def total_wgs(self) -> int:
        """Total WGs across all kernels."""
        return sum(k.num_wgs for k in self.kernels)

    @property
    def total_work(self) -> int:
        """Aggregate lane-time demand, ticks (sum over kernels)."""
        return sum(k.descriptor.total_work for k in self.kernels)

    @property
    def is_latency_sensitive(self) -> bool:
        """Whether the programmer attached a deadline."""
        return self.deadline is not None

    @property
    def absolute_deadline(self) -> Optional[int]:
        """Wall-clock deadline (arrival + relative), or None."""
        if self.deadline is None:
            return None
        return self.arrival + self.deadline

    def isolated_time(self, gpu) -> int:
        """Wall time of the job running alone (kernels back to back)."""
        return sum(k.descriptor.isolated_time(gpu) for k in self.kernels)

    # ------------------------------------------------------------------
    # Dynamic state
    # ------------------------------------------------------------------

    @property
    def wgs_completed(self) -> int:
        """Total WGs completed so far across all kernels."""
        return sum(k.wgs_completed for k in self.kernels)

    @property
    def is_live(self) -> bool:
        """Whether the job still holds device bookkeeping."""
        return self.state in LIVE_STATES

    @property
    def is_done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in (JobState.COMPLETED, JobState.REJECTED)

    def next_kernel(self) -> Optional[KernelInstance]:
        """First kernel that has not completed, or None when done."""
        kernels = self.kernels
        cursor = self._next_cursor
        while cursor < len(kernels) and kernels[cursor].is_done:
            cursor += 1
        self._next_cursor = cursor
        if cursor < len(kernels):
            return kernels[cursor]
        return None

    def kernel_dependencies(self, index: int) -> Sequence[int]:
        """Prerequisite kernel indices of kernel ``index``."""
        if self.dependencies is not None:
            return self.dependencies.get(index, ())
        return (index - 1,) if index > 0 else ()

    def dependencies_met(self, kernel: KernelInstance) -> bool:
        """Whether every prerequisite of ``kernel`` has completed."""
        return all(self.kernels[dep].is_done
                   for dep in self.kernel_dependencies(kernel.index))

    def ready_kernels(self) -> List[KernelInstance]:
        """Released, not-yet-activated kernels whose prerequisites are done.

        For default chain jobs this is at most one kernel (the head); DAG
        jobs may expose several concurrently-runnable kernels.

        Chain jobs take an O(1) cursor path: kernels in a chain complete
        strictly in order, so a kernel's predecessor being done implies
        the whole prefix is done — the first not-done kernel is the only
        possible candidate, and it is ready exactly when it is released
        and still QUEUED.  This returns the same list the full scan
        builds (``Job.fast_ready = False`` restores the scan).
        """
        if Job.fast_ready and self.dependencies is None:
            kernels = self.kernels
            cursor = self._next_cursor
            while cursor < len(kernels) and kernels[cursor].is_done:
                cursor += 1
            self._next_cursor = cursor
            if (cursor < self.released_kernels
                    and kernels[cursor].phase is KernelPhase.QUEUED):
                return [kernels[cursor]]
            return []
        ready = []
        for kernel in self.kernels:
            if kernel.index >= self.released_kernels:
                break
            if (kernel.phase is KernelPhase.QUEUED
                    and self.dependencies_met(kernel)):
                ready.append(kernel)
        return ready

    @property
    def is_dag(self) -> bool:
        """Whether this job carries an explicit dependency DAG."""
        return self.dependencies is not None

    def elapsed(self, now: int) -> int:
        """Time since the job entered the system (Job Table durTime).

        Measured from arrival so that deadline arithmetic is consistent
        whether the job was offloaded immediately (device-side schedulers,
        where enqueue trails arrival by microseconds) or aged on the host
        first (CPU-side schedulers).
        """
        return max(0, now - self.arrival)

    @property
    def latency(self) -> Optional[int]:
        """End-to-end response time (completion - arrival), ticks."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival

    @property
    def met_deadline(self) -> bool:
        """Whether the job completed at or before its absolute deadline.

        Latency-insensitive jobs have no deadline to meet (False here;
        metrics exclude them from deadline counts entirely).
        """
        return (self.deadline is not None
                and self.completion_time is not None
                and self.completion_time <= self.absolute_deadline)

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------

    def append_kernels(self, descriptors: Sequence[KernelDescriptor]) -> None:
        """Enqueue additional work on this job's stream.

        Supports the paper's footnote 1: "If additional work is later
        enqueued to the job's stream, LAX will update its prediction" —
        the WGList grows and every estimator picks the new kernels up on
        its next pass.  Only legal while the job is live.
        """
        if self.is_done:
            raise SimulationError(
                f"job {self.job_id} finished; cannot extend its stream")
        if not descriptors:
            raise WorkloadError(f"job {self.job_id}: nothing to append")
        start = len(self.kernels)
        self.kernels.extend(
            KernelInstance(desc, self, start + index)
            for index, desc in enumerate(descriptors))
        self.rank_version += 1

    def mark_enqueued(self, now: int, queue_id: int) -> None:
        """Bind the job to a compute queue; records Job Table StartTime."""
        if self.state is not JobState.INIT:
            raise SimulationError(f"job {self.job_id} enqueued while {self.state}")
        self.queue_id = queue_id
        if self.start_time is None:
            self.start_time = now

    def mark_ready(self) -> None:
        """Admission accepted the job."""
        if self.state is not JobState.INIT:
            raise SimulationError(f"job {self.job_id} ready while {self.state}")
        self.state = JobState.READY

    def mark_running(self, now: int) -> None:
        """First WG issued to a CU."""
        if self.state is JobState.READY:
            self.state = JobState.RUNNING
            if self.first_issue_time is None:
                self.first_issue_time = now
        elif self.state is not JobState.RUNNING:
            raise SimulationError(f"job {self.job_id} running while {self.state}")

    def mark_completed(self, now: int) -> None:
        """All kernels finished."""
        if self.state is not JobState.RUNNING:
            raise SimulationError(f"job {self.job_id} completed while {self.state}")
        if any(not k.is_done for k in self.kernels):
            raise SimulationError(f"job {self.job_id} completed with pending kernels")
        self.state = JobState.COMPLETED
        self.completion_time = now

    def mark_rejected(self, now: int) -> None:
        """Admission control refused (or later evicted) the job.

        Algorithm 1 runs continuously, so a job can be rejected while
        *ready* or even *running* — "Cannot complete job in time, tell
        CPU" — not only at arrival.
        """
        if self.state not in LIVE_STATES:
            raise SimulationError(f"job {self.job_id} rejected while {self.state}")
        self.state = JobState.REJECTED
        self.rejection_time = now

    def retire(self) -> None:
        """Release the job's per-kernel state after a terminal transition.

        Streaming runs push orders of magnitude more jobs through one
        engine than ever coexist; once a job's outcome has been folded
        into the run's streaming aggregate (see
        :meth:`repro.metrics.collector.MetricsCollector.retire_job`),
        its WGList — the kernel-instance chain — is the last O(job)
        state left.  Retiring drops it so a completed or rejected job
        costs O(1) memory for the rest of the run.  Only legal once the
        job is terminal; idempotent.
        """
        if not self.is_done:
            raise SimulationError(
                f"job {self.job_id} retired while {self.state}")
        self.retired = True
        self.kernels = []
        self.dependencies = None
        self.released_kernels = 0
        self._next_cursor = 0

    def rebind(self, job_id: int, benchmark: str,
               descriptors: Sequence[KernelDescriptor], arrival: int,
               deadline: Optional[int], user_priority: int = 0,
               tag: Optional[str] = None) -> None:
        """Re-initialize a recycled chain job (see :mod:`repro.sim.job_pool`).

        Mirrors ``__init__`` field for field — a rebound job is
        indistinguishable from a freshly constructed one — but reuses
        this job's :class:`KernelInstance` objects instead of allocating
        new ones.  The pool guarantees the kernel count matches and that
        the job was parked terminal with no in-flight events; chain jobs
        only (``dependencies`` stays None).
        """
        if deadline is not None and deadline <= 0:
            raise WorkloadError(f"job {job_id} deadline must be positive")
        if arrival < 0:
            raise WorkloadError(f"job {job_id} arrival must be >= 0")
        self.job_id = job_id
        self.benchmark = benchmark
        for index, desc in enumerate(descriptors):
            self.kernels[index].__init__(desc, self, index)
        self.arrival = arrival
        self.deadline = deadline
        self.state = JobState.INIT
        self.queue_id = None
        self.start_time = None
        self.first_issue_time = None
        self.completion_time = None
        self.rejection_time = None
        self.reserve_counted = 0
        self.user_priority = user_priority
        self.priority = 0.0
        self.tag = tag
        self.released_kernels = 0
        self.dependencies = None
        self._next_cursor = 0
        self.retired = False
        self.pending_events = 0
        self.rank_version = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Job {self.job_id} {self.benchmark} {self.state.value} "
                f"kernels={self.num_kernels} deadline={self.deadline}>")
