"""Engine-mode switches: optimized hot paths vs the seed reference engine.

The PR-4 hot-path overhaul (batched WG issue, grouped processor-sharing
math, the compacting event heap, the chain-job ready cursor) is designed
to be **bit-identical** to the original implementation — every placement
decision, float accumulation and event-heap tie-break is preserved, as
argued in ``docs/performance.md``.  To make that claim testable (and the
speedup measurable) each optimization keeps its seed code path behind a
class-level flag:

===========================  ============================================
``Simulator.optimized``      inlined run loop + heap compaction
``ComputeUnit.grouped``      per-rate-group sync / min-completion scan
``WGDispatcher.batched``     batched pump (issue_wgs / flush_issue)
``Job.fast_ready``           O(1) chain ready_kernels cursor
``laxity.MEMOIZED``          per-walk profiling-table read memoisation
``laxity.EPOCH_GATED``       rank-epoch scheduler tick: cached laxity
                             estimates + standing sweep order (PR 5)
``laxity.VECTORIZED``        struct-of-arrays Algorithm 2 tick: numpy
                             rank state over the epoch-gated cache (PR 9)
``ComputeUnit.vectorized``   resident SoA: array-solved processor-
                             sharing sync / min-completion (PR 9)
``WGDispatcher.vectorized``  occupancy-array pump: broadcast capacity
                             min-reduce + O(1) saturation check (PR 9)
``Simulator.wheeled``        calendar-queue event storage + fused
                             continuation run loop (PR 10)
``CommandProcessor.fused``   arrival fast path schedules inspection /
                             activation / pump as fusable continuations
``WGDispatcher.counted``     standing pending set: O(live pending) pump
                             scans instead of O(active) per pump
``laxity.EVENT_CORE``        flattened admission walk + epoch-gated
                             periodic-tick elision (PR 10)
``ComputeUnit.slot_cache``   memoized free-slot count per concurrency
                             class, invalidated on resident mutation
``ComputeUnit.fused_drain``  one-pass completion-timer drain: progress
                             sync + finished split in a single loop
``QueuePool.live_cache``     cached live-job list, invalidated on
                             bind/release
``job_pool.ENABLED``         retired Job/KernelInstance recycling pool
===========================  ============================================

:func:`set_engine_mode` flips all of them together;
:func:`engine_mode` is the context-manager form used by the differential
property tests and ``benchmarks/bench_engine_hotpath.py``.  The flags are
class attributes, so a mode applies to every simulator constructed while
it is active (existing instances pick it up too — the flags are only read
inside the hot loops).

:func:`scheduler_tick_mode` flips ``laxity.EPOCH_GATED`` *alone*, leaving
the PR-4 engine optimizations on: that isolates the scheduler-tick fast
path's contribution, which is what ``benchmarks/bench_scheduler_tick.py``
measures ("on top of the optimized engine", not riding on it).

:func:`vectorized_mode` similarly flips only the three struct-of-arrays
flags (``laxity.VECTORIZED``, ``ComputeUnit.vectorized``,
``WGDispatcher.vectorized``): ``vectorized_mode(False)`` is exactly the
PR-5 fast path, which is what ``benchmarks/bench_vectorized_core.py``
A/Bs.  The vectorized paths require numpy; on hosts without it the flags
stay set but every consumer falls back to the scalar paths.

:func:`event_core_mode` flips only the eight event-core flags (calendar
queue, fusable continuations, counted pump, flattened admission/tick,
slot cache, fused timer drain, live-list cache, job pool):
``event_core_mode(False)`` is
exactly the
PR-9 fast path, which is what ``benchmarks/bench_event_core.py`` A/Bs on
the 1M-job sustained cell.  One caveat inherited from the queue
structure: ``Simulator.wheeled`` is sampled at construction (events
queued in one structure cannot move to the other mid-run), so the
event-core context managers must wrap system *construction*, not just
``run()`` — which is how every mode context in this repo is already
used.

:func:`snapshot` / :func:`apply` round-trip the complete flag state as a
plain dict — the harness runner's pool workers and the cluster tier's
device workers re-apply the parent's modes in child processes, where
class attributes set in the parent do not exist.

**Job retirement** (:data:`RETIRE_JOBS` / :func:`retirement_mode`) is a
separate switch, deliberately *not* part of the engine-mode flag set:
retiring a job folds its outcome into a streaming aggregate and releases
its kernel/table state, so the run's ``RunMetrics`` carries aggregate
counters instead of per-job outcomes — an observable difference, not a
bit-identical optimization.  Every simulated decision (placements,
admissions, clocks, traces) is still identical with retirement on or
off; only the end-of-run bookkeeping shape changes.  The flag is the
default for systems built while it is set; ``GPUSystem(retire=...)``
overrides it per system.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from ..core import laxity
from . import job_pool
from .command_processor import CommandProcessor
from .compute_unit import ComputeUnit
from .dispatcher import WGDispatcher
from .engine import Simulator
from .job import Job
from .queues import QueuePool

#: The struct-of-arrays flag carriers (flipped alone by
#: :func:`vectorized_mode`, and together with everything else by
#: :func:`set_engine_mode`).
_VECTORIZED_FLAGS = (
    (laxity, "VECTORIZED"),
    (ComputeUnit, "vectorized"),
    (WGDispatcher, "vectorized"),
)

#: The event-core flag carriers (flipped alone by
#: :func:`event_core_mode`, and together with everything else by
#: :func:`set_engine_mode`).
_EVENT_CORE_FLAGS = (
    (Simulator, "wheeled"),
    (CommandProcessor, "fused"),
    (WGDispatcher, "counted"),
    (laxity, "EVENT_CORE"),
    (ComputeUnit, "slot_cache"),
    (ComputeUnit, "fused_drain"),
    (QueuePool, "live_cache"),
    (job_pool, "ENABLED"),
)

#: The flag carriers (class or module, attribute name).
_MODE_FLAGS = (
    (Simulator, "optimized"),
    (ComputeUnit, "grouped"),
    (WGDispatcher, "batched"),
    (Job, "fast_ready"),
    (laxity, "MEMOIZED"),
    (laxity, "EPOCH_GATED"),
) + _VECTORIZED_FLAGS + _EVENT_CORE_FLAGS


def set_engine_mode(optimized: bool) -> None:
    """Switch every engine hot path between optimized and seed behaviour.

    ``optimized=False`` restores the seed engine verbatim (per-WG issue
    loop, per-WG processor-sharing math, step()-driven run loop without
    heap compaction, full-chain ready scans).  Simulated results are
    identical either way; only wall-clock time differs.
    """
    enabled = bool(optimized)
    for cls, attr in _MODE_FLAGS:
        setattr(cls, attr, enabled)


def get_engine_mode() -> bool:
    """True when every hot-path flag is in its optimized position."""
    return all(getattr(cls, attr) for cls, attr in _MODE_FLAGS)


@contextmanager
def engine_mode(optimized: bool) -> Iterator[None]:
    """Temporarily force an engine mode; restores prior flags on exit."""
    saved = [(cls, attr, getattr(cls, attr)) for cls, attr in _MODE_FLAGS]
    set_engine_mode(optimized)
    try:
        yield
    finally:
        for cls, attr, value in saved:
            setattr(cls, attr, value)


#: Default job-retirement mode for newly built systems (see the module
#: docstring).  Off by default: the seed path keeps one JobOutcome per
#: job, which every finite-workload consumer expects.
RETIRE_JOBS = False


def set_retirement(enabled: bool) -> None:
    """Set the default job-retirement mode for new ``GPUSystem``s."""
    global RETIRE_JOBS
    RETIRE_JOBS = bool(enabled)


def get_retirement() -> bool:
    """Current default job-retirement mode."""
    return RETIRE_JOBS


@contextmanager
def retirement_mode(enabled: bool) -> Iterator[None]:
    """Temporarily set the default retirement mode; restores on exit."""
    global RETIRE_JOBS
    saved = RETIRE_JOBS
    RETIRE_JOBS = bool(enabled)
    try:
        yield
    finally:
        RETIRE_JOBS = saved


def set_vectorized(enabled: bool) -> None:
    """Flip only the struct-of-arrays flags (laxity tick, CU resident
    arrays, dispatcher occupancy arrays), leaving PR-4/5 flags alone."""
    value = bool(enabled)
    for carrier, attr in _VECTORIZED_FLAGS:
        setattr(carrier, attr, value)


def get_vectorized() -> bool:
    """True when every struct-of-arrays flag is up."""
    return all(getattr(carrier, attr) for carrier, attr in _VECTORIZED_FLAGS)


@contextmanager
def vectorized_mode(enabled: bool) -> Iterator[None]:
    """Temporarily flip only the struct-of-arrays flags; restores on exit.

    ``vectorized_mode(False)`` is exactly the PR-5 fast path (epoch-gated
    scalar tick, scalar batched pump), so an A/B under this switch
    isolates the PR-9 vectorization — which is what
    ``benchmarks/bench_vectorized_core.py`` measures.
    """
    saved = [(carrier, attr, getattr(carrier, attr))
             for carrier, attr in _VECTORIZED_FLAGS]
    set_vectorized(enabled)
    try:
        yield
    finally:
        for carrier, attr, value in saved:
            setattr(carrier, attr, value)


def set_event_core(enabled: bool) -> None:
    """Flip only the event-core flags (calendar queue, fusable
    continuations, counted pump, flattened admission walk + gated ticks,
    slot cache, live-list cache, job pool), leaving PR-4/5/9 flags
    alone."""
    value = bool(enabled)
    for carrier, attr in _EVENT_CORE_FLAGS:
        setattr(carrier, attr, value)


def get_event_core() -> bool:
    """True when every event-core flag is up."""
    return all(getattr(carrier, attr) for carrier, attr in _EVENT_CORE_FLAGS)


@contextmanager
def event_core_mode(enabled: bool) -> Iterator[None]:
    """Temporarily flip only the event-core flags; restores on exit.

    ``event_core_mode(False)`` is exactly the PR-9 fast path, so an A/B
    under this switch isolates the per-event-cost work — which is what
    ``benchmarks/bench_event_core.py`` measures on the sustained cell.
    Systems must be *constructed* inside the context: the queue
    structure (``Simulator.wheeled``) binds at construction.
    """
    saved = [(carrier, attr, getattr(carrier, attr))
             for carrier, attr in _EVENT_CORE_FLAGS]
    set_event_core(enabled)
    try:
        yield
    finally:
        for carrier, attr, value in saved:
            setattr(carrier, attr, value)


def snapshot() -> dict:
    """Capture every mode flag (engine, vectorized, retirement) as a
    plain picklable dict for re-application in worker processes."""
    state = {f"{carrier.__name__}.{attr}": getattr(carrier, attr)
             for carrier, attr in _MODE_FLAGS}
    state["RETIRE_JOBS"] = RETIRE_JOBS
    return state


def apply(state: dict) -> None:
    """Re-apply a :func:`snapshot` (typically in a pool worker).

    Unknown keys are ignored and missing keys keep their current value,
    so snapshots stay compatible across flag additions.
    """
    global RETIRE_JOBS
    for carrier, attr in _MODE_FLAGS:
        value = state.get(f"{carrier.__name__}.{attr}")
        if value is not None:
            setattr(carrier, attr, bool(value))
    retire = state.get("RETIRE_JOBS")
    if retire is not None:
        RETIRE_JOBS = bool(retire)


@contextmanager
def scheduler_tick_mode(gated: bool) -> Iterator[None]:
    """Temporarily flip only ``laxity.EPOCH_GATED``; restores it on exit.

    The engine-level flags (run loop, compute units, dispatcher, ready
    cursor, walk memoisation) are left wherever they are, so an A/B timed
    under this switch measures the scheduler-tick fast path in isolation.
    """
    saved = laxity.EPOCH_GATED
    laxity.EPOCH_GATED = bool(gated)
    try:
        yield
    finally:
        laxity.EPOCH_GATED = saved
