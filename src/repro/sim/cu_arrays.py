"""Struct-of-arrays CU state for the vectorized dispatcher paths.

Two array families back ``vectorized_mode`` (see :mod:`repro.sim.modes`):

* :class:`CUOccupancyArrays` — dispatcher-owned, one element per CU:
  free thread/wavefront/VGPR/LDS counters, resident counts and the
  minimum resident CU-concurrency.  ``batch_capacity`` for a whole
  device becomes one broadcast min-reduce per resource
  (:meth:`CUOccupancyArrays.capacity`), and the dispatcher's saturation
  fast-out becomes a single masked ``any``.  Each
  :class:`~repro.sim.compute_unit.ComputeUnit` writes its row through on
  every residency/hold change, so the arrays always equal the scalar
  counters they mirror — integer bookkeeping, no float state, hence no
  equivalence caveats.

* :class:`ResidentArrays` — per-CU, one element per resident WG:
  remaining service demand and CU-concurrency, aligned index-for-index
  with the CU's ``_residents`` list.  ``_sync``/``_reschedule`` become
  elementwise rate math plus one reduction.  While these arrays exist
  they are authoritative for ``remaining`` (the ``ResidentWG`` objects
  keep identity, kernel refs and the integer occupancy fields); flipping
  the mode off mid-run migrates values back to the objects.

Both are created lazily the first time a vectorized consumer runs, so
systems built in seed/gated mode never pay a single write-through — the
A/B baseline stays untouched.
"""

from __future__ import annotations

from typing import List

try:  # pragma: no cover - exercised implicitly on numpy-less hosts
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

HAVE_NUMPY = _np is not None

#: ``min_conc`` sentinel for a CU with no residents (any kernel's own
#: concurrency bounds first).
NO_RESIDENTS = 2 ** 31


class CUOccupancyArrays:
    """Per-CU free-resource, load and concurrency rows."""

    def __init__(self, cus) -> None:
        if _np is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("CUOccupancyArrays requires numpy")
        n = len(cus)
        self.free_threads = _np.zeros(n, dtype=_np.int64)
        self.free_wavefronts = _np.zeros(n, dtype=_np.int64)
        self.free_vgpr = _np.zeros(n, dtype=_np.int64)
        self.free_lds = _np.zeros(n, dtype=_np.int64)
        self.loads = _np.zeros(n, dtype=_np.int64)
        self.min_conc = _np.full(n, NO_RESIDENTS, dtype=_np.int64)
        for cu in cus:
            cu.attach_occupancy(self)

    def capacity(self, threads: int, wavefronts: int, vgpr: int, lds: int,
                 concurrency: int, backfill_only: bool) -> "_np.ndarray":
        """``ComputeUnit.batch_capacity`` for every CU in one reduce.

        Identical integer algebra: per-resource bound is
        ``free // need`` (needs are positive for threads/wavefronts;
        VGPR/LDS bound only when their need is non-zero), backfill adds
        the ``free_full_rate_slots`` bound
        ``max(0, min(concurrency, min resident concurrency) - residents)``.
        """
        caps = self.free_threads // threads
        caps = _np.minimum(caps, self.free_wavefronts // wavefronts)
        if vgpr > 0:
            caps = _np.minimum(caps, self.free_vgpr // vgpr)
        if lds > 0:
            caps = _np.minimum(caps, self.free_lds // lds)
        if backfill_only:
            bound = _np.minimum(self.min_conc, concurrency) - self.loads
            caps = _np.minimum(caps, _np.maximum(bound, 0))
        return caps


class ResidentArrays:
    """Growable (remaining, concurrency) columns for one CU's residents."""

    __slots__ = ("remaining", "concurrency", "count")

    def __init__(self, residents) -> None:
        n = len(residents)
        capacity = max(16, n * 2)
        self.remaining = _np.zeros(capacity, dtype=_np.float64)
        self.concurrency = _np.zeros(capacity, dtype=_np.int64)
        self.count = n
        for index, wg in enumerate(residents):
            self.remaining[index] = wg.remaining
            self.concurrency[index] = wg.concurrency

    def append(self, remaining: float, concurrency: int, copies: int) -> None:
        needed = self.count + copies
        if needed > self.remaining.size:
            capacity = max(needed, self.remaining.size * 2)
            grown_rem = _np.zeros(capacity, dtype=_np.float64)
            grown_rem[:self.count] = self.remaining[:self.count]
            grown_conc = _np.zeros(capacity, dtype=_np.int64)
            grown_conc[:self.count] = self.concurrency[:self.count]
            self.remaining = grown_rem
            self.concurrency = grown_conc
        self.remaining[self.count:needed] = remaining
        self.concurrency[self.count:needed] = concurrency
        self.count = needed

    def compact(self, keep_mask) -> None:
        """Drop residents where ``keep_mask`` is False (array order)."""
        kept = int(_np.count_nonzero(keep_mask))
        self.remaining[:kept] = self.remaining[:self.count][keep_mask]
        self.concurrency[:kept] = self.concurrency[:self.count][keep_mask]
        self.count = kept

    def writeback(self, residents: List) -> None:
        """Migrate authoritative ``remaining`` back into the WG objects
        (mode flipped off mid-run)."""
        values = self.remaining[:self.count].tolist()
        for wg, value in zip(residents, values):
            wg.remaining = value
