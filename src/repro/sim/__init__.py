"""GPU + host simulation substrate.

The substrate replaces the paper's gem5 setup: a discrete-event model of an
8-CU GCN-like GPU (Table 2) with hardware compute queues, a command
processor, a workgroup dispatcher, processor-sharing compute units, a host
communication channel and an energy meter.
"""

from .compute_unit import ComputeUnit, ResidentWG
from .device import GPUSystem, StreamFeeder, run_workload
from .dispatcher import WGDispatcher
from .energy import EnergyMeter
from .engine import EventHandle, PeriodicTask, Simulator
from .host import Host
from .job import Job, JobState
from .kernel import KernelDescriptor, KernelInstance, KernelPhase
from .modes import (engine_mode, event_core_mode, get_engine_mode,
                    get_event_core, get_retirement, retirement_mode,
                    set_engine_mode, set_event_core, set_retirement)
from .protocol import Device
from .queues import ComputeQueue, QueuePool
from .command_processor import CommandProcessor
from .trace import (TraceEvent, TraceRecorder, occupancy_timeline,
                    render_occupancy)

__all__ = [
    "CommandProcessor",
    "ComputeQueue",
    "ComputeUnit",
    "Device",
    "EnergyMeter",
    "EventHandle",
    "GPUSystem",
    "Host",
    "Job",
    "JobState",
    "KernelDescriptor",
    "KernelInstance",
    "KernelPhase",
    "PeriodicTask",
    "QueuePool",
    "ResidentWG",
    "Simulator",
    "StreamFeeder",
    "TraceEvent",
    "TraceRecorder",
    "WGDispatcher",
    "engine_mode",
    "event_core_mode",
    "get_engine_mode",
    "get_event_core",
    "get_retirement",
    "occupancy_timeline",
    "render_occupancy",
    "retirement_mode",
    "run_workload",
    "set_engine_mode",
    "set_event_core",
    "set_retirement",
]
