"""Device energy accounting.

The paper analyses energy with per-instruction energies; at workgroup
granularity the equivalent decomposition is:

* **dynamic** energy proportional to busy lane-time (work actually executed,
  including work later thrown away by preemption or deadline misses),
* **static** energy proportional to wall-clock makespan, and
* **preemption** energy proportional to context bytes moved.

The meter is fed lane-time increments by the compute units and context
traffic by the preemption machinery; the harness closes it with the final
makespan.
"""

from __future__ import annotations

from ..config import EnergyConfig
from ..units import SEC


class EnergyMeter:
    """Accumulates the three energy components in joules."""

    def __init__(self, config: EnergyConfig) -> None:
        self._config = config
        self._busy_lane_ticks = 0.0
        self._context_bytes = 0.0
        self._makespan_ticks = 0

    def add_lane_time(self, lane_ticks: float) -> None:
        """Record ``lane_ticks`` of busy SIMD-lane time."""
        if lane_ticks < 0:
            raise ValueError("lane time must be non-negative")
        self._busy_lane_ticks += lane_ticks

    def add_context_traffic(self, num_bytes: float) -> None:
        """Record context save/restore traffic from a preemption."""
        if num_bytes < 0:
            raise ValueError("context bytes must be non-negative")
        self._context_bytes += num_bytes

    def set_makespan(self, ticks: int) -> None:
        """Record the final wall-clock span of the run."""
        if ticks < 0:
            raise ValueError("makespan must be non-negative")
        self._makespan_ticks = ticks

    @property
    def busy_lane_seconds(self) -> float:
        """Total busy lane-time in seconds."""
        return self._busy_lane_ticks / SEC

    @property
    def dynamic_joules(self) -> float:
        """Energy from executed work."""
        return self.busy_lane_seconds * self._config.dynamic_watts_per_lane

    @property
    def static_joules(self) -> float:
        """Leakage/idle energy over the makespan."""
        return (self._makespan_ticks / SEC) * self._config.static_watts

    @property
    def preemption_joules(self) -> float:
        """Energy spent moving preemption context state."""
        return self._context_bytes * self._config.preemption_joules_per_byte

    @property
    def total_joules(self) -> float:
        """All components combined."""
        return self.dynamic_joules + self.static_joules + self.preemption_joules
