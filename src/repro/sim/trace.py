"""Structured event tracing for simulation runs.

A :class:`TraceRecorder` attached to a :class:`~repro.sim.device.GPUSystem`
captures the run as a stream of typed events — job lifecycle, kernel
completions, optionally per-WG issue/completion, and preemptions — for
debugging schedulers and for post-hoc analysis.  Export to JSON-lines or
CSV; :func:`occupancy_timeline` rebuilds the device's in-flight WG count
over time from a WG-level trace.

WG-level events are voluminous (one per workgroup execution); they are
opt-in via ``wg_events=True``.
"""

from __future__ import annotations

import csv
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError

#: Event kinds a recorder may emit.
EVENT_KINDS = (
    "job_arrival", "job_enqueued", "job_admitted", "job_rejected",
    "job_complete", "kernel_activate", "kernel_complete", "wg_issue",
    "wg_complete", "preemption",
)

#: Columns of the CSV export (and keys of every event dict).
EVENT_FIELDS = ("time", "kind", "job_id", "kernel", "detail", "cu", "queue")

# Hot-path lookup sets (emit runs per event, per WG when wg_events).
_KNOWN_KINDS = frozenset(EVENT_KINDS)
_WG_KINDS = frozenset(("wg_issue", "wg_complete"))


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: int
    kind: str
    job_id: Optional[int] = None
    kernel: Optional[str] = None
    detail: Optional[int] = None  # kind-specific payload (e.g. WG count)
    cu: Optional[int] = None      # compute unit (WG-level events)
    queue: Optional[int] = None   # hardware queue (job_enqueued)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form used by the exporters."""
        return {"time": self.time, "kind": self.kind, "job_id": self.job_id,
                "kernel": self.kernel, "detail": self.detail,
                "cu": self.cu, "queue": self.queue}


@dataclass
class TraceRecorder:
    """Collects trace events during one run."""

    #: Record per-WG issue/completion events (large traces).
    wg_events: bool = False
    events: List[TraceEvent] = field(default_factory=list)

    def emit(self, time: int, kind: str, job_id: Optional[int] = None,
             kernel: Optional[str] = None,
             detail: Optional[int] = None, cu: Optional[int] = None,
             queue: Optional[int] = None) -> None:
        """Append one event (kind must be a known kind)."""
        if kind not in _KNOWN_KINDS:
            raise SimulationError(f"unknown trace event kind {kind!r}")
        if not self.wg_events and kind in _WG_KINDS:
            return
        self.events.append(TraceEvent(time, kind, job_id, kernel, detail,
                                      cu, queue))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Number of events per kind."""
        result: Dict[str, int] = {}
        for event in self.events:
            result[event.kind] = result.get(event.kind, 0) + 1
        return result

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All events of one kind, in time order."""
        return [event for event in self.events if event.kind == kind]

    def job_timeline(self, job_id: int) -> List[TraceEvent]:
        """Every event attributed to one job."""
        return [event for event in self.events if event.job_id == job_id]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_jsonl(self, path: str) -> int:
        """Write events as JSON lines; returns the event count.

        Missing parent directories are created.
        """
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        with open(path, "w", encoding="utf-8") as sink:
            for event in self.events:
                sink.write(json.dumps(event.as_dict()) + "\n")
        return len(self.events)

    def to_csv(self, path: str) -> int:
        """Write events as CSV; returns the event count.

        Missing parent directories are created.
        """
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        with open(path, "w", encoding="utf-8", newline="") as sink:
            writer = csv.DictWriter(sink, fieldnames=EVENT_FIELDS)
            writer.writeheader()
            for event in self.events:
                writer.writerow(event.as_dict())
        return len(self.events)


def occupancy_timeline(recorder: TraceRecorder,
                       bucket: int) -> List[Tuple[int, int]]:
    """Device in-flight WG count sampled at ``bucket``-tick boundaries.

    Requires a WG-level trace.  Returns ``[(bucket_start, wgs_in_flight
    at bucket end), ...]`` covering the traced span.
    """
    if bucket <= 0:
        raise SimulationError("bucket must be positive")
    if not recorder.wg_events:
        raise SimulationError("occupancy needs a wg_events=True trace")
    deltas: Dict[int, int] = {}
    last_time = 0
    for event in recorder.events:
        if event.kind == "wg_issue":
            deltas[event.time] = deltas.get(event.time, 0) + 1
        elif event.kind == "wg_complete":
            deltas[event.time] = deltas.get(event.time, 0) - 1
        elif event.kind == "preemption" and event.detail:
            deltas[event.time] = deltas.get(event.time, 0) - event.detail
        last_time = max(last_time, event.time)
    timeline: List[Tuple[int, int]] = []
    level = 0
    boundary = bucket
    for time in sorted(deltas):
        while time >= boundary:
            timeline.append((boundary - bucket, level))
            boundary += bucket
        level += deltas[time]
    while boundary <= last_time + bucket:
        timeline.append((boundary - bucket, level))
        boundary += bucket
    return timeline


def render_occupancy(timeline: List[Tuple[int, int]], width: int = 50,
                     max_rows: int = 40) -> str:
    """ASCII rendering of an occupancy timeline (one row per bucket)."""
    if not timeline:
        return "(empty trace)"
    peak = max(level for _, level in timeline) or 1
    step = max(1, len(timeline) // max_rows)
    lines = []
    for start, level in timeline[::step]:
        bar = "#" * round(width * level / peak)
        lines.append(f"{start:>12d}  {level:>5d}  {bar}")
    return "\n".join(lines)
