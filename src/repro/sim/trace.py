"""Structured event tracing for simulation runs.

A :class:`TraceRecorder` attached to a :class:`~repro.sim.device.GPUSystem`
captures the run as a stream of typed events — job lifecycle, kernel
completions, optionally per-WG issue/completion, and preemptions — for
debugging schedulers and for post-hoc analysis.  Export to JSON-lines or
CSV; :func:`occupancy_timeline` rebuilds the device's in-flight WG count
over time from a WG-level trace.

WG-level events are voluminous (one per workgroup execution); they are
opt-in via ``wg_events=True``.

Events land in a :class:`~repro.telemetry.sinks.TelemetrySink`; the
default :class:`~repro.telemetry.sinks.ListSink` retains the full stream
in memory (the historical behaviour), while a ring/JSONL/null sink bounds
the recorder's memory for long runs — see ``docs/observability.md`` for
the memory model.  Queries (:meth:`TraceRecorder.of_kind`,
:meth:`~TraceRecorder.job_timeline`, ...) see the *retained* records;
:meth:`~TraceRecorder.counts` is maintained incrementally and stays exact
under every sink.
"""

from __future__ import annotations

import csv
import json
import math
import os
import shutil
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError

#: Event kinds a recorder may emit.
EVENT_KINDS = (
    "job_arrival", "job_enqueued", "job_admitted", "job_rejected",
    "job_complete", "kernel_activate", "kernel_complete", "wg_issue",
    "wg_complete", "preemption",
)

#: Columns of the CSV export (and keys of every event dict).
EVENT_FIELDS = ("time", "kind", "job_id", "kernel", "detail", "cu", "queue")

# Hot-path lookup sets (emit runs per event, per WG when wg_events).
_KNOWN_KINDS = frozenset(EVENT_KINDS)
_WG_KINDS = frozenset(("wg_issue", "wg_complete"))

# json.dumps' own C string escaper: as_json_line must stay
# byte-identical to json.dumps(as_dict()) for the same values.
_json_escape = json.encoder.encode_basestring_ascii


def _scalar(value) -> str:
    """JSON-encode one field value (None/int/str/bool/float fast paths).

    Each fast path reproduces ``json.dumps`` byte-for-byte: exact type
    checks keep bools out of the int path, and finite floats encode via
    ``repr`` exactly as the json module does.
    """
    if value is None:
        return "null"
    kind = type(value)
    if kind is int:
        return str(value)
    if kind is str:
        return _json_escape(value)
    if kind is bool:
        return "true" if value else "false"
    if kind is float and math.isfinite(value):
        return repr(value)
    return json.dumps(value)


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: int
    kind: str
    job_id: Optional[int] = None
    kernel: Optional[str] = None
    detail: Optional[int] = None  # kind-specific payload (e.g. WG count)
    cu: Optional[int] = None      # compute unit (WG-level events)
    queue: Optional[int] = None   # hardware queue (job_enqueued)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form used by the exporters."""
        return {"time": self.time, "kind": self.kind, "job_id": self.job_id,
                "kernel": self.kernel, "detail": self.detail,
                "cu": self.cu, "queue": self.queue}

    def as_json_line(self) -> str:
        """``json.dumps(self.as_dict())``, hand-rolled.

        This is the JSONL sink's per-event hot path; skipping the dict
        build and the generic encoder makes streaming several times
        cheaper.  Output is byte-identical to the generic form (the
        inline None checks mirror :func:`_scalar` for the int-typed
        fields).
        """
        kernel = self.kernel
        return ('{"time": %d, "kind": %s, "job_id": %s, "kernel": %s, '
                '"detail": %s, "cu": %s, "queue": %s}'
                % (self.time, _json_escape(self.kind),
                   "null" if self.job_id is None else self.job_id,
                   "null" if kernel is None else _json_escape(kernel),
                   "null" if self.detail is None else self.detail,
                   "null" if self.cu is None else self.cu,
                   "null" if self.queue is None else self.queue))


class TraceRecorder:
    """Collects trace events during one run.

    ``sink`` chooses the retention policy (default: an unbounded
    :class:`~repro.telemetry.sinks.ListSink`, the historical list-backed
    behaviour).  ``events`` exposes the retained records; with the list
    sink it is the live backing list itself.
    """

    def __init__(self, wg_events: bool = False, sink=None) -> None:
        if sink is None:
            # Deferred import: repro.telemetry's package init imports
            # this module (hub -> trace), so a module-level import of
            # the sibling sinks module would be circular.
            from ..telemetry.sinks import ListSink
            sink = ListSink()
        #: Record per-WG issue/completion events (large traces).
        self.wg_events = wg_events
        #: The TelemetrySink receiving every event.
        self.sink = sink
        # The list sink's backing append is the plain list.append the
        # pre-sink recorder used; other sinks pay their own method call.
        self._append = (sink.records.append if sink.kind == "list"
                        else sink.append)
        self._kind_counts: Dict[str, int] = {}

    @property
    def events(self) -> List[TraceEvent]:
        """The retained events (the live list under the default sink)."""
        return self.sink.items()

    def replay(self) -> List[TraceEvent]:
        """Every event of the run, reading a JSONL spill back if needed.

        In-memory sinks return their retained records (identical to
        ``events``); a JSONL sink retains nothing, so its spill file is
        flushed and parsed back into :class:`TraceEvent` records.  The
        returned list is O(run) — this is for post-run export, not the
        hot path.
        """
        sink = self.sink
        if sink.kind == "jsonl" and sink.total:
            sink.flush()
            return [TraceEvent(**record) for record in sink.read_back()]
        return sink.items()

    def emit(self, time: int, kind: str, job_id: Optional[int] = None,
             kernel: Optional[str] = None,
             detail: Optional[int] = None, cu: Optional[int] = None,
             queue: Optional[int] = None) -> None:
        """Append one event (kind must be a known kind)."""
        if kind not in _KNOWN_KINDS:
            raise SimulationError(f"unknown trace event kind {kind!r}")
        if not self.wg_events and kind in _WG_KINDS:
            return
        counts = self._kind_counts
        counts[kind] = counts.get(kind, 0) + 1
        self._append(TraceEvent(time, kind, job_id, kernel, detail,
                                cu, queue))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Number of events per kind, over the *whole* run.

        Maintained incrementally at emit time, so the counts stay exact
        even when a bounded sink has evicted or spilled the records.
        """
        return dict(self._kind_counts)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All retained events of one kind, in time order."""
        return [event for event in self.events if event.kind == kind]

    def job_timeline(self, job_id: int) -> List[TraceEvent]:
        """Every retained event attributed to one job."""
        return [event for event in self.events if event.job_id == job_id]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_jsonl(self, path: str) -> int:
        """Write events as JSON lines; returns the event count.

        Missing parent directories are created.  Under a JSONL spill
        sink the full on-disk stream is copied (the in-memory view is
        empty by design); other sinks write their retained records.
        """
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        if self.sink.kind == "jsonl":
            self.sink.flush()
            if os.path.abspath(self.sink.path) != os.path.abspath(path):
                shutil.copyfile(self.sink.path, path)
            return self.sink.total
        with open(path, "w", encoding="utf-8") as sink:
            for event in self.events:
                sink.write(json.dumps(event.as_dict()) + "\n")
        return len(self.events)

    def to_csv(self, path: str) -> int:
        """Write retained events as CSV; returns the event count.

        Missing parent directories are created.
        """
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        with open(path, "w", encoding="utf-8", newline="") as sink:
            writer = csv.DictWriter(sink, fieldnames=EVENT_FIELDS)
            writer.writeheader()
            count = 0
            for event in self.events:
                writer.writerow(event.as_dict())
                count += 1
        return count


def occupancy_timeline(recorder: TraceRecorder,
                       bucket: int) -> List[Tuple[int, int]]:
    """Device in-flight WG count sampled at ``bucket``-tick boundaries.

    Requires a WG-level trace.  Returns ``[(bucket_start, wgs_in_flight
    at bucket end), ...]`` covering the traced span.
    """
    if bucket <= 0:
        raise SimulationError("bucket must be positive")
    if not recorder.wg_events:
        raise SimulationError("occupancy needs a wg_events=True trace")
    deltas: Dict[int, int] = {}
    last_time = 0
    for event in recorder.events:
        if event.kind == "wg_issue":
            deltas[event.time] = deltas.get(event.time, 0) + 1
        elif event.kind == "wg_complete":
            deltas[event.time] = deltas.get(event.time, 0) - 1
        elif event.kind == "preemption" and event.detail:
            deltas[event.time] = deltas.get(event.time, 0) - event.detail
        last_time = max(last_time, event.time)
    timeline: List[Tuple[int, int]] = []
    level = 0
    boundary = bucket
    for time in sorted(deltas):
        while time >= boundary:
            timeline.append((boundary - bucket, level))
            boundary += bucket
        level += deltas[time]
    while boundary <= last_time + bucket:
        timeline.append((boundary - bucket, level))
        boundary += bucket
    return timeline


def render_occupancy(timeline: List[Tuple[int, int]], width: int = 50,
                     max_rows: int = 40) -> str:
    """ASCII rendering of an occupancy timeline (one row per bucket)."""
    if not timeline:
        return "(empty trace)"
    peak = max(level for _, level in timeline) or 1
    step = max(1, len(timeline) // max_rows)
    lines = []
    for start, level in timeline[::step]:
        bar = "#" * round(width * level / peak)
        lines.append(f"{start:>12d}  {level:>5d}  {bar}")
    return "\n".join(lines)
