"""Top-level assembly: one GPU system ready to run a workload.

:class:`GPUSystem` wires the simulator, compute units, WG dispatcher,
queue pool, command processor, profiling table, host channel, energy meter
and metrics collector together around a scheduling policy, then runs a job
list to completion.  This is the object the public API and the experiment
harness construct.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, TYPE_CHECKING

from ..config import DEFAULT_CONFIG, SimConfig
from ..core.profiling import KernelProfilingTable
from ..errors import SimulationError
from ..metrics.collector import MetricsCollector, RunMetrics
from . import modes as _modes
from .command_processor import CommandProcessor
from .dispatcher import WGDispatcher
from .energy import EnergyMeter
from .engine import Simulator
from .host import Host
from .job import Job
from .queues import QueuePool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..schedulers.base import SchedulerPolicy
    from ..telemetry.hub import TelemetryHub


class GPUSystem:
    """A simulated GPU + host pair driven by one scheduling policy.

    ``trace`` attaches a bare :class:`~repro.sim.trace.TraceRecorder`;
    ``telemetry`` attaches a full :class:`~repro.telemetry.hub
    .TelemetryHub` (lifecycle trace, decision log, metrics registry and
    simulator self-profiler).  With neither, the telemetry layer stays
    completely detached and runs are bit-identical to the untraced path.
    """

    def __init__(self, policy: "SchedulerPolicy",
                 config: SimConfig = DEFAULT_CONFIG,
                 trace=None, telemetry: "TelemetryHub" = None,
                 validator=None, retire: Optional[bool] = None) -> None:
        from ..schedulers.base import DeviceContext

        self.config = config
        self.policy = policy
        #: Optional TelemetryHub collecting this run's full telemetry.
        self.telemetry = telemetry
        if trace is None and telemetry is not None:
            trace = telemetry.trace
        #: Optional TraceRecorder capturing this run's events.
        self.trace = trace
        self.sim = Simulator(max_time=config.max_sim_time)
        if telemetry is not None and telemetry.profiler is not None:
            self.sim.profiler = telemetry.profiler
        self.energy = EnergyMeter(config.energy)
        self.dispatcher = WGDispatcher(self.sim, config.gpu, self.energy)
        self.pool = QueuePool(config.gpu.num_queues)
        self.profiler = KernelProfilingTable(config.overheads.lax_update_period)
        self.dispatcher.profiler = self.profiler
        self.dispatcher.trace = trace
        self.metrics = MetricsCollector(
            registry=telemetry.registry if telemetry is not None else None)
        self.metrics.trace = trace
        if telemetry is not None and telemetry.windows is not None:
            self.metrics.windows = telemetry.windows
            if telemetry.windows.occupancy_probe is None:
                cus = self.dispatcher.cus
                telemetry.windows.occupancy_probe = \
                    lambda: sum(cu.num_residents for cu in cus)
        self.ctx = DeviceContext(self.sim, config, self.pool,
                                 self.dispatcher, self.profiler, self.metrics,
                                 energy=self.energy)
        self.ctx.telemetry = telemetry
        self.cp = CommandProcessor(self.sim, config.overheads, self.pool,
                                   self.dispatcher, policy, self.profiler,
                                   self.metrics)
        # Job retirement (streaming memory mode): explicit argument wins,
        # otherwise the ambient default from repro.sim.modes.
        if retire is None:
            retire = _modes.RETIRE_JOBS
        self.cp.retire = bool(retire)
        self.cp.trace = trace
        self.ctx.cp = self.cp
        self.host = Host(self.sim, config.overheads, self.cp, self.metrics)
        self.ctx.host = self.host
        self.dispatcher.attach_policy(policy)
        policy.bind(self.ctx)
        policy.start()
        #: Optional InvariantChecker auditing this run (see
        #: :mod:`repro.validation.invariants`); attaching threads it
        #: through the simulator, CP, dispatcher and every CU.
        self.validator = validator
        if validator is not None:
            validator.attach(self)
        self._submitted = False

    def submit_workload(self, jobs: Iterable[Job]) -> None:
        """Schedule each job's arrival; may be called once per system."""
        if self._submitted:
            raise SimulationError("workload already submitted")
        self._submitted = True
        job_list: List[Job] = sorted(jobs, key=lambda j: (j.arrival, j.job_id))
        if not job_list:
            raise SimulationError("empty workload")
        for job in job_list:
            self.sim.schedule_at(job.arrival, self._arrive, job)

    def submit_stream(self, jobs: Iterable[Job],
                      max_jobs: Optional[int] = None,
                      lookahead: int = 1) -> "StreamFeeder":
        """Feed a lazy job stream; only in-flight jobs are materialized.

        ``jobs`` may be an unbounded generator with monotone
        non-decreasing arrival times (ties fire in stream order);
        ``max_jobs`` truncates it.  The feeder keeps at most
        ``lookahead`` future arrivals scheduled: each delivery pulls the
        next job from the generator, so memory holds the live jobs plus
        the look-ahead window instead of the whole workload.  Arrival
        events ride the engine's dedicated arrival lane
        (:meth:`~repro.sim.engine.Simulator.schedule_arrival`), which
        makes the run bit-identical to ``submit_workload`` over the same
        jobs pre-generated as a finite list.
        """
        if self._submitted:
            raise SimulationError("workload already submitted")
        self._submitted = True
        feeder = StreamFeeder(self, jobs, max_jobs, lookahead)
        feeder.prime()
        return feeder

    def _arrive(self, job: Job) -> None:
        self.metrics.on_job_arrival(job, self.sim.now)
        self.policy.on_job_arrival(job)

    def run(self) -> RunMetrics:
        """Run the workload to completion and return the run summary."""
        if not self._submitted:
            raise SimulationError("no workload submitted")
        profiler = self.sim.profiler
        if profiler is not None:
            profiler.begin_run()
        self.sim.run()
        if profiler is not None:
            profiler.end_run(self.sim.events_fired, self.sim.now)
        if self.pool.num_bound or self.pool.backlog:
            raise SimulationError(
                f"run drained with {self.pool.num_bound} bound jobs and "
                f"{len(self.pool.backlog)} backlogged jobs; "
                "a kernel chain stalled")
        end_time = self.metrics.last_completion or self.sim.now
        telemetry = self.telemetry
        if telemetry is not None:
            if telemetry.windows is not None:
                telemetry.windows.finalize(end_time)
            telemetry.flush()
        metrics = self.metrics.finalize(
            end_time, self.energy,
            wgs_preempted=self.dispatcher.wgs_preempted)
        if self.validator is not None:
            self.validator.on_run_end(self, metrics)
        return metrics


class StreamFeeder:
    """Pulls jobs from a generator and schedules their arrivals lazily.

    Built by :meth:`GPUSystem.submit_stream`.  The feeder is the only
    reference to jobs that have not yet arrived, so with retirement on
    the run holds O(live + lookahead) job state regardless of how many
    jobs flow through.
    """

    def __init__(self, system: GPUSystem, jobs: Iterable[Job],
                 max_jobs: Optional[int], lookahead: int) -> None:
        if lookahead < 1:
            raise SimulationError(
                f"stream lookahead must be >= 1, got {lookahead}")
        if max_jobs is not None and max_jobs < 1:
            raise SimulationError(
                f"stream max_jobs must be >= 1, got {max_jobs}")
        self._system = system
        self._iter: Iterator[Job] = iter(jobs)
        self._remaining = max_jobs
        self._lookahead = lookahead
        self._last_arrival: Optional[int] = None
        #: Jobs whose arrival has been scheduled so far.
        self.fed = 0
        #: True once the generator (or the max_jobs budget) ran dry.
        self.exhausted = False

    def prime(self) -> None:
        """Schedule the first ``lookahead`` arrivals; reject empty streams."""
        for _ in range(self._lookahead):
            if not self._pull():
                break
        if self.fed == 0:
            raise SimulationError("empty workload")

    def _pull(self) -> bool:
        if self.exhausted:
            return False
        if self._remaining is not None and self._remaining <= 0:
            self.exhausted = True
            return False
        job = next(self._iter, None)
        if job is None:
            self.exhausted = True
            return False
        if (self._last_arrival is not None
                and job.arrival < self._last_arrival):
            raise SimulationError(
                f"stream arrivals must be non-decreasing: job "
                f"{job.job_id} arrives at {job.arrival} after "
                f"{self._last_arrival}")
        self._last_arrival = job.arrival
        if self._remaining is not None:
            self._remaining -= 1
        self._system.sim.schedule_arrival(job.arrival, self._deliver, job)
        self.fed += 1
        return True

    def _deliver(self, job: Job) -> None:
        self._system._arrive(job)
        self._pull()


def run_workload(policy: "SchedulerPolicy", jobs: Iterable[Job],
                 config: SimConfig = DEFAULT_CONFIG) -> RunMetrics:
    """Convenience one-shot: build a system, run ``jobs``, return metrics."""
    system = GPUSystem(policy, config)
    system.submit_workload(jobs)
    return system.run()
