"""Top-level assembly: one GPU system ready to run a workload.

:class:`GPUSystem` wires the simulator, compute units, WG dispatcher,
queue pool, command processor, profiling table, host channel, energy meter
and metrics collector together around a scheduling policy, then runs a job
list to completion.  This is the object the public API and the experiment
harness construct.
"""

from __future__ import annotations

from typing import Iterable, List, TYPE_CHECKING

from ..config import DEFAULT_CONFIG, SimConfig
from ..core.profiling import KernelProfilingTable
from ..errors import SimulationError
from ..metrics.collector import MetricsCollector, RunMetrics
from .command_processor import CommandProcessor
from .dispatcher import WGDispatcher
from .energy import EnergyMeter
from .engine import Simulator
from .host import Host
from .job import Job
from .queues import QueuePool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..schedulers.base import SchedulerPolicy
    from ..telemetry.hub import TelemetryHub


class GPUSystem:
    """A simulated GPU + host pair driven by one scheduling policy.

    ``trace`` attaches a bare :class:`~repro.sim.trace.TraceRecorder`;
    ``telemetry`` attaches a full :class:`~repro.telemetry.hub
    .TelemetryHub` (lifecycle trace, decision log, metrics registry and
    simulator self-profiler).  With neither, the telemetry layer stays
    completely detached and runs are bit-identical to the untraced path.
    """

    def __init__(self, policy: "SchedulerPolicy",
                 config: SimConfig = DEFAULT_CONFIG,
                 trace=None, telemetry: "TelemetryHub" = None,
                 validator=None) -> None:
        from ..schedulers.base import DeviceContext

        self.config = config
        self.policy = policy
        #: Optional TelemetryHub collecting this run's full telemetry.
        self.telemetry = telemetry
        if trace is None and telemetry is not None:
            trace = telemetry.trace
        #: Optional TraceRecorder capturing this run's events.
        self.trace = trace
        self.sim = Simulator(max_time=config.max_sim_time)
        if telemetry is not None and telemetry.profiler is not None:
            self.sim.profiler = telemetry.profiler
        self.energy = EnergyMeter(config.energy)
        self.dispatcher = WGDispatcher(self.sim, config.gpu, self.energy)
        self.pool = QueuePool(config.gpu.num_queues)
        self.profiler = KernelProfilingTable(config.overheads.lax_update_period)
        self.dispatcher.profiler = self.profiler
        self.dispatcher.trace = trace
        self.metrics = MetricsCollector(
            registry=telemetry.registry if telemetry is not None else None)
        self.metrics.trace = trace
        if telemetry is not None and telemetry.windows is not None:
            self.metrics.windows = telemetry.windows
            if telemetry.windows.occupancy_probe is None:
                cus = self.dispatcher.cus
                telemetry.windows.occupancy_probe = \
                    lambda: sum(cu.num_residents for cu in cus)
        self.ctx = DeviceContext(self.sim, config, self.pool,
                                 self.dispatcher, self.profiler, self.metrics,
                                 energy=self.energy)
        self.ctx.telemetry = telemetry
        self.cp = CommandProcessor(self.sim, config.overheads, self.pool,
                                   self.dispatcher, policy, self.profiler,
                                   self.metrics)
        self.cp.trace = trace
        self.ctx.cp = self.cp
        self.host = Host(self.sim, config.overheads, self.cp, self.metrics)
        self.ctx.host = self.host
        self.dispatcher.attach_policy(policy)
        policy.bind(self.ctx)
        policy.start()
        #: Optional InvariantChecker auditing this run (see
        #: :mod:`repro.validation.invariants`); attaching threads it
        #: through the simulator, CP, dispatcher and every CU.
        self.validator = validator
        if validator is not None:
            validator.attach(self)
        self._submitted = False

    def submit_workload(self, jobs: Iterable[Job]) -> None:
        """Schedule each job's arrival; may be called once per system."""
        if self._submitted:
            raise SimulationError("workload already submitted")
        self._submitted = True
        job_list: List[Job] = sorted(jobs, key=lambda j: (j.arrival, j.job_id))
        if not job_list:
            raise SimulationError("empty workload")
        for job in job_list:
            self.sim.schedule_at(job.arrival, self._arrive, job)

    def _arrive(self, job: Job) -> None:
        self.metrics.on_job_arrival(job, self.sim.now)
        self.policy.on_job_arrival(job)

    def run(self) -> RunMetrics:
        """Run the workload to completion and return the run summary."""
        if not self._submitted:
            raise SimulationError("no workload submitted")
        profiler = self.sim.profiler
        if profiler is not None:
            profiler.begin_run()
        self.sim.run()
        if profiler is not None:
            profiler.end_run(self.sim.events_fired, self.sim.now)
        if self.pool.num_bound or self.pool.backlog:
            raise SimulationError(
                f"run drained with {self.pool.num_bound} bound jobs and "
                f"{len(self.pool.backlog)} backlogged jobs; "
                "a kernel chain stalled")
        end_time = self.metrics.last_completion or self.sim.now
        telemetry = self.telemetry
        if telemetry is not None:
            if telemetry.windows is not None:
                telemetry.windows.finalize(end_time)
            telemetry.flush()
        metrics = self.metrics.finalize(
            end_time, self.energy,
            wgs_preempted=self.dispatcher.wgs_preempted)
        if self.validator is not None:
            self.validator.on_run_end(self, metrics)
        return metrics


def run_workload(policy: "SchedulerPolicy", jobs: Iterable[Job],
                 config: SimConfig = DEFAULT_CONFIG) -> RunMetrics:
    """Convenience one-shot: build a system, run ``jobs``, return metrics."""
    system = GPUSystem(policy, config)
    system.submit_workload(jobs)
    return system.run()
