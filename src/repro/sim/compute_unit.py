"""Compute units: processor-sharing servers with occupancy limits.

Each CU models a GCN compute unit (Table 2): 4 SIMD units, 2560 thread
slots, 40 wavefront slots, 256 KB of vector registers and 64 KB of LDS.
Resident workgroups progress by **processor sharing**: with ``n`` resident
WGs, a WG whose kernel has CU-concurrency ``c`` advances at rate
``min(1, c / n)``.  Compute-bound kernels (``c = 4``, one per SIMD unit)
slow down past four residents; latency-bound kernels hide memory latency
and keep scaling to higher occupancy (``c`` up to the 10-wavefront slot
limit).  This contention behaviour is the signal LAX's workgroup-
completion-rate counters observe.

Timing is event-driven: the CU keeps one pending timer armed at the
earliest WG completion under the current rates; any residency change
re-syncs remaining work and re-arms the timer.

Two rate facts make the hot paths cheap without changing a single result
(``docs/performance.md`` walks through both):

* residents sharing a CU-concurrency value share one progress rate, so
  ``_sync`` computes ``dt * rate`` once per rate group and applies the
  same float to each member (bit-identical to computing it per WG), and
  ``_reschedule`` reduces the min-completion scan to one division per
  group (division by a positive rate is monotonic, so the minimum
  remaining work per group yields the exact same minimum delay);
* a batch of WGs admitted at one timestamp needs only one progress sync
  and one timer re-arm, so the dispatcher brackets its pump with
  :meth:`ComputeUnit.issue_wgs` / :meth:`ComputeUnit.flush_issue` instead
  of paying O(residents) float work per WG via :meth:`start_wg`.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

from ..config import GPUConfig
from ..errors import ResourceError, SimulationError
from .cu_arrays import NO_RESIDENTS, ResidentArrays
from .engine import EventHandle, Simulator
from .energy import EnergyMeter
from .kernel import KernelDescriptor, KernelInstance

try:  # pragma: no cover - exercised implicitly on numpy-less hosts
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Remaining work below this many ticks counts as finished (float slack).
_WORK_EPSILON = 0.5

#: Resident count below which the scalar sync/reschedule loops beat the
#: array path (numpy's fixed per-op cost dominates tiny arrays).  The
#: paper's GCN config caps a CU at 40 wavefront slots, so on that config
#: the arrays never engage and the grouped scalar loops — already the
#: PR-4 fast path — keep the hot seat; configs with larger CUs cross
#: over.  Measured honestly in ``BENCH_vectorized_core.json``.
_VEC_MIN_RESIDENTS = 64


class ResidentWG:
    """A workgroup resident on a CU with its remaining service demand."""

    __slots__ = ("kernel", "remaining", "threads", "wavefronts",
                 "vgpr_bytes", "lds_bytes", "concurrency", "bw_demand")

    def __init__(self, kernel: KernelInstance, wavefront_size: int) -> None:
        desc = kernel.descriptor
        self.kernel = kernel
        self.remaining = float(desc.wg_work)
        self.threads = desc.threads_per_wg
        self.wavefronts = desc.wavefronts_per_wg(wavefront_size)
        self.vgpr_bytes = desc.vgpr_bytes_per_wg
        self.lds_bytes = desc.lds_bytes_per_wg
        self.concurrency = desc.cu_concurrency
        self.bw_demand = desc.bw_demand


class ComputeUnit:
    """One processor-sharing compute unit."""

    #: Class-level engine-mode switch (see :mod:`repro.sim.modes`).
    #: ``False`` restores the seed per-WG sync/min-scan loops.
    grouped = True

    #: Engine-mode switch (see :mod:`repro.sim.modes`): ``True`` keeps the
    #: residents' (remaining, concurrency) columns in numpy arrays so
    #: ``_sync``/``_reschedule`` become elementwise rate math plus one
    #: reduction.  Bit-identical to both the seed per-WG loop and the
    #: grouped run-length loop — argued in ``docs/performance.md``.
    vectorized = True

    #: Event-core-mode switch (see :mod:`repro.sim.modes`): memoize
    #: :meth:`free_full_rate_slots` per requested concurrency class.  The
    #: admission fast path asks every CU per arrival; the answer is a
    #: pure integer function of the resident set, so the memo is cleared
    #: at every residency mutation (unconditionally — flag flips mid-run
    #: must never leave a stale entry) and exact while it lives.
    slot_cache = True

    #: Event-core-mode switch (see :mod:`repro.sim.modes`): drain a
    #: completion timer in one pass — progress application, the
    #: finished/survivor split and the lane-time sum are fused into a
    #: single loop over the residents instead of ``_sync`` plus two
    #: listcomps.  Same float expressions in the same order as the
    #: grouped seed path, so results match bit for bit; the grouped
    #: scalar representation is required (the resident arrays keep
    #: their own vectorized drain).
    fused_drain = True

    def __init__(self, cu_id: int, sim: Simulator, config: GPUConfig,
                 energy: EnergyMeter,
                 on_wg_complete: Callable[[KernelInstance, int], None]) -> None:
        self.cu_id = cu_id
        self._sim = sim
        self._config = config
        self._energy = energy
        self._on_wg_complete = on_wg_complete
        # Capacity limits cached off the config: one source of truth for
        # the wavefront formula (GPUConfig.max_wavefronts_per_cu) shared
        # by can_accept / free_wavefronts / batch_capacity, and no
        # attribute chains on the per-WG placement path.
        self._wavefront_size = config.wavefront_size
        self._threads_limit = config.threads_per_cu
        self._wavefronts_limit = config.max_wavefronts_per_cu
        self._vgpr_limit = config.vgpr_bytes_per_cu
        self._lds_limit = config.lds_bytes_per_cu
        #: Invoked when held (context-save) resources free up, so the
        #: dispatcher can refill the capacity (set by the WG dispatcher).
        self.on_capacity_freed: Optional[Callable[[], None]] = None
        self._residents: List[ResidentWG] = []
        self._timer: Optional[EventHandle] = None
        self._last_sync = 0
        # True between issue_wgs and flush_issue: residents were added but
        # the completion timer has not been re-armed yet.
        self._issue_dirty = False
        # Occupancy accounting.
        self.used_threads = 0
        self.used_wavefronts = 0
        self.used_vgpr = 0
        self.used_lds = 0
        # Resources held by in-flight preemption context saves.
        self._held_threads = 0
        self._held_wavefronts = 0
        self._held_vgpr = 0
        self._held_lds = 0
        # Memory-bandwidth sharing (0 slice = model disabled).
        self._bw_slice = config.memory_bw_bytes_per_ns / config.num_cus
        self._bw_demand = 0.0
        #: Cumulative lane-ticks of executed work.
        self.work_done = 0.0
        #: Optional InvariantChecker auditing occupancy after every
        #: residency change (same off-path pattern as the trace sinks).
        self.validator = None
        # Vectorized-mode state (repro.sim.cu_arrays): the dispatcher's
        # occupancy rows this CU writes through to (None until the
        # dispatcher first runs vectorized — seed systems never attach),
        # the resident SoA (lazily created by _sync under the flag) and
        # the maintained min resident CU-concurrency backing
        # free_full_rate_slots in array form.
        self._occ = None
        self._res: Optional[ResidentArrays] = None
        self._min_conc = NO_RESIDENTS
        # free_full_rate_slots memo: concurrency -> slots (see slot_cache).
        self._slots: dict = {}

    # ------------------------------------------------------------------
    # Vectorized-mode mirrors
    # ------------------------------------------------------------------

    def attach_occupancy(self, occ) -> None:
        """Adopt the dispatcher's occupancy rows and seed this CU's.

        Called once, lazily, by the dispatcher's first vectorized pump;
        from then on every residency/hold mutation writes the row through
        so the arrays always equal the scalar counters.
        """
        self._occ = occ
        residents = self._residents
        self._min_conc = (min(wg.concurrency for wg in residents)
                          if residents else NO_RESIDENTS)
        self._occ_write()

    def _occ_write(self) -> None:
        occ = self._occ
        if occ is None:
            return
        index = self.cu_id
        occ.free_threads[index] = (self._threads_limit - self.used_threads
                                   - self._held_threads)
        occ.free_wavefronts[index] = (self._wavefronts_limit
                                      - self.used_wavefronts
                                      - self._held_wavefronts)
        occ.free_vgpr[index] = (self._vgpr_limit - self.used_vgpr
                                - self._held_vgpr)
        occ.free_lds[index] = (self._lds_limit - self.used_lds
                               - self._held_lds)
        occ.loads[index] = len(self._residents)
        occ.min_conc[index] = self._min_conc

    def _recompute_min_conc(self) -> None:
        """Re-derive the min resident concurrency after evictions."""
        if self._occ is None:
            return
        res = self._res
        if res is not None and res.count == len(self._residents):
            self._min_conc = (int(res.concurrency[:res.count].min())
                              if res.count else NO_RESIDENTS)
            return
        residents = self._residents
        self._min_conc = (min(wg.concurrency for wg in residents)
                          if residents else NO_RESIDENTS)

    def _res_arrays(self) -> Optional[ResidentArrays]:
        """Resident SoA under the current mode flag.

        Creates the arrays on first vectorized use (from the WG objects,
        whose ``remaining`` is current at that point) and migrates the
        authoritative ``remaining`` values back into the objects when the
        flag is flipped off mid-run — the two stores never drift.
        """
        res = self._res
        if type(self).vectorized and _np is not None:
            if res is None and len(self._residents) >= _VEC_MIN_RESIDENTS:
                res = self._res = ResidentArrays(self._residents)
            return res
        if res is not None:
            res.writeback(self._residents)
            self._res = None
        return None

    # ------------------------------------------------------------------
    # Capacity queries
    # ------------------------------------------------------------------

    @property
    def num_residents(self) -> int:
        """Workgroups currently resident."""
        return len(self._residents)

    def rate_of(self, wg: ResidentWG) -> float:
        """Progress rate of one resident WG under current residency.

        Processor sharing over the SIMD units (``min(1, c/n)``), further
        throttled when the optional bandwidth model is on and the
        residents' aggregate traffic exceeds this CU's bandwidth slice.
        """
        n = len(self._residents)
        rate = 1.0 if n <= wg.concurrency else wg.concurrency / n
        if self._bw_slice > 0.0 and self._bw_demand > self._bw_slice:
            rate *= self._bw_slice / self._bw_demand
        return rate

    def free_full_rate_slots(self, concurrency: int) -> int:
        """Additional WGs of CU-concurrency ``concurrency`` this CU could
        host with every resident still progressing at full rate.

        Conservative: bounded by the incoming kernel's own concurrency and
        by the residents' (adding beyond the smallest resident concurrency
        would slow that resident down).
        """
        if ComputeUnit.slot_cache:
            cached = self._slots.get(concurrency)
            if cached is not None:
                return cached
            limit = concurrency
            for wg in self._residents:
                if wg.concurrency < limit:
                    limit = wg.concurrency
            value = limit - len(self._residents)
            if value < 0:
                value = 0
            self._slots[concurrency] = value
            return value
        limit = concurrency
        for wg in self._residents:
            limit = min(limit, wg.concurrency)
        return max(0, limit - len(self._residents))

    def free_threads(self) -> int:
        """Thread slots not used or held."""
        return self._threads_limit - self.used_threads - self._held_threads

    def free_wavefronts(self) -> int:
        """Wavefront slots not used or held."""
        return (self._wavefronts_limit
                - self.used_wavefronts - self._held_wavefronts)

    def free_vgpr(self) -> int:
        """VGPR bytes not used or held."""
        return self._vgpr_limit - self.used_vgpr - self._held_vgpr

    def free_lds(self) -> int:
        """LDS bytes not used or held."""
        return self._lds_limit - self.used_lds - self._held_lds

    def can_accept(self, desc: KernelDescriptor) -> bool:
        """Whether one WG of ``desc`` fits in the free resources."""
        if desc.threads_per_wg > (self._threads_limit - self.used_threads
                                  - self._held_threads):
            return False
        wavefronts = desc.wavefronts_per_wg(self._wavefront_size)
        if wavefronts > (self._wavefronts_limit
                         - self.used_wavefronts - self._held_wavefronts):
            return False
        if desc.vgpr_bytes_per_wg > (self._vgpr_limit
                                     - self.used_vgpr - self._held_vgpr):
            return False
        return desc.lds_bytes_per_wg <= (self._lds_limit
                                         - self.used_lds - self._held_lds)

    def batch_capacity(self, desc: KernelDescriptor,
                       backfill_only: bool = False) -> int:
        """How many WGs of ``desc`` this CU could admit right now.

        Exactly the number of consecutive :meth:`can_accept` /
        :meth:`start_wg` rounds that would succeed: after ``k``
        admissions a resource with per-WG need ``need`` and current slack
        ``free`` accepts another WG iff ``(k + 1) * need <= free``, so
        the per-resource bound is ``free // need``.  With
        ``backfill_only`` the bound of :meth:`free_full_rate_slots` is
        applied on top (every admitted WG carries ``desc.cu_concurrency``,
        so that limit is fixed for the whole batch).
        """
        cap = ((self._threads_limit - self.used_threads
                - self._held_threads) // desc.threads_per_wg)
        wavefronts = desc.wavefronts_per_wg(self._wavefront_size)
        bound = ((self._wavefronts_limit - self.used_wavefronts
                  - self._held_wavefronts) // wavefronts)
        if bound < cap:
            cap = bound
        if desc.vgpr_bytes_per_wg > 0:
            bound = ((self._vgpr_limit - self.used_vgpr
                      - self._held_vgpr) // desc.vgpr_bytes_per_wg)
            if bound < cap:
                cap = bound
        if desc.lds_bytes_per_wg > 0:
            bound = ((self._lds_limit - self.used_lds
                      - self._held_lds) // desc.lds_bytes_per_wg)
            if bound < cap:
                cap = bound
        if backfill_only:
            bound = self.free_full_rate_slots(desc.cu_concurrency)
            if bound < cap:
                cap = bound
        return cap if cap > 0 else 0

    # ------------------------------------------------------------------
    # WG lifecycle
    # ------------------------------------------------------------------

    def start_wg(self, kernel: KernelInstance) -> None:
        """Place one WG of ``kernel`` on this CU."""
        desc = kernel.descriptor
        if not self.can_accept(desc):
            raise ResourceError(
                f"CU{self.cu_id} cannot accept WG of {desc.name}")
        self._sync()
        if self._slots:
            self._slots.clear()
        wg = ResidentWG(kernel, self._config.wavefront_size)
        self._residents.append(wg)
        if self._res is not None:
            self._res.append(wg.remaining, wg.concurrency, 1)
        self._bw_demand += wg.bw_demand
        self.used_threads += wg.threads
        self.used_wavefronts += wg.wavefronts
        self.used_vgpr += wg.vgpr_bytes
        self.used_lds += wg.lds_bytes
        if self._occ is not None:
            if wg.concurrency < self._min_conc:
                self._min_conc = wg.concurrency
            self._occ_write()
        kernel.note_wg_issued(self._sim.now)
        self._reschedule()
        if self.validator is not None:
            self.validator.on_cu_update(self)

    def issue_wgs(self, kernel: KernelInstance, count: int) -> None:
        """Admit ``count`` WGs of ``kernel`` as one batch (no timer re-arm).

        The batched dispatcher has already solved placement against
        :meth:`batch_capacity`, so no per-WG fit check is repeated here;
        accrued progress is synced once at the old rates and the
        completion timer is left stale until :meth:`flush_issue` re-arms
        it.  Issuing B WGs this way costs one O(residents) sync + one
        reschedule instead of B of each.  Every pump must pair this with
        ``flush_issue`` before the event returns.
        """
        if count <= 0:
            return
        self._sync()
        if self._slots:
            self._slots.clear()
        desc = kernel.descriptor
        now = self._sim.now
        wavefront_size = self._wavefront_size
        residents = self._residents
        note_issued = kernel.note_wg_issued
        wg = None
        for _ in range(count):
            wg = ResidentWG(kernel, wavefront_size)
            residents.append(wg)
            self._bw_demand += wg.bw_demand
            note_issued(now)
        if self._res is not None:
            self._res.append(wg.remaining, wg.concurrency, count)
        self.used_threads += desc.threads_per_wg * count
        self.used_wavefronts += wg.wavefronts * count
        self.used_vgpr += desc.vgpr_bytes_per_wg * count
        self.used_lds += desc.lds_bytes_per_wg * count
        if self._occ is not None:
            if wg.concurrency < self._min_conc:
                self._min_conc = wg.concurrency
            self._occ_write()
        self._issue_dirty = True

    def flush_issue(self) -> None:
        """Re-arm the completion timer after an :meth:`issue_wgs` batch."""
        if self._issue_dirty:
            self._issue_dirty = False
            self._reschedule()
            if self.validator is not None:
                self.validator.on_cu_update(self)

    def preempt_kernel(self, kernel: KernelInstance, hold_time: int) -> int:
        """Evict all resident WGs of ``kernel``; their progress is lost.

        The evicted WGs' resources stay *held* for ``hold_time`` ticks to
        model the context-save traffic, then free up.  Returns the number
        of WGs evicted.
        """
        self._sync()
        evicted = [wg for wg in self._residents if wg.kernel is kernel]
        if not evicted:
            return 0
        if self._slots:
            self._slots.clear()
        if self._res is not None:
            keep = _np.fromiter((wg.kernel is not kernel
                                 for wg in self._residents),
                                dtype=bool, count=len(self._residents))
            self._res.compact(keep)
        self._residents = [wg for wg in self._residents if wg.kernel is not kernel]
        for wg in evicted:
            self._bw_demand -= wg.bw_demand
        held_threads = sum(wg.threads for wg in evicted)
        held_wavefronts = sum(wg.wavefronts for wg in evicted)
        held_vgpr = sum(wg.vgpr_bytes for wg in evicted)
        held_lds = sum(wg.lds_bytes for wg in evicted)
        self.used_threads -= held_threads
        self.used_wavefronts -= held_wavefronts
        self.used_vgpr -= held_vgpr
        self.used_lds -= held_lds
        for wg in evicted:
            wg.kernel.note_wg_preempted()
        if hold_time > 0:
            self._held_threads += held_threads
            self._held_wavefronts += held_wavefronts
            self._held_vgpr += held_vgpr
            self._held_lds += held_lds
            self._sim.schedule(hold_time, self._release_hold, held_threads,
                               held_wavefronts, held_vgpr, held_lds)
        if self._occ is not None:
            self._recompute_min_conc()
            self._occ_write()
        self._reschedule()
        if self.validator is not None:
            self.validator.on_cu_update(self)
        return len(evicted)

    def residents_of(self, kernel: KernelInstance) -> int:
        """Count of resident WGs belonging to ``kernel``."""
        return sum(1 for wg in self._residents if wg.kernel is kernel)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _release_hold(self, threads: int, wavefronts: int, vgpr: int,
                      lds: int) -> None:
        self._held_threads -= threads
        self._held_wavefronts -= wavefronts
        self._held_vgpr -= vgpr
        self._held_lds -= lds
        if min(self._held_threads, self._held_wavefronts,
               self._held_vgpr, self._held_lds) < 0:
            raise SimulationError(f"CU{self.cu_id} hold accounting underflow")
        self._occ_write()
        if self.validator is not None:
            self.validator.on_cu_update(self)
        if self.on_capacity_freed is not None:
            self.on_capacity_freed()

    def _bw_factor(self) -> float:
        """Shared bandwidth throttle on every resident's rate (1.0 = off)."""
        if self._bw_slice > 0.0 and self._bw_demand > self._bw_slice:
            return self._bw_slice / self._bw_demand
        return 1.0

    def _sync(self) -> None:
        """Apply progress accrued since the last sync at the old rates.

        Grouped mode computes ``dt * rate`` once per CU-concurrency class
        and applies that same float to every member — bit-identical to
        the seed's per-WG evaluation, because members of a class share
        the exact rate expression and float multiplication is
        deterministic.  The accumulation order over residents (and hence
        the energy meter's float sums) is unchanged.
        """
        now = self._sim.now
        dt = now - self._last_sync
        residents = self._residents
        res = self._res_arrays()
        if dt > 0 and residents:
            if res is not None:
                # Vectorized: elementwise IEEE-754 double ops reproduce
                # the scalar loop exactly — ``c / n`` and ``dt * rate``
                # are the same operations per element (dt < 2^53, so the
                # int->double conversion is lossless), and the lane-time
                # sum uses cumsum, which numpy evaluates as the same
                # left-to-right sequential accumulation as the loop
                # (np.add.reduce would not: it sums pairwise).
                n = len(residents)
                conc = res.concurrency[:res.count]
                rate = _np.where(conc >= n, 1.0, conc / n)
                factor = self._bw_factor()
                if factor != 1.0:
                    rate *= factor
                progress = dt * rate
                res.remaining[:res.count] -= progress
                lane_time = float(progress.cumsum()[-1])
                self.work_done += lane_time
                self._energy.add_lane_time(lane_time)
                self._last_sync = now
                return
            lane_time = 0.0
            if not self.grouped:
                for wg in residents:
                    progress = dt * self.rate_of(wg)
                    wg.remaining -= progress
                    lane_time += progress
            else:
                # Run-length grouping: residents arrive kernel-major, so
                # same-concurrency WGs sit in consecutive runs and the
                # rate is recomputed only on a run boundary.  A repeat of
                # an earlier concurrency recomputes the identical float
                # (same deterministic expression), so results match the
                # per-WG loop bit for bit.
                n = len(residents)
                factor = self._bw_factor()
                last_c = 0
                progress = 0.0
                for wg in residents:
                    c = wg.concurrency
                    if c != last_c:
                        rate = 1.0 if n <= c else c / n
                        if factor != 1.0:
                            rate *= factor
                        progress = dt * rate
                        last_c = c
                    wg.remaining -= progress
                    lane_time += progress
            self.work_done += lane_time
            self._energy.add_lane_time(lane_time)
        self._last_sync = now

    def _reschedule(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._residents:
            return
        min_delay: Optional[float] = None
        res = self._res
        # The resident arrays are authoritative whenever they exist (a
        # flag flip migrates them back inside the next _sync), so their
        # presence — not the flag — selects the path here.
        if res is not None:
            # Vectorized: the per-WG delays are the identical floats the
            # scalar scans divide out (same rate expression, same
            # division), and a min-reduction is exact regardless of
            # evaluation order, so the selected delay matches bit for
            # bit.
            n = res.count
            conc = res.concurrency[:n]
            rate = _np.where(conc >= n, 1.0, conc / n)
            factor = self._bw_factor()
            if factor != 1.0:
                rate *= factor
            min_delay = float((res.remaining[:n] / rate).min())
        elif not self.grouped:
            for wg in self._residents:
                delay = wg.remaining / self.rate_of(wg)
                if min_delay is None or delay < min_delay:
                    min_delay = delay
        else:
            # Min completion per rate run: comparisons find the least
            # remaining work of each consecutive same-concurrency run,
            # then one division per run.  Division by a positive rate is
            # monotonic, so each run's minimum delay — and the overall
            # minimum — is the exact float the seed's per-WG scan would
            # have selected.
            residents = self._residents
            n = len(residents)
            factor = self._bw_factor()
            last_c = 0
            rate = 1.0
            run_min = 0.0
            for wg in residents:
                c = wg.concurrency
                if c != last_c:
                    if last_c:
                        delay = run_min / rate
                        if min_delay is None or delay < min_delay:
                            min_delay = delay
                    rate = 1.0 if n <= c else c / n
                    if factor != 1.0:
                        rate *= factor
                    last_c = c
                    run_min = wg.remaining
                else:
                    remaining = wg.remaining
                    if remaining < run_min:
                        run_min = remaining
            delay = run_min / rate
            if min_delay is None or delay < min_delay:
                min_delay = delay
        if min_delay <= _WORK_EPSILON:
            ticks = 0
        else:
            ticks = max(1, math.ceil(min_delay))
        self._timer = self._sim.schedule(ticks, self._on_timer)

    def _on_timer(self) -> None:
        self._timer = None
        if (ComputeUnit.fused_drain and self.grouped
                and self._res is None and self._residents):
            self._drain_timer()
            return
        self._sync()
        res = self._res
        if res is not None:
            # Arrays are authoritative for remaining work; the finished
            # filter keeps resident order, so completions fire in the
            # exact sequence the scalar listcomp produces.
            mask = res.remaining[:res.count] <= _WORK_EPSILON
            if not mask.any():
                # Rates changed between arming and firing; just re-arm.
                self._reschedule()
                return
            flags = mask.tolist()
            residents = self._residents
            finished = [wg for wg, done in zip(residents, flags) if done]
            self._residents = [wg for wg, done in zip(residents, flags)
                               if not done]
            res.compact(~mask)
        else:
            finished = [wg for wg in self._residents
                        if wg.remaining <= _WORK_EPSILON]
            if not finished:
                # Rates changed between arming and firing; just re-arm.
                self._reschedule()
                return
            self._residents = [wg for wg in self._residents
                               if wg.remaining > _WORK_EPSILON]
        if self._slots:
            self._slots.clear()
        for wg in finished:
            self._bw_demand -= wg.bw_demand
            self.used_threads -= wg.threads
            self.used_wavefronts -= wg.wavefronts
            self.used_vgpr -= wg.vgpr_bytes
            self.used_lds -= wg.lds_bytes
        if self._occ is not None:
            self._recompute_min_conc()
            self._occ_write()
        self._reschedule()
        if self.validator is not None:
            self.validator.on_cu_update(self)
        now = self._sim.now
        for wg in finished:
            self._on_wg_complete(wg.kernel, now)

    def _drain_timer(self) -> None:
        """One-pass timer drain (``fused_drain``, grouped scalar only).

        Fuses ``_sync``'s run-length progress application with the
        finished/survivor partition and the lane-time accumulation: one
        loop over the residents instead of three.  Every float operation
        (``c / n``, the bandwidth factor multiply, ``dt * rate``, the
        subtraction and the left-to-right ``lane_time`` sum) is the exact
        expression of the grouped seed path evaluated in the same order,
        and the partition preserves resident order, so completions fire
        in the identical sequence with identical state.
        """
        now = self._sim.now
        dt = now - self._last_sync
        residents = self._residents
        finished = None
        if dt > 0:
            n = len(residents)
            factor = self._bw_factor()
            lane_time = 0.0
            last_c = 0
            progress = 0.0
            for wg in residents:
                c = wg.concurrency
                if c != last_c:
                    rate = 1.0 if n <= c else c / n
                    if factor != 1.0:
                        rate *= factor
                    progress = dt * rate
                    last_c = c
                rem = wg.remaining - progress
                wg.remaining = rem
                lane_time += progress
                if rem <= _WORK_EPSILON:
                    if finished is None:
                        finished = [wg]
                    else:
                        finished.append(wg)
            self.work_done += lane_time
            self._energy.add_lane_time(lane_time)
        else:
            for wg in residents:
                if wg.remaining <= _WORK_EPSILON:
                    if finished is None:
                        finished = [wg]
                    else:
                        finished.append(wg)
        self._last_sync = now
        if finished is None:
            # Rates changed between arming and firing; just re-arm.
            self._reschedule()
            return
        if len(finished) == len(residents):
            self._residents = []
        else:
            self._residents = [wg for wg in residents
                               if wg.remaining > _WORK_EPSILON]
        if self._slots:
            self._slots.clear()
        for wg in finished:
            self._bw_demand -= wg.bw_demand
            self.used_threads -= wg.threads
            self.used_wavefronts -= wg.wavefronts
            self.used_vgpr -= wg.vgpr_bytes
            self.used_lds -= wg.lds_bytes
        if self._occ is not None:
            self._recompute_min_conc()
            self._occ_write()
        self._reschedule()
        if self.validator is not None:
            self.validator.on_cu_update(self)
        for wg in finished:
            self._on_wg_complete(wg.kernel, now)
