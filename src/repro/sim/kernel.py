"""Kernel descriptors and kernel launch instances.

A :class:`KernelDescriptor` is the static shape of a kernel *type* — what
the CP reads out of a queue packet (thread dimensions, register and LDS
usage) plus the per-WG service demand the timing model consumes.  A
:class:`KernelInstance` is one launch of a descriptor inside a job's stream
and carries the dynamic state (WGs issued/completed, timestamps).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..errors import ConfigError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..config import GPUConfig
    from .job import Job


@dataclass(frozen=True)
class KernelDescriptor:
    """Static description of a kernel type.

    ``wg_work`` is the dedicated-lane service demand of one workgroup in
    ticks: a WG running alone on a SIMD unit finishes in exactly
    ``wg_work`` ticks.  Under contention the processor-sharing CU model
    stretches this.
    """

    #: Kernel type name; the profiling-table key ("TensorKernel1", ...).
    name: str
    #: Number of workgroups in one launch.
    num_wgs: int
    #: Threads per workgroup.
    threads_per_wg: int
    #: Per-WG service demand in ticks (dedicated SIMD lane time).
    wg_work: int
    #: Vector-register footprint of one WG, bytes.
    vgpr_bytes_per_wg: int = 4096
    #: LDS footprint of one WG, bytes.
    lds_bytes_per_wg: int = 1024
    #: Total context size of the launch, bytes (Table 1; preemption cost).
    context_bytes: int = 64 * 1024
    #: Workgroups of this kernel one CU can run at full rate.  Compute-bound
    #: kernels are limited by the SIMD units (4); latency-bound kernels hide
    #: memory latency and keep scaling with occupancy (up to the wavefront
    #: slot limit of 10).
    cu_concurrency: int = 4
    #: Memory traffic of one WG, bytes; only consulted when the device's
    #: optional bandwidth cap (GPUConfig.memory_bw_bytes_per_ns) is on.
    bytes_per_wg: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("kernel name must be non-empty")
        if self.num_wgs <= 0:
            raise ConfigError(f"{self.name}: num_wgs must be positive")
        if self.threads_per_wg <= 0:
            raise ConfigError(f"{self.name}: threads_per_wg must be positive")
        if self.wg_work <= 0:
            raise ConfigError(f"{self.name}: wg_work must be positive")
        if self.vgpr_bytes_per_wg < 0 or self.lds_bytes_per_wg < 0:
            raise ConfigError(f"{self.name}: resource footprints must be >= 0")
        if self.context_bytes < 0:
            raise ConfigError(f"{self.name}: context_bytes must be >= 0")
        if self.cu_concurrency <= 0:
            raise ConfigError(f"{self.name}: cu_concurrency must be positive")
        if self.bytes_per_wg < 0:
            raise ConfigError(f"{self.name}: bytes_per_wg must be >= 0")
        # Precomputed wave64 occupancy (hot path: per-WG placement checks).
        object.__setattr__(self, "wavefronts64",
                           math.ceil(self.threads_per_wg / 64))
        # Full-rate bandwidth demand of one WG, bytes per tick.
        object.__setattr__(self, "bw_demand",
                           self.bytes_per_wg / self.wg_work)

    @property
    def total_threads(self) -> int:
        """Total threads in one launch."""
        return self.num_wgs * self.threads_per_wg

    def wavefronts_per_wg(self, wavefront_size: int = 64) -> int:
        """Wavefronts one WG occupies (ceil of threads / wave size)."""
        if wavefront_size == 64:
            return self.wavefronts64
        return math.ceil(self.threads_per_wg / wavefront_size)

    def isolated_time(self, gpu: "GPUConfig") -> int:
        """Wall time of one launch running alone on ``gpu``.

        The dispatcher spreads N WGs evenly (least-loaded CU first), so
        each CU holds ``ceil(N / num_cus)`` and every WG progresses at
        ``min(1, cu_concurrency / per_cu)`` under processor sharing:
        ``wall = wg_work * max(1, per_cu / cu_concurrency)``.  This is the
        calibration identity used to derive ``wg_work`` from Table 1
        isolated times.
        """
        per_cu = math.ceil(self.num_wgs / gpu.num_cus)
        slowdown = max(1.0, per_cu / self.cu_concurrency)
        return round(self.wg_work * slowdown)

    @property
    def total_work(self) -> int:
        """Aggregate lane-time demand of one launch, ticks."""
        return self.num_wgs * self.wg_work

    def context_bytes_per_wg(self) -> float:
        """Context footprint attributed to a single WG."""
        return self.context_bytes / self.num_wgs


class KernelPhase(enum.Enum):
    """Lifecycle of a kernel launch inside its stream."""

    #: Sitting in the stream behind unfinished predecessors (or on the host).
    QUEUED = "queued"
    #: Handed to the WG dispatcher; WGs may be issued.
    ACTIVE = "active"
    #: All WGs completed.
    DONE = "done"


class KernelInstance:
    """One launch of a kernel descriptor within a job."""

    __slots__ = (
        "descriptor", "job", "index", "phase", "wgs_issued", "wgs_completed",
        "activate_time", "first_issue_time", "finish_time", "wgs_preempted",
    )

    def __init__(self, descriptor: KernelDescriptor, job: "Job",
                 index: int) -> None:
        self.descriptor = descriptor
        self.job = job
        self.index = index
        self.phase = KernelPhase.QUEUED
        #: WGs handed to a CU and not preempted since.
        self.wgs_issued = 0
        #: WGs that ran to completion.
        self.wgs_completed = 0
        #: WGs evicted before finishing (PREMA); they re-issue from scratch.
        self.wgs_preempted = 0
        self.activate_time: Optional[int] = None
        self.first_issue_time: Optional[int] = None
        self.finish_time: Optional[int] = None

    @property
    def name(self) -> str:
        """Kernel type name (profiling key)."""
        return self.descriptor.name

    @property
    def num_wgs(self) -> int:
        """Workgroups in this launch."""
        return self.descriptor.num_wgs

    @property
    def wgs_pending(self) -> int:
        """WGs not yet issued to a CU."""
        return self.descriptor.num_wgs - self.wgs_issued

    @property
    def wgs_remaining(self) -> int:
        """WGs not yet completed (issued-but-running WGs still count)."""
        return self.descriptor.num_wgs - self.wgs_completed

    @property
    def is_done(self) -> bool:
        """Whether every WG has completed."""
        return self.wgs_completed >= self.descriptor.num_wgs

    def mark_active(self, now: int) -> None:
        """Transition QUEUED -> ACTIVE when the CP dispatches the launch."""
        if self.phase is not KernelPhase.QUEUED:
            raise SimulationError(
                f"kernel {self.name}#{self.index} activated twice")
        self.phase = KernelPhase.ACTIVE
        self.activate_time = now

    def note_wg_issued(self, now: int) -> None:
        """Account one WG handed to a CU."""
        if self.phase is not KernelPhase.ACTIVE:
            raise SimulationError(
                f"kernel {self.name}#{self.index} issued while {self.phase}")
        if self.wgs_pending <= 0:
            raise SimulationError(
                f"kernel {self.name}#{self.index} over-issued")
        if self.first_issue_time is None:
            self.first_issue_time = now
        self.wgs_issued += 1

    def note_wg_preempted(self) -> None:
        """Account one WG evicted from a CU before completion."""
        if self.wgs_issued <= self.wgs_completed:
            raise SimulationError(
                f"kernel {self.name}#{self.index} preempt without running WG")
        self.wgs_issued -= 1
        self.wgs_preempted += 1

    def note_wg_completed(self, now: int) -> bool:
        """Account one WG finishing; return True when the launch is done."""
        if self.wgs_completed >= self.wgs_issued:
            raise SimulationError(
                f"kernel {self.name}#{self.index} completed more WGs than issued")
        self.wgs_completed += 1
        # Remaining-work inputs changed: invalidate cached laxity estimates.
        self.job.rank_version += 1
        if self.is_done:
            self.phase = KernelPhase.DONE
            self.finish_time = now
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<KernelInstance {self.name}#{self.index} job={self.job.job_id} "
                f"{self.wgs_completed}/{self.num_wgs} {self.phase.value}>")
