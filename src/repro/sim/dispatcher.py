"""Workgroup dispatcher (the GPU's WG scheduler).

The dispatcher owns the set of *active* kernels — launches the CP has
handed over — and fills free CU slots with their workgroups.  On every
state change (kernel activated, WG completed, preemption hold released) it
runs a *pump*: it asks the scheduling policy to rank the active kernels,
then walks the ranking issuing pending WGs to the least-loaded CU that can
accept them, until nothing more fits.

Pumps triggered inside one event timestamp are coalesced into a single
delay-0 event so bursts of WG completions cost one ranking pass.

The pump issues in **batches**: instead of one ``start_wg`` (full
O(residents) sync + timer cancel/re-push) and one all-CU rescan per WG,
it solves each kernel's placement against integer capacity counters
(:meth:`ComputeUnit.batch_capacity`), admits every WG bound for a CU in
one :meth:`ComputeUnit.issue_wgs` call, and re-arms each touched CU's
timer exactly once via :meth:`ComputeUnit.flush_issue` — in the order
the per-WG loop's surviving timer pushes would have happened, so the
event heap's FIFO tie-breaking (and therefore every simulated result) is
identical to the seed per-WG path.  ``docs/performance.md`` has the
argument in full; ``WGDispatcher.batched = False`` restores the seed
loop for benchmarking and differential testing.
"""

from __future__ import annotations

import heapq
import math
from bisect import insort
from typing import Callable, List, Optional, Sequence, TYPE_CHECKING

from ..config import GPUConfig
from ..errors import SimulationError
from .compute_unit import ComputeUnit
from .cu_arrays import CUOccupancyArrays
from .engine import Simulator
from .energy import EnergyMeter
from .kernel import KernelInstance

try:  # pragma: no cover - exercised implicitly on numpy-less hosts
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Masked-load sentinel for the vectorized least-loaded argmin (beyond
#: any real resident count) and the "no kernel seen yet" thread floor.
_HUGE = 2 ** 62

#: Active-kernel count below which the scalar pump beats the array one
#: (numpy/heap setup per pump dominates tiny active sets) — the dispatch
#: analogue of ``compute_unit._VEC_MIN_RESIDENTS``.  Streaming cells
#: that retire jobs hold ~50 active kernels and stay on the PR-4 scalar
#: fast path; backlogged fleet cells cross over at once.  Both pumps are
#: bit-identical, so the gate is purely a cost model.
_VEC_MIN_ACTIVE = 64

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..schedulers.base import SchedulerPolicy


class WGDispatcher:
    """Fills CU slots from active kernels in policy order."""

    #: Class-level engine-mode switch (see :mod:`repro.sim.modes`).
    #: ``False`` restores the seed per-WG issue loop.
    batched = True

    #: Event-core switch (see :mod:`repro.sim.modes`): ``True`` lets the
    #: pump consult the standing pending set — an insertion-ordered dict
    #: of active kernels with unissued WGs, maintained at the handful of
    #: sites that change issue counts — instead of re-scanning the whole
    #: active list on every pump.  The set's iteration order equals the
    #: active-list filter's output order (appends mirror ``add_kernel``;
    #: preemption, the only path that re-pends a consumed kernel, rebuilds
    #: the set from the active list), so both sources hand ``issue_order``
    #: the same sequence and the pumps are decision-for-decision
    #: identical.  ``False`` restores the seed per-pump scan.
    counted = True

    #: Engine-mode switch (see :mod:`repro.sim.modes`): ``True`` solves
    #: pump capacity against the dispatcher-owned per-CU occupancy arrays
    #: (``repro.sim.cu_arrays``) — one broadcast min-reduce per resource
    #: shape, a vectorized least-loaded placement and an O(1) saturation
    #: fast-out — instead of per-CU Python scans.  Decision-for-decision
    #: identical to the scalar batched pump (``docs/performance.md``).
    vectorized = True

    def __init__(self, sim: Simulator, gpu_config: GPUConfig,
                 energy: EnergyMeter) -> None:
        self._sim = sim
        self._config = gpu_config
        self.cus: List[ComputeUnit] = [
            ComputeUnit(cu_id, sim, gpu_config, energy,
                        self._completion_sink(cu_id))
            for cu_id in range(gpu_config.num_cus)
        ]
        for cu in self.cus:
            cu.on_capacity_freed = self.request_pump
        self._active: List[KernelInstance] = []
        #: Standing pending set: active kernels with WGs left to issue,
        #: in active-list order (see the ``counted`` flag).  Dict-as-set
        #: for O(1) membership plus insertion order.
        self._pending_set: dict = {}
        self._policy: Optional["SchedulerPolicy"] = None
        self._pump_pending = False
        #: Callback into the CP: a WG of ``kernel`` completed at ``now``.
        self.on_wg_complete: Optional[Callable[[KernelInstance, int], None]] = None
        #: Profiling table fed with issue/preempt events (set by GPUSystem;
        #: completions reach it through the CP).
        self.profiler = None
        #: Optional TraceRecorder mirroring WG/preemption events.
        self.trace = None
        #: Optional InvariantChecker auditing WG conservation after every
        #: pump / preemption / cancel (same off-path pattern as ``trace``).
        self.validator = None
        #: Total WGs issued to CUs (diagnostics; includes re-issues).
        self.wgs_issued = 0
        #: Total preemption evictions performed.
        self.wgs_preempted = 0
        self._wavefront_size = gpu_config.wavefront_size
        # Vectorized-mode state: the per-CU occupancy arrays (created
        # lazily by the first vectorized pump; never for seed/gated
        # systems) and a monotone lower bound on threads/WG over every
        # kernel ever activated, backing the O(1) saturation fast-out.
        self._occ: Optional[CUOccupancyArrays] = None
        self._min_threads_seen = _HUGE
        self._base_order = False
        self._issue_key = None
        #: Standing issue order for the bucketed vectorized pump: resource
        #: shape -> [head_index, sorted [(issue_key, kernel), ...]].
        #: ``None`` means "rebuild from the active set".  Valid only while
        #: every cached key matches its job's current priority and no
        #: consumed head can become pending again — hence the eager
        #: :meth:`invalidate_order` calls from priority-writing ticks,
        #: cancellation and preemption.
        self._order_buckets: Optional[dict] = None
        #: Bucketed-pump accounting (diagnostics; cheap integer adds).
        #: ``order_rebuilds`` full sorts of the active set,
        #: ``order_invalidations`` cache drops while a cache existed,
        #: ``bucketed_pumps`` merge pumps run, ``bucket_pops`` heap pops
        #: across them, ``bucket_parks`` whole-bucket capacity parks.
        self.order_rebuilds = 0
        self.order_invalidations = 0
        self.bucketed_pumps = 0
        self.bucket_pops = 0
        self.bucket_parks = 0

    def attach_policy(self, policy: "SchedulerPolicy") -> None:
        """Set the ranking policy; must happen before any activation."""
        self._policy = policy
        # The vectorized pump may rank lazily (heap-select instead of a
        # full sort) only when the policy uses the base issue_order —
        # a pure sort on default_issue_key, whose (job_id, kernel.index)
        # suffix makes every key unique, so heap pop order equals sorted
        # order exactly.  Overriding policies (RR, MLFQ, PREMA) keep
        # their own ranking verbatim.
        from ..schedulers.base import SchedulerPolicy, default_issue_key
        self._base_order = (type(policy).issue_order
                            is SchedulerPolicy.issue_order)
        self._issue_key = default_issue_key

    # ------------------------------------------------------------------
    # Kernel set
    # ------------------------------------------------------------------

    @property
    def active_kernels(self) -> Sequence[KernelInstance]:
        """Kernels currently eligible for WG issue."""
        return tuple(self._active)

    def add_kernel(self, kernel: KernelInstance) -> None:
        """Activate a kernel launch (CP handed it over)."""
        if kernel in self._active:
            raise SimulationError(f"kernel {kernel!r} activated twice")
        kernel.mark_active(self._sim.now)
        # Maintained regardless of the mode flag (one compare on a cold
        # path) so a mid-run flip cannot leave the bound too high, which
        # would make the vectorized saturation fast-out skip real work.
        threads = kernel.descriptor.threads_per_wg
        if threads < self._min_threads_seen:
            self._min_threads_seen = threads
        self._active.append(kernel)
        if kernel.descriptor.num_wgs > kernel.wgs_issued:
            self._pending_set[kernel] = None
        buckets = self._order_buckets
        if buckets is not None:
            self._bucket_insert(buckets, kernel)
        self.request_pump()

    def request_pump(self) -> None:
        """Schedule a pump at the current timestamp (coalesced).

        Scheduled as a fusable continuation: under the event-core wheel
        the pump runs inline after the triggering handler whenever no
        queued event precedes it — the common case for WG-completion
        bursts — saving a queue round-trip per pump.  Outside the wheel
        run loop this is exactly ``schedule(0, ...)``; either way the
        committed event sequence is identical.
        """
        if not self._pump_pending:
            self._pump_pending = True
            self._sim.schedule_fusable(0, self._pump)

    # ------------------------------------------------------------------
    # Preemption (PREMA)
    # ------------------------------------------------------------------

    def preempt_kernel(self, kernel: KernelInstance, hold_time: int) -> int:
        """Evict every resident WG of ``kernel`` across all CUs.

        Evicted WGs return to the kernel's pending pool and re-execute from
        scratch; their CU resources stay held for ``hold_time`` ticks to
        model context-save traffic.  Returns the eviction count.
        """
        evicted = 0
        for cu in self.cus:
            evicted += cu.preempt_kernel(kernel, hold_time)
        self.wgs_preempted += evicted
        if evicted:
            # Eviction refills the kernel's pending pool, so a bucket head
            # consumed as "fully issued" may be pending again.
            self.invalidate_order()
            # Rebuild (rather than append to) the pending set: a kernel
            # re-pended out of order must re-enter at its active-list
            # position for the set to keep mirroring the per-pump scan.
            self._pending_set = {
                k: None for k in self._active
                if k.descriptor.num_wgs > k.wgs_issued}
            if self.profiler is not None:
                self.profiler.on_wgs_preempted(kernel.name, evicted,
                                               self._sim.now)
            if self.trace is not None:
                self.trace.emit(self._sim.now, "preemption",
                                job_id=kernel.job.job_id,
                                kernel=kernel.name, detail=evicted)
            self.request_pump()
        if self.validator is not None:
            self.validator.on_dispatch(self)
        return evicted

    def resident_wgs(self, kernel: KernelInstance) -> int:
        """Resident WG count of ``kernel`` across the device."""
        return sum(cu.residents_of(kernel) for cu in self.cus)

    def cancel_kernel(self, kernel: KernelInstance) -> None:
        """Drop an active kernel entirely (its job was late-rejected).

        Resident WGs are evicted with no context save (the results are
        discarded, not resumed) and the kernel leaves the active set.
        """
        for cu in self.cus:
            evicted = cu.preempt_kernel(kernel, hold_time=0)
            if evicted:
                if self.profiler is not None:
                    self.profiler.on_wgs_preempted(kernel.name, evicted,
                                                   self._sim.now)
                if self.trace is not None:
                    self.trace.emit(self._sim.now, "preemption",
                                    job_id=kernel.job.job_id,
                                    kernel=kernel.name, detail=evicted)
        if kernel in self._active:
            self._active.remove(kernel)
        self._pending_set.pop(kernel, None)
        # The kernel leaves the active set while still pending; drop the
        # cached order rather than search it.
        self.invalidate_order()
        self.request_pump()
        if self.validator is not None:
            self.validator.on_dispatch(self)

    def invalidate_order(self) -> None:
        """Drop the cached bucketed issue order.

        Must be called by any code that rewrites ``job.priority`` while
        the job's kernels are active — the scheduler ticks (LAX, SRF) and
        the host's priority-register writes do; admission-time initial
        priorities precede kernel activation and need not.  Cancellation
        and preemption invalidate internally.  A no-op outside
        ``vectorized_mode`` (the cache is never built).
        """
        if self._order_buckets is not None:
            self.order_invalidations += 1
            self._order_buckets = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _completion_sink(self, cu_id: int) -> Callable[[KernelInstance, int], None]:
        """Per-CU completion callback so traces can attribute the CU."""
        def sink(kernel: KernelInstance, now: int) -> None:
            self._wg_completed(kernel, now, cu_id)
        return sink

    def _wg_completed(self, kernel: KernelInstance, now: int,
                      cu_id: Optional[int] = None) -> None:
        if self.on_wg_complete is None:
            raise SimulationError("dispatcher has no completion sink")
        # wg_events checked here so disabled WG tracing costs nothing on
        # this per-workgroup path.
        if self.trace is not None and self.trace.wg_events:
            self.trace.emit(now, "wg_complete", job_id=kernel.job.job_id,
                            kernel=kernel.name, cu=cu_id)
        finished = kernel.note_wg_completed(now)
        if finished:
            self._active.remove(kernel)
        self.on_wg_complete(kernel, now)
        self.request_pump()

    def _pick_cu(self, kernel: KernelInstance) -> Optional[ComputeUnit]:
        """Least-loaded CU that can accept one WG of ``kernel``.

        Jobs parked at infinite priority (latency-insensitive work, or
        jobs a deadline-aware policy wrote off) are backfill: their WGs
        only go into slots where every resident keeps running at full
        rate, so they soak up spare capacity without ever slowing
        deadline work — resident WGs cannot be preempted by priority
        alone, so the protection must happen at issue time.
        """
        backfill_only = (math.isinf(kernel.job.priority)
                         or not self._config.greedy_occupancy)
        best: Optional[ComputeUnit] = None
        best_load = -1
        desc = kernel.descriptor
        if WGDispatcher.counted:
            # Flattened fit test: ``can_accept``'s four free-resource
            # compares inlined, with the wavefront rounding hoisted out
            # of the CU loop (every CU shares the config's wavefront
            # size).  Same predicates, same iteration order, same
            # least-loaded/first-on-tie argmin as the seed loop below.
            threads = desc.threads_per_wg
            vgpr = desc.vgpr_bytes_per_wg
            lds = desc.lds_bytes_per_wg
            concurrency = desc.cu_concurrency
            wavefronts = None
            for cu in self.cus:
                if wavefronts is None:
                    wavefronts = desc.wavefronts_per_wg(cu._wavefront_size)
                if (threads > (cu._threads_limit - cu.used_threads
                               - cu._held_threads)
                        or wavefronts > (cu._wavefronts_limit
                                         - cu.used_wavefronts
                                         - cu._held_wavefronts)
                        or vgpr > (cu._vgpr_limit - cu.used_vgpr
                                   - cu._held_vgpr)
                        or lds > (cu._lds_limit - cu.used_lds
                                  - cu._held_lds)):
                    continue
                if backfill_only and cu.free_full_rate_slots(
                        concurrency) <= 0:
                    continue
                load = len(cu._residents)
                if best is None or load < best_load:
                    best = cu
                    best_load = load
            return best
        for cu in self.cus:
            if not cu.can_accept(desc):
                continue
            if backfill_only and cu.free_full_rate_slots(
                    desc.cu_concurrency) <= 0:
                continue
            load = cu.num_residents
            if best is None or load < best_load:
                best = cu
                best_load = load
        return best

    def _pump(self) -> None:
        self._pump_pending = False
        self._pump_once()
        if self.validator is not None:
            self.validator.on_dispatch(self)

    def _pump_once(self) -> None:
        counted = self.counted
        if counted and not self._pending_set:
            # Nothing has WGs left to issue: the pump is a no-op on every
            # flavour, so skip even the mode probes.  (No cache to drop —
            # an idle pump never consumes standing-order heads.)
            return
        vectorized = (self.vectorized and _np is not None
                      and len(self._active) >= _VEC_MIN_ACTIVE)
        if not vectorized and self._order_buckets is not None:
            # Crossing below the gate: the scalar pump issues WGs without
            # maintaining the standing order, so drop it rather than let
            # a stale cache greet the next crossing back up.
            self.invalidate_order()
        if vectorized and self._active:
            # The O(1) array check runs *before* the O(active) pending
            # scan: a saturated device skips both it and the ranking
            # pass.  The reorder is outcome-neutral — either early-out
            # leaves every piece of state untouched.
            if not self._any_capacity_vec():
                return
            if self.batched and self._base_order:
                # Base-issue_order policies take the bucketed merge: the
                # standing shape-bucketed order replaces both the pending
                # scan and the per-pump ranking pass.
                self._pump_bucketed_vec()
                return
        # wgs_pending > 0: the standing pending set when counted, else
        # the seed per-pump scan with the property inlined.  Same
        # kernels, same order (see the ``counted`` flag).
        if counted:
            pending = list(self._pending_set)
        else:
            pending = [k for k in self._active
                       if k.descriptor.num_wgs > k.wgs_issued]
        if not pending:
            return
        if not vectorized and not self._any_capacity(pending):
            return
        if self._policy is None:
            raise SimulationError("dispatcher has no policy attached")
        if self.batched:
            if vectorized:
                self._pump_batched_vec(pending)
            elif (counted and len(pending) == 1
                    and not self._policy.filtering_issue):
                self._pump_single(pending[0])
            else:
                self._pump_batched(pending)
        else:
            self._pump_per_wg(pending)

    def _pump_single(self, kernel: KernelInstance) -> None:
        """Counted fast path: the entire pending set is one kernel.

        Ranking one kernel is the identity for every non-filtering
        policy, so :meth:`_pump_batched`'s sort, shape memo, blocked-set
        and served-list machinery all collapse; what remains is the same
        capacity solve (``batch_capacity`` per CU), the same
        least-loaded/first-on-tie argmin, and the same issue / flush /
        hook call sequence — streaming cells at ~1 pending kernel per
        completion spend most pumps here.  Decision-for-decision
        identical to handing ``[kernel]`` to the general loop.
        """
        desc = kernel.descriptor
        backfill_only = (math.isinf(kernel.job.priority)
                         or not self._config.greedy_occupancy)
        cus = self.cus
        num_cus = len(cus)
        now = self._sim.now
        profiler = self.profiler
        wg_trace = (self.trace
                    if self.trace is not None and self.trace.wg_events
                    else None)
        want = kernel.wgs_pending
        if want == 1:
            # One WG: ``batch_capacity > 0`` reduces to ``can_accept``
            # plus the backfill gate, which is exactly the seed
            # least-loaded pick — no division-heavy capacity vector.
            cu = self._pick_cu(kernel)
            if cu is None:
                return
            cu.issue_wgs(kernel, 1)
            self.wgs_issued += 1
            if profiler is not None:
                profiler.on_wgs_issued(kernel.name, 1, now)
            if wg_trace is not None:
                wg_trace.emit(now, "wg_issue", job_id=kernel.job.job_id,
                              kernel=kernel.name, cu=cu.cu_id)
            kernel.job.mark_running(now)
            cu.flush_issue()
            self._note_served([kernel])
            return
        caps = [cu.batch_capacity(desc, backfill_only) for cu in cus]
        loads = [cu.num_residents for cu in cus]
        assigned = [0] * num_cus
        first_pick = [-1] * num_cus
        last_pick = [-1] * num_cus
        pick_order = [] if wg_trace is not None else None
        issued = 0
        while issued < want:
            best = -1
            best_load = -1
            for index in range(num_cus):
                if caps[index] > 0:
                    load = loads[index]
                    if best < 0 or load < best_load:
                        best = index
                        best_load = load
            if best < 0:
                break
            caps[best] -= 1
            loads[best] += 1
            assigned[best] += 1
            if first_pick[best] < 0:
                first_pick[best] = issued
            last_pick[best] = issued
            if pick_order is not None:
                pick_order.append(best)
            issued += 1
        if issued == 0:
            return
        chosen = [index for index in range(num_cus) if assigned[index]]
        chosen.sort(key=first_pick.__getitem__)
        for index in chosen:
            cus[index].issue_wgs(kernel, assigned[index])
        self.wgs_issued += issued
        if profiler is not None:
            profiler.on_wgs_issued(kernel.name, issued, now)
        if wg_trace is not None:
            job_id = kernel.job.job_id
            name = kernel.name
            for index in pick_order:
                wg_trace.emit(now, "wg_issue", job_id=job_id,
                              kernel=name, cu=cus[index].cu_id)
        kernel.job.mark_running(now)
        chosen.sort(key=last_pick.__getitem__)
        for index in chosen:
            cus[index].flush_issue()
        self._note_served([kernel])

    def _pump_batched(self, pending: Sequence[KernelInstance]) -> None:
        """Batched issue: solve placement on counters, admit per CU.

        Decision-for-decision equivalent to :meth:`_pump_per_wg`: the
        inner loop replays the least-loaded/first-on-tie pick over
        integer capacity and load counters (``batch_capacity`` counts
        exactly the successive ``can_accept`` rounds that would pass),
        then commits each CU's WGs in one ``issue_wgs`` call.  Per-CU
        progress syncs happen in first-pick order and timer re-arms in
        last-pick order — the orders the per-WG loop produces — so float
        accumulation and event-heap FIFO ties are preserved exactly.
        Capacity vectors are memoized per descriptor resource shape
        between admissions (see the ``shape_caps`` comment below), which
        collapses the per-kernel ``batch_capacity`` rescans of fleets
        with many kernel types over few distinct shapes.
        """
        served: List[KernelInstance] = []
        now = self._sim.now
        cus = self.cus
        num_cus = len(cus)
        greedy = self._config.greedy_occupancy
        profiler = self.profiler
        wg_trace = (self.trace
                    if self.trace is not None and self.trace.wg_events
                    else None)
        # ``batch_capacity`` is a pure function of a descriptor's
        # *resource shape* — threads/WG, VGPR/WG, LDS/WG, and (when
        # backfilling) the concurrency class — against the CU's free
        # counters, so distinct kernel types sharing a shape share
        # capacity vectors.  ``shape_caps`` memoizes one vector per shape
        # between admissions: an admission shrinks budgets shared by
        # every shape, so it drops all *other* cached vectors, while the
        # admitting shape's own vector stays exact by decrement (each
        # same-shape WG admitted lowers every binding per-resource bound
        # by exactly one — the same algebra the inner placement loop
        # already relies on).  Resources only shrink within one pump, so
        # a shape whose vector bottoms out can be parked in
        # ``blocked_shapes`` for the rest of the round.
        shape_caps: dict = {}
        blocked_shapes = set()
        # CUs with admitted-but-unflushed WGs, ordered by most recent
        # admission (the per-WG loop's surviving timer-push order).
        touched: List[ComputeUnit] = []
        # Resident counts, carried across kernels: nothing but this
        # pump's own admissions changes residency mid-pump.
        loads = [cu.num_residents for cu in cus]
        for kernel in self._policy.issue_order(pending):
            desc = kernel.descriptor
            backfill_only = (math.isinf(kernel.job.priority) or not greedy)
            shape = (desc.threads_per_wg, desc.vgpr_bytes_per_wg,
                     desc.lds_bytes_per_wg, desc.cu_concurrency,
                     backfill_only)
            if shape in blocked_shapes:
                continue
            caps = shape_caps.get(shape)
            if caps is None:
                caps = [cu.batch_capacity(desc, backfill_only) for cu in cus]
                shape_caps[shape] = caps
            want = kernel.wgs_pending
            if want == 1:
                # Single-WG fast path: one least-loaded scan over the
                # capacity vector (``batch_capacity > 0`` iff
                # ``can_accept`` passes its backfill gate), no placement
                # arrays.
                best = -1
                best_load = -1
                for index in range(num_cus):
                    if caps[index] > 0:
                        load = loads[index]
                        if best < 0 or load < best_load:
                            best = index
                            best_load = load
                if best < 0:
                    blocked_shapes.add(shape)
                    continue
                cu = cus[best]
                caps[best] -= 1
                loads[best] += 1
                cu.issue_wgs(kernel, 1)
                if len(shape_caps) > 1:
                    shape_caps = {shape: caps}
                try:
                    touched.remove(cu)
                except ValueError:
                    pass
                touched.append(cu)
                self.wgs_issued += 1
                if profiler is not None:
                    profiler.on_wgs_issued(kernel.name, 1, now)
                if wg_trace is not None:
                    wg_trace.emit(now, "wg_issue", job_id=kernel.job.job_id,
                                  kernel=kernel.name, cu=cu.cu_id)
                kernel.job.mark_running(now)
                served.append(kernel)
                continue
            assigned = [0] * num_cus
            first_pick = [-1] * num_cus
            last_pick = [-1] * num_cus
            pick_order = [] if wg_trace is not None else None
            issued = 0
            while issued < want:
                best = -1
                best_load = -1
                for index in range(num_cus):
                    if caps[index] > 0:
                        load = loads[index]
                        if best < 0 or load < best_load:
                            best = index
                            best_load = load
                if best < 0:
                    break
                caps[best] -= 1
                loads[best] += 1
                assigned[best] += 1
                if first_pick[best] < 0:
                    first_pick[best] = issued
                last_pick[best] = issued
                if pick_order is not None:
                    pick_order.append(best)
                issued += 1
            if issued < want:
                blocked_shapes.add(shape)
            if issued == 0:
                continue
            if len(shape_caps) > 1:
                shape_caps = {shape: caps}
            chosen = [index for index in range(num_cus) if assigned[index]]
            chosen.sort(key=first_pick.__getitem__)
            for index in chosen:
                cus[index].issue_wgs(kernel, assigned[index])
            chosen.sort(key=last_pick.__getitem__)
            for index in chosen:
                cu = cus[index]
                try:
                    touched.remove(cu)
                except ValueError:
                    pass
                touched.append(cu)
            self.wgs_issued += issued
            if profiler is not None:
                profiler.on_wgs_issued(kernel.name, issued, now)
            if wg_trace is not None:
                job_id = kernel.job.job_id
                name = kernel.name
                for index in pick_order:
                    wg_trace.emit(now, "wg_issue", job_id=job_id,
                                  kernel=name, cu=cus[index].cu_id)
            kernel.job.mark_running(now)
            served.append(kernel)
        for cu in touched:
            cu.flush_issue()
        if served:
            self._note_served(served)

    def _kernel_shape(self, kernel: KernelInstance) -> tuple:
        """The kernel's placement resource shape (see ``_pump_batched``)."""
        desc = kernel.descriptor
        backfill_only = (math.isinf(kernel.job.priority)
                         or not self._config.greedy_occupancy)
        return (desc.threads_per_wg, desc.vgpr_bytes_per_wg,
                desc.lds_bytes_per_wg, desc.cu_concurrency, backfill_only)

    def _build_order_buckets(self) -> dict:
        """Rebuild the standing issue order from the active set."""
        issue_key = self._issue_key
        shape_of = self._kernel_shape
        buckets: dict = {}
        for kernel in self._active:
            shape = shape_of(kernel)
            entry = buckets.get(shape)
            if entry is None:
                entry = buckets[shape] = [0, []]
            entry[1].append((issue_key(kernel), kernel))
        for entry in buckets.values():
            entry[1].sort()
        self._order_buckets = buckets
        self.order_rebuilds += 1
        return buckets

    def _bucket_insert(self, buckets: dict, kernel: KernelInstance) -> None:
        """Insort a newly activated kernel into the standing order."""
        shape = self._kernel_shape(kernel)
        item = (self._issue_key(kernel), kernel)
        entry = buckets.get(shape)
        if entry is None:
            buckets[shape] = [0, [item]]
            return
        index, entries = entry
        if index:
            # Drop the consumed prefix first so the insertion point can
            # never land among already-popped heads.
            del entries[:index]
            entry[0] = 0
        insort(entries, item)

    def _pump_bucketed_vec(self) -> None:
        """Bucketed-merge batched issue (``vectorized_mode``, base order).

        Decision-for-decision equivalent to :meth:`_pump_batched` when the
        policy ranks with the base ``issue_order`` (a pure sort on
        ``default_issue_key``, whose ``(job_id, kernel.index)`` suffix
        makes every key unique).  Instead of re-scanning and re-ranking
        the whole active set each pump, the sorted order is kept standing
        across pumps, bucketed by placement resource shape, and each pump
        runs a k-way merge over the bucket *heads*:

        * cached keys always equal fresh keys — every ``job.priority``
          rewrite that can touch an active kernel invalidates the cache
          (scheduler ticks via :meth:`invalidate_order`; cancellation and
          preemption internally), and the remaining key fields
          (``start_time``/arrival, ids) are frozen before activation;
        * a head is consumed permanently only when it stops being pending
          (fully issued or finished) — monotone within the cache's
          lifetime because the one event that refills a pending pool,
          preemption, invalidates — so skipped entries are exactly the
          kernels the scalar pending scan drops;
        * a head whose shape has no capacity parks its whole bucket for
          the rest of the pump — exactly the scalar loop's
          ``blocked_shapes`` skip, which drops every later same-shape
          kernel anyway (resources only shrink within a pump);
        * therefore the merge pops pending heads in global key order
          restricted to unparked shapes: any kernel ranked ahead of a
          popped head is either non-pending (its bucket advanced past it)
          or same-shape-parked — precisely the kernels the full sorted
          walk would skip — so the admission sequence is identical.

        Per-pump work collapses from O(active) to O(admissions + shapes).
        The placement inner loops are the scalar ones verbatim; all state
        is integer, so there is no float tolerance on this path.
        """
        buckets = self._order_buckets
        if buckets is None:
            buckets = self._build_order_buckets()
        heap = []
        for shape, entry in buckets.items():
            index, entries = entry
            if index < len(entries):
                heap.append((entries[index][0], shape))
        if not heap:
            return
        self.bucketed_pumps += 1
        heapq.heapify(heap)
        heappop = heapq.heappop
        heappush = heapq.heappush
        served: List[KernelInstance] = []
        now = self._sim.now
        cus = self.cus
        num_cus = len(cus)
        profiler = self.profiler
        wg_trace = (self.trace
                    if self.trace is not None and self.trace.wg_events
                    else None)
        occ = self._occ
        wavefront_size = self._wavefront_size
        # Same per-shape capacity memo (and reset-on-admission discipline)
        # as the scalar batched pump.
        shape_caps: dict = {}
        touched: List[ComputeUnit] = []
        loads = occ.loads.tolist()
        while heap:
            head = heappop(heap)
            self.bucket_pops += 1
            shape = head[1]
            entry = buckets[shape]
            index = entry[0]
            entries = entry[1]
            kernel = entries[index][1]
            desc = kernel.descriptor
            if kernel.wgs_issued >= desc.num_wgs:
                # Permanently non-pending: consume the head and surface
                # the bucket's next kernel.
                index += 1
                entry[0] = index
                if index < len(entries):
                    heappush(heap, (entries[index][0], shape))
                continue
            caps = shape_caps.get(shape)
            if caps is None:
                caps = occ.capacity(
                    shape[0], desc.wavefronts_per_wg(wavefront_size),
                    shape[1], shape[2], shape[3], shape[4]).tolist()
                shape_caps[shape] = caps
                if not any(caps):
                    # Shape blocked: park the bucket (no re-push) until
                    # the next pump.
                    self.bucket_parks += 1
                    continue
            want = kernel.wgs_pending
            if want == 1:
                best = -1
                best_load = -1
                for cu_index in range(num_cus):
                    if caps[cu_index] > 0:
                        load = loads[cu_index]
                        if best < 0 or load < best_load:
                            best = cu_index
                            best_load = load
                if best < 0:
                    continue
                cu = cus[best]
                caps[best] -= 1
                loads[best] += 1
                cu.issue_wgs(kernel, 1)
                if len(shape_caps) > 1:
                    shape_caps = {shape: caps}
                try:
                    touched.remove(cu)
                except ValueError:
                    pass
                touched.append(cu)
                self.wgs_issued += 1
                if profiler is not None:
                    profiler.on_wgs_issued(kernel.name, 1, now)
                if wg_trace is not None:
                    wg_trace.emit(now, "wg_issue", job_id=kernel.job.job_id,
                                  kernel=kernel.name, cu=cu.cu_id)
                kernel.job.mark_running(now)
                served.append(kernel)
                # The single pending WG is issued: consume the head.
                index += 1
                entry[0] = index
                if index < len(entries):
                    heappush(heap, (entries[index][0], shape))
                continue
            assigned = [0] * num_cus
            first_pick = [-1] * num_cus
            last_pick = [-1] * num_cus
            pick_order = [] if wg_trace is not None else None
            issued = 0
            while issued < want:
                best = -1
                best_load = -1
                for cu_index in range(num_cus):
                    if caps[cu_index] > 0:
                        load = loads[cu_index]
                        if best < 0 or load < best_load:
                            best = cu_index
                            best_load = load
                if best < 0:
                    break
                caps[best] -= 1
                loads[best] += 1
                assigned[best] += 1
                if first_pick[best] < 0:
                    first_pick[best] = issued
                last_pick[best] = issued
                if pick_order is not None:
                    pick_order.append(best)
                issued += 1
            if issued == 0:
                continue
            if len(shape_caps) > 1:
                shape_caps = {shape: caps}
            chosen = [cu_index for cu_index in range(num_cus)
                      if assigned[cu_index]]
            chosen.sort(key=first_pick.__getitem__)
            for cu_index in chosen:
                cus[cu_index].issue_wgs(kernel, assigned[cu_index])
            chosen.sort(key=last_pick.__getitem__)
            for cu_index in chosen:
                cu = cus[cu_index]
                try:
                    touched.remove(cu)
                except ValueError:
                    pass
                touched.append(cu)
            self.wgs_issued += issued
            if profiler is not None:
                profiler.on_wgs_issued(kernel.name, issued, now)
            if wg_trace is not None:
                job_id = kernel.job.job_id
                name = kernel.name
                for cu_index in pick_order:
                    wg_trace.emit(now, "wg_issue", job_id=job_id,
                                  kernel=name, cu=cus[cu_index].cu_id)
            kernel.job.mark_running(now)
            served.append(kernel)
            if issued == want:
                # Fully issued: consume the head.
                index += 1
                entry[0] = index
                if index < len(entries):
                    heappush(heap, (entries[index][0], shape))
            # else: partial issue — the shape is exhausted, the kernel
            # stays pending at its bucket's head (parked, no re-push).
        for cu in touched:
            cu.flush_issue()
        if served:
            self._note_served(served)

    def _pump_batched_vec(self, pending: Sequence[KernelInstance]) -> None:
        """Occupancy-array batched issue (``vectorized_mode``).

        Decision-for-decision equivalent to :meth:`_pump_batched` (which
        is itself equivalent to the seed per-WG loop), with three
        structural savings:

        * capacity vectors come from :meth:`CUOccupancyArrays.capacity` —
          the same integer floor-division algebra as
          ``ComputeUnit.batch_capacity``, evaluated for all CUs in one
          broadcast min-reduce (the write-through rows always equal the
          scalar counters);
        * a pre-filter memoizes feasibility per *descriptor* and drops
          kernels whose resource shape has zero device-wide capacity
          before the ranking pass — legal because resources only shrink
          within a pump, ``issue_order`` is pure in every policy
          (ranking a subset yields the subsequence), and a skipped
          kernel could only have been a no-op ``continue``; for the same
          reason the ranked loop stops outright once every feasible
          shape has blocked.

        Policies that override ``issue_order`` (RR, MLFQ, PREMA) take
        this path; the base-order policies take the standing bucketed
        merge (:meth:`_pump_bucketed_vec`) instead.

        The placement loops are the scalar ones verbatim (Python lists —
        integer work on 64 CUs beats numpy's per-op overhead); only
        integer state is involved, so there is no float tolerance
        anywhere on this path.
        """
        served: List[KernelInstance] = []
        now = self._sim.now
        cus = self.cus
        num_cus = len(cus)
        greedy = self._config.greedy_occupancy
        profiler = self.profiler
        wg_trace = (self.trace
                    if self.trace is not None and self.trace.wg_events
                    else None)
        occ = self._occ
        wavefront_size = self._wavefront_size
        infinity = math.inf
        # Pre-filter, memoized per (descriptor, backfill) so the common
        # case costs two dict probes per kernel.  Shapes are shared
        # across descriptors, so capacity vectors are still computed at
        # most once per distinct resource shape.
        ok_greedy: dict = {}
        ok_backfill: dict = {}
        shape_of_greedy: dict = {}
        shape_of_backfill: dict = {}
        shape_caps: dict = {}
        live_shapes = set()
        blocked_shapes = set()
        feasible: List[KernelInstance] = []
        append_feasible = feasible.append
        for kernel in pending:
            desc = kernel.descriptor
            if kernel.job.priority == infinity or not greedy:
                table = ok_backfill
                shapes = shape_of_backfill
                backfill_only = True
            else:
                table = ok_greedy
                shapes = shape_of_greedy
                backfill_only = False
            did = id(desc)
            ok = table.get(did)
            if ok is None:
                shape = (desc.threads_per_wg, desc.vgpr_bytes_per_wg,
                         desc.lds_bytes_per_wg, desc.cu_concurrency,
                         backfill_only)
                shapes[did] = shape
                if shape not in shape_caps:
                    caps = occ.capacity(
                        desc.threads_per_wg,
                        desc.wavefronts_per_wg(wavefront_size),
                        desc.vgpr_bytes_per_wg, desc.lds_bytes_per_wg,
                        desc.cu_concurrency, backfill_only).tolist()
                    shape_caps[shape] = caps
                    if any(caps):
                        live_shapes.add(shape)
                    else:
                        blocked_shapes.add(shape)
                ok = table[did] = shape in live_shapes
            if ok:
                append_feasible(kernel)
        if not feasible:
            return
        order = self._policy.issue_order(feasible)
        # Resident counts, carried across kernels (pump-local list; the
        # write-through keeps occ.loads equal after every issue_wgs).
        loads = occ.loads.tolist()
        touched: List[ComputeUnit] = []
        for kernel in order:
            if not live_shapes:
                # Every shape that survived the pre-filter has since
                # blocked; the remaining ranked kernels are all no-op
                # continues.
                break
            desc = kernel.descriptor
            if kernel.job.priority == infinity or not greedy:
                shape = shape_of_backfill[id(desc)]
            else:
                shape = shape_of_greedy[id(desc)]
            if shape in blocked_shapes:
                continue
            caps = shape_caps.get(shape)
            if caps is None:
                # Vector dropped by a reset below; occ reflects every
                # admission so far, exactly like a fresh batch_capacity
                # scan mid-pump.
                caps = occ.capacity(
                    shape[0], desc.wavefronts_per_wg(wavefront_size),
                    shape[1], shape[2], shape[3], shape[4]).tolist()
                shape_caps[shape] = caps
                if not any(caps):
                    blocked_shapes.add(shape)
                    live_shapes.discard(shape)
                    continue
            want = kernel.wgs_pending
            if want == 1:
                # Single-WG fast path: one least-loaded scan over the
                # capacity vector.
                best = -1
                best_load = -1
                for index in range(num_cus):
                    if caps[index] > 0:
                        load = loads[index]
                        if best < 0 or load < best_load:
                            best = index
                            best_load = load
                if best < 0:
                    blocked_shapes.add(shape)
                    live_shapes.discard(shape)
                    continue
                cu = cus[best]
                caps[best] -= 1
                loads[best] += 1
                cu.issue_wgs(kernel, 1)
                if len(shape_caps) > 1:
                    shape_caps = {shape: caps}
                try:
                    touched.remove(cu)
                except ValueError:
                    pass
                touched.append(cu)
                self.wgs_issued += 1
                if profiler is not None:
                    profiler.on_wgs_issued(kernel.name, 1, now)
                if wg_trace is not None:
                    wg_trace.emit(now, "wg_issue", job_id=kernel.job.job_id,
                                  kernel=kernel.name, cu=cu.cu_id)
                kernel.job.mark_running(now)
                served.append(kernel)
                continue
            assigned = [0] * num_cus
            first_pick = [-1] * num_cus
            last_pick = [-1] * num_cus
            pick_order = [] if wg_trace is not None else None
            issued = 0
            while issued < want:
                best = -1
                best_load = -1
                for index in range(num_cus):
                    if caps[index] > 0:
                        load = loads[index]
                        if best < 0 or load < best_load:
                            best = index
                            best_load = load
                if best < 0:
                    break
                caps[best] -= 1
                loads[best] += 1
                assigned[best] += 1
                if first_pick[best] < 0:
                    first_pick[best] = issued
                last_pick[best] = issued
                if pick_order is not None:
                    pick_order.append(best)
                issued += 1
            if issued < want:
                blocked_shapes.add(shape)
                live_shapes.discard(shape)
            if issued == 0:
                continue
            if len(shape_caps) > 1:
                shape_caps = {shape: caps}
            chosen = [index for index in range(num_cus) if assigned[index]]
            chosen.sort(key=first_pick.__getitem__)
            for index in chosen:
                cus[index].issue_wgs(kernel, assigned[index])
            chosen.sort(key=last_pick.__getitem__)
            for index in chosen:
                cu = cus[index]
                try:
                    touched.remove(cu)
                except ValueError:
                    pass
                touched.append(cu)
            self.wgs_issued += issued
            if profiler is not None:
                profiler.on_wgs_issued(kernel.name, issued, now)
            if wg_trace is not None:
                job_id = kernel.job.job_id
                name = kernel.name
                for index in pick_order:
                    wg_trace.emit(now, "wg_issue", job_id=job_id,
                                  kernel=name, cu=cus[index].cu_id)
            kernel.job.mark_running(now)
            served.append(kernel)
        for cu in touched:
            cu.flush_issue()
        if served:
            self._note_served(served)

    def _note_served(self, served: List[KernelInstance]) -> None:
        """Post-issue bookkeeping shared by every pump flavour.

        Kernels the pump drained completely leave the standing pending
        set (see ``_pending_set``); partially issued ones stay.  Runs
        unconditionally — the set is maintained in every mode so a
        mid-run ``counted`` flip can never observe a stale view — and
        ends with the policy's served hook, which every pump previously
        called directly from this exact point.
        """
        pend = self._pending_set
        for kernel in served:
            if kernel.wgs_issued >= kernel.descriptor.num_wgs:
                pend.pop(kernel, None)
        self._policy.on_kernels_served(served)

    def _pump_per_wg(self, pending: Sequence[KernelInstance]) -> None:
        """Seed issue loop: one full CU rescan and sync per WG.

        Kept verbatim as the reference implementation — the engine
        hot-path bench and the differential property suite run it against
        :meth:`_pump_batched` to prove bit-identity.
        """
        served: List[KernelInstance] = []
        now = self._sim.now
        blocked_shapes = set()
        for kernel in self._policy.issue_order(pending):
            if id(kernel.descriptor) in blocked_shapes:
                continue
            issued_here = False
            while kernel.wgs_pending > 0:
                cu = self._pick_cu(kernel)
                if cu is None:
                    blocked_shapes.add(id(kernel.descriptor))
                    break
                cu.start_wg(kernel)
                self.wgs_issued += 1
                issued_here = True
                if self.profiler is not None:
                    self.profiler.on_wg_issued(kernel.name, now)
                if self.trace is not None and self.trace.wg_events:
                    self.trace.emit(now, "wg_issue",
                                    job_id=kernel.job.job_id,
                                    kernel=kernel.name, cu=cu.cu_id)
            if issued_here:
                kernel.job.mark_running(now)
                served.append(kernel)
        if served:
            self._note_served(served)

    def _any_capacity(self, pending: Sequence[KernelInstance]) -> bool:
        """Cheap saturation check so no-op pumps exit early."""
        min_threads = min(k.descriptor.threads_per_wg for k in pending)
        for cu in self.cus:
            if cu.free_wavefronts() > 0 and cu.free_threads() >= min_threads:
                return True
        return False

    def _any_capacity_vec(self) -> bool:
        """O(1) saturation fast-out over the occupancy arrays.

        Uses the monotone ``threads_per_wg`` lower bound instead of the
        scalar check's min over *currently pending* kernels, so it can
        pass where the scalar check would not — a false pass only costs
        a ranking pass that issues nothing (per-shape capacities are
        exact), never a different decision.  A false *fail* is
        impossible: the bound never exceeds any pending kernel's
        threads/WG.
        """
        occ = self._occ
        if occ is None:
            occ = self._occ = CUOccupancyArrays(self.cus)
        return bool(((occ.free_wavefronts > 0)
                     & (occ.free_threads >= self._min_threads_seen)).any())
