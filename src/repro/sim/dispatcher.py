"""Workgroup dispatcher (the GPU's WG scheduler).

The dispatcher owns the set of *active* kernels — launches the CP has
handed over — and fills free CU slots with their workgroups.  On every
state change (kernel activated, WG completed, preemption hold released) it
runs a *pump*: it asks the scheduling policy to rank the active kernels,
then walks the ranking issuing pending WGs to the least-loaded CU that can
accept them, until nothing more fits.

Pumps triggered inside one event timestamp are coalesced into a single
delay-0 event so bursts of WG completions cost one ranking pass.

The pump issues in **batches**: instead of one ``start_wg`` (full
O(residents) sync + timer cancel/re-push) and one all-CU rescan per WG,
it solves each kernel's placement against integer capacity counters
(:meth:`ComputeUnit.batch_capacity`), admits every WG bound for a CU in
one :meth:`ComputeUnit.issue_wgs` call, and re-arms each touched CU's
timer exactly once via :meth:`ComputeUnit.flush_issue` — in the order
the per-WG loop's surviving timer pushes would have happened, so the
event heap's FIFO tie-breaking (and therefore every simulated result) is
identical to the seed per-WG path.  ``docs/performance.md`` has the
argument in full; ``WGDispatcher.batched = False`` restores the seed
loop for benchmarking and differential testing.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, TYPE_CHECKING

from ..config import GPUConfig
from ..errors import SimulationError
from .compute_unit import ComputeUnit
from .engine import Simulator
from .energy import EnergyMeter
from .kernel import KernelInstance

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..schedulers.base import SchedulerPolicy


class WGDispatcher:
    """Fills CU slots from active kernels in policy order."""

    #: Class-level engine-mode switch (see :mod:`repro.sim.modes`).
    #: ``False`` restores the seed per-WG issue loop.
    batched = True

    def __init__(self, sim: Simulator, gpu_config: GPUConfig,
                 energy: EnergyMeter) -> None:
        self._sim = sim
        self._config = gpu_config
        self.cus: List[ComputeUnit] = [
            ComputeUnit(cu_id, sim, gpu_config, energy,
                        self._completion_sink(cu_id))
            for cu_id in range(gpu_config.num_cus)
        ]
        for cu in self.cus:
            cu.on_capacity_freed = self.request_pump
        self._active: List[KernelInstance] = []
        self._policy: Optional["SchedulerPolicy"] = None
        self._pump_pending = False
        #: Callback into the CP: a WG of ``kernel`` completed at ``now``.
        self.on_wg_complete: Optional[Callable[[KernelInstance, int], None]] = None
        #: Profiling table fed with issue/preempt events (set by GPUSystem;
        #: completions reach it through the CP).
        self.profiler = None
        #: Optional TraceRecorder mirroring WG/preemption events.
        self.trace = None
        #: Optional InvariantChecker auditing WG conservation after every
        #: pump / preemption / cancel (same off-path pattern as ``trace``).
        self.validator = None
        #: Total WGs issued to CUs (diagnostics; includes re-issues).
        self.wgs_issued = 0
        #: Total preemption evictions performed.
        self.wgs_preempted = 0

    def attach_policy(self, policy: "SchedulerPolicy") -> None:
        """Set the ranking policy; must happen before any activation."""
        self._policy = policy

    # ------------------------------------------------------------------
    # Kernel set
    # ------------------------------------------------------------------

    @property
    def active_kernels(self) -> Sequence[KernelInstance]:
        """Kernels currently eligible for WG issue."""
        return tuple(self._active)

    def add_kernel(self, kernel: KernelInstance) -> None:
        """Activate a kernel launch (CP handed it over)."""
        if kernel in self._active:
            raise SimulationError(f"kernel {kernel!r} activated twice")
        kernel.mark_active(self._sim.now)
        self._active.append(kernel)
        self.request_pump()

    def request_pump(self) -> None:
        """Schedule a pump at the current timestamp (coalesced)."""
        if not self._pump_pending:
            self._pump_pending = True
            self._sim.schedule(0, self._pump)

    # ------------------------------------------------------------------
    # Preemption (PREMA)
    # ------------------------------------------------------------------

    def preempt_kernel(self, kernel: KernelInstance, hold_time: int) -> int:
        """Evict every resident WG of ``kernel`` across all CUs.

        Evicted WGs return to the kernel's pending pool and re-execute from
        scratch; their CU resources stay held for ``hold_time`` ticks to
        model context-save traffic.  Returns the eviction count.
        """
        evicted = 0
        for cu in self.cus:
            evicted += cu.preempt_kernel(kernel, hold_time)
        self.wgs_preempted += evicted
        if evicted:
            if self.profiler is not None:
                self.profiler.on_wgs_preempted(kernel.name, evicted,
                                               self._sim.now)
            if self.trace is not None:
                self.trace.emit(self._sim.now, "preemption",
                                job_id=kernel.job.job_id,
                                kernel=kernel.name, detail=evicted)
            self.request_pump()
        if self.validator is not None:
            self.validator.on_dispatch(self)
        return evicted

    def resident_wgs(self, kernel: KernelInstance) -> int:
        """Resident WG count of ``kernel`` across the device."""
        return sum(cu.residents_of(kernel) for cu in self.cus)

    def cancel_kernel(self, kernel: KernelInstance) -> None:
        """Drop an active kernel entirely (its job was late-rejected).

        Resident WGs are evicted with no context save (the results are
        discarded, not resumed) and the kernel leaves the active set.
        """
        for cu in self.cus:
            evicted = cu.preempt_kernel(kernel, hold_time=0)
            if evicted:
                if self.profiler is not None:
                    self.profiler.on_wgs_preempted(kernel.name, evicted,
                                                   self._sim.now)
                if self.trace is not None:
                    self.trace.emit(self._sim.now, "preemption",
                                    job_id=kernel.job.job_id,
                                    kernel=kernel.name, detail=evicted)
        if kernel in self._active:
            self._active.remove(kernel)
        self.request_pump()
        if self.validator is not None:
            self.validator.on_dispatch(self)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _completion_sink(self, cu_id: int) -> Callable[[KernelInstance, int], None]:
        """Per-CU completion callback so traces can attribute the CU."""
        def sink(kernel: KernelInstance, now: int) -> None:
            self._wg_completed(kernel, now, cu_id)
        return sink

    def _wg_completed(self, kernel: KernelInstance, now: int,
                      cu_id: Optional[int] = None) -> None:
        if self.on_wg_complete is None:
            raise SimulationError("dispatcher has no completion sink")
        # wg_events checked here so disabled WG tracing costs nothing on
        # this per-workgroup path.
        if self.trace is not None and self.trace.wg_events:
            self.trace.emit(now, "wg_complete", job_id=kernel.job.job_id,
                            kernel=kernel.name, cu=cu_id)
        finished = kernel.note_wg_completed(now)
        if finished:
            self._active.remove(kernel)
        self.on_wg_complete(kernel, now)
        self.request_pump()

    def _pick_cu(self, kernel: KernelInstance) -> Optional[ComputeUnit]:
        """Least-loaded CU that can accept one WG of ``kernel``.

        Jobs parked at infinite priority (latency-insensitive work, or
        jobs a deadline-aware policy wrote off) are backfill: their WGs
        only go into slots where every resident keeps running at full
        rate, so they soak up spare capacity without ever slowing
        deadline work — resident WGs cannot be preempted by priority
        alone, so the protection must happen at issue time.
        """
        backfill_only = (math.isinf(kernel.job.priority)
                         or not self._config.greedy_occupancy)
        best: Optional[ComputeUnit] = None
        best_load = -1
        for cu in self.cus:
            if not cu.can_accept(kernel.descriptor):
                continue
            if backfill_only and cu.free_full_rate_slots(
                    kernel.descriptor.cu_concurrency) <= 0:
                continue
            load = cu.num_residents
            if best is None or load < best_load:
                best = cu
                best_load = load
        return best

    def _pump(self) -> None:
        self._pump_pending = False
        self._pump_once()
        if self.validator is not None:
            self.validator.on_dispatch(self)

    def _pump_once(self) -> None:
        # wgs_pending > 0, with the property inlined (per-pump scan).
        pending = [k for k in self._active
                   if k.descriptor.num_wgs > k.wgs_issued]
        if not pending:
            return
        if not self._any_capacity(pending):
            return
        if self._policy is None:
            raise SimulationError("dispatcher has no policy attached")
        if self.batched:
            self._pump_batched(pending)
        else:
            self._pump_per_wg(pending)

    def _pump_batched(self, pending: Sequence[KernelInstance]) -> None:
        """Batched issue: solve placement on counters, admit per CU.

        Decision-for-decision equivalent to :meth:`_pump_per_wg`: the
        inner loop replays the least-loaded/first-on-tie pick over
        integer capacity and load counters (``batch_capacity`` counts
        exactly the successive ``can_accept`` rounds that would pass),
        then commits each CU's WGs in one ``issue_wgs`` call.  Per-CU
        progress syncs happen in first-pick order and timer re-arms in
        last-pick order — the orders the per-WG loop produces — so float
        accumulation and event-heap FIFO ties are preserved exactly.
        Capacity vectors are memoized per descriptor resource shape
        between admissions (see the ``shape_caps`` comment below), which
        collapses the per-kernel ``batch_capacity`` rescans of fleets
        with many kernel types over few distinct shapes.
        """
        served: List[KernelInstance] = []
        now = self._sim.now
        cus = self.cus
        num_cus = len(cus)
        greedy = self._config.greedy_occupancy
        profiler = self.profiler
        wg_trace = (self.trace
                    if self.trace is not None and self.trace.wg_events
                    else None)
        # ``batch_capacity`` is a pure function of a descriptor's
        # *resource shape* — threads/WG, VGPR/WG, LDS/WG, and (when
        # backfilling) the concurrency class — against the CU's free
        # counters, so distinct kernel types sharing a shape share
        # capacity vectors.  ``shape_caps`` memoizes one vector per shape
        # between admissions: an admission shrinks budgets shared by
        # every shape, so it drops all *other* cached vectors, while the
        # admitting shape's own vector stays exact by decrement (each
        # same-shape WG admitted lowers every binding per-resource bound
        # by exactly one — the same algebra the inner placement loop
        # already relies on).  Resources only shrink within one pump, so
        # a shape whose vector bottoms out can be parked in
        # ``blocked_shapes`` for the rest of the round.
        shape_caps: dict = {}
        blocked_shapes = set()
        # CUs with admitted-but-unflushed WGs, ordered by most recent
        # admission (the per-WG loop's surviving timer-push order).
        touched: List[ComputeUnit] = []
        # Resident counts, carried across kernels: nothing but this
        # pump's own admissions changes residency mid-pump.
        loads = [cu.num_residents for cu in cus]
        for kernel in self._policy.issue_order(pending):
            desc = kernel.descriptor
            backfill_only = (math.isinf(kernel.job.priority) or not greedy)
            shape = (desc.threads_per_wg, desc.vgpr_bytes_per_wg,
                     desc.lds_bytes_per_wg, desc.cu_concurrency,
                     backfill_only)
            if shape in blocked_shapes:
                continue
            caps = shape_caps.get(shape)
            if caps is None:
                caps = [cu.batch_capacity(desc, backfill_only) for cu in cus]
                shape_caps[shape] = caps
            want = kernel.wgs_pending
            if want == 1:
                # Single-WG fast path: one least-loaded scan over the
                # capacity vector (``batch_capacity > 0`` iff
                # ``can_accept`` passes its backfill gate), no placement
                # arrays.
                best = -1
                best_load = -1
                for index in range(num_cus):
                    if caps[index] > 0:
                        load = loads[index]
                        if best < 0 or load < best_load:
                            best = index
                            best_load = load
                if best < 0:
                    blocked_shapes.add(shape)
                    continue
                cu = cus[best]
                caps[best] -= 1
                loads[best] += 1
                cu.issue_wgs(kernel, 1)
                if len(shape_caps) > 1:
                    shape_caps = {shape: caps}
                try:
                    touched.remove(cu)
                except ValueError:
                    pass
                touched.append(cu)
                self.wgs_issued += 1
                if profiler is not None:
                    profiler.on_wgs_issued(kernel.name, 1, now)
                if wg_trace is not None:
                    wg_trace.emit(now, "wg_issue", job_id=kernel.job.job_id,
                                  kernel=kernel.name, cu=cu.cu_id)
                kernel.job.mark_running(now)
                served.append(kernel)
                continue
            assigned = [0] * num_cus
            first_pick = [-1] * num_cus
            last_pick = [-1] * num_cus
            pick_order = [] if wg_trace is not None else None
            issued = 0
            while issued < want:
                best = -1
                best_load = -1
                for index in range(num_cus):
                    if caps[index] > 0:
                        load = loads[index]
                        if best < 0 or load < best_load:
                            best = index
                            best_load = load
                if best < 0:
                    break
                caps[best] -= 1
                loads[best] += 1
                assigned[best] += 1
                if first_pick[best] < 0:
                    first_pick[best] = issued
                last_pick[best] = issued
                if pick_order is not None:
                    pick_order.append(best)
                issued += 1
            if issued < want:
                blocked_shapes.add(shape)
            if issued == 0:
                continue
            if len(shape_caps) > 1:
                shape_caps = {shape: caps}
            chosen = [index for index in range(num_cus) if assigned[index]]
            chosen.sort(key=first_pick.__getitem__)
            for index in chosen:
                cus[index].issue_wgs(kernel, assigned[index])
            chosen.sort(key=last_pick.__getitem__)
            for index in chosen:
                cu = cus[index]
                try:
                    touched.remove(cu)
                except ValueError:
                    pass
                touched.append(cu)
            self.wgs_issued += issued
            if profiler is not None:
                profiler.on_wgs_issued(kernel.name, issued, now)
            if wg_trace is not None:
                job_id = kernel.job.job_id
                name = kernel.name
                for index in pick_order:
                    wg_trace.emit(now, "wg_issue", job_id=job_id,
                                  kernel=name, cu=cus[index].cu_id)
            kernel.job.mark_running(now)
            served.append(kernel)
        for cu in touched:
            cu.flush_issue()
        if served:
            self._policy.on_kernels_served(served)

    def _pump_per_wg(self, pending: Sequence[KernelInstance]) -> None:
        """Seed issue loop: one full CU rescan and sync per WG.

        Kept verbatim as the reference implementation — the engine
        hot-path bench and the differential property suite run it against
        :meth:`_pump_batched` to prove bit-identity.
        """
        served: List[KernelInstance] = []
        now = self._sim.now
        blocked_shapes = set()
        for kernel in self._policy.issue_order(pending):
            if id(kernel.descriptor) in blocked_shapes:
                continue
            issued_here = False
            while kernel.wgs_pending > 0:
                cu = self._pick_cu(kernel)
                if cu is None:
                    blocked_shapes.add(id(kernel.descriptor))
                    break
                cu.start_wg(kernel)
                self.wgs_issued += 1
                issued_here = True
                if self.profiler is not None:
                    self.profiler.on_wg_issued(kernel.name, now)
                if self.trace is not None and self.trace.wg_events:
                    self.trace.emit(now, "wg_issue",
                                    job_id=kernel.job.job_id,
                                    kernel=kernel.name, cu=cu.cu_id)
            if issued_here:
                kernel.job.mark_running(now)
                served.append(kernel)
        if served:
            self._policy.on_kernels_served(served)

    def _any_capacity(self, pending: Sequence[KernelInstance]) -> bool:
        """Cheap saturation check so no-op pumps exit early."""
        min_threads = min(k.descriptor.threads_per_wg for k in pending)
        for cu in self.cus:
            if cu.free_wavefronts() > 0 and cu.free_threads() >= min_threads:
                return True
        return False
