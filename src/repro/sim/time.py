"""Simulated-time units (re-export).

The canonical definitions live in :mod:`repro.units` (kept outside the
``sim`` package so that :mod:`repro.config` can use tick constants without
triggering the simulator imports).  This module re-exports them under the
simulation-flavoured name most simulator code prefers.
"""

from ..units import (MS, NS, SEC, US, format_ticks, from_ms, from_seconds,
                     from_us, to_ms, to_seconds, to_us)

__all__ = [
    "MS", "NS", "SEC", "US", "format_ticks", "from_ms", "from_seconds",
    "from_us", "to_ms", "to_seconds", "to_us",
]
