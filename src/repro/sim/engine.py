"""Discrete-event simulation engine.

A :class:`Simulator` owns a clock (integer nanoseconds) and a pending-event
heap.  Components schedule callbacks with :meth:`Simulator.schedule` (relative
delay) or :meth:`Simulator.schedule_at` (absolute time).  Events at the same
timestamp fire in the order they were scheduled (FIFO), which keeps runs
deterministic.

:class:`PeriodicTask` re-arms a callback on a fixed period for as long as a
predicate holds; the schedulers use it for their 100 us / 250 us update
loops so that no events fire while the device is idle.

Cancellation is tombstone-based: :meth:`EventHandle.cancel` marks the
entry and the heap skips it on pop.  Components that re-arm a timer on
every state change (the compute units) would otherwise grow the heap
mostly-tombstones on long runs, so the simulator keeps live/cancelled
counters — making :attr:`Simulator.pending_events` O(1) — and compacts
the heap in place once cancelled entries outnumber live ones.  Compaction
filters and re-heapifies; the (when, seq) total order is untouched, so
firing order (and therefore every simulated result) is identical with or
without it.

**Event-core mode** (``Simulator.wheeled``; see :mod:`repro.sim.modes`)
replaces the binary heap with a calendar-queue / timer-wheel hybrid
tuned for the near-monotone timestamps of sustained arrival streams:

* events hash into fixed-width time buckets (``when >> _BUCKET_SHIFT``),
  kept as plain ``(when, seq, handle)`` tuple lists so every comparison
  the structure ever performs is a C-level tuple compare — the seed
  heap's per-sift Python ``EventHandle.__lt__`` calls disappear;
* a small int-heap over the populated bucket indices is the "hours
  hand" that finds the next non-empty bucket, so far-future timers
  (diurnal-source rearm, long host sleeps) cost one bucket entry
  instead of deepening every near-term heap operation;
* the bucket that contains the clock is drained in sorted order with an
  overflow heap for events scheduled into it mid-drain (delay-0 pumps,
  parser latencies shorter than a bucket).

The (when, seq) total order — including the negative-seq arrival lane,
which sorts before device events at equal timestamps — is preserved
exactly, so firing order and every simulated result are bit-identical
to the heap.  The structure is chosen per-:class:`Simulator` at
construction (flipping the class flag mid-run would strand queued
events), matching how the mode context managers wrap whole runs.

The run loop additionally keeps a **fused-continuation buffer**: call
sites on the steady-state arrival path (stream inspection, kernel
activation, the delay-0 dispatch pump) schedule through
:meth:`Simulator.schedule_fusable`, and when such a continuation turns
out to be the very next event in (when, seq) order, the loop executes
it directly — same clock advance, same callback, same committed order —
without the round-trip through the queue structure, without even an
:class:`EventHandle`.  Coalesced continuations are tallied in
``events_coalesced`` rather than ``events_fired``; their sum
(``events_committed``) is invariant across modes.
"""

from __future__ import annotations

import heapq
import itertools
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import SimulationError


class EventHandle:
    """Handle to a scheduled event; lets the owner cancel it."""

    __slots__ = ("when", "seq", "callback", "args", "cancelled", "sim")

    def __init__(self, when: int, seq: int,
                 callback: Callable[..., None], args: tuple,
                 sim: "Optional[Simulator]" = None) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Owning simulator, notified on cancel so its live/cancelled
        #: counters stay O(1)-consistent (None for detached handles).
        self.sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if self.sim is not None:
                self.sim._note_cancelled()

    def __lt__(self, other: "EventHandle") -> bool:
        # Tuple-free (when, seq) comparison: this runs once per heap
        # sift level on every push/pop, the innermost loop of the engine.
        if self.when != other.when:
            return self.when < other.when
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<EventHandle t={self.when} {name} {state}>"


#: Heaps smaller than this are never compacted (filtering would cost more
#: than the tombstones it reclaims).
_COMPACT_MIN_TOMBSTONES = 64

#: First sequence number of the arrival lane (see
#: :meth:`Simulator.schedule_arrival`).  Far enough below zero that the
#: lane can never collide with the device lane's non-negative counter.
_ARRIVAL_SEQ_BASE = -(2 ** 62)

#: Calendar-queue bucket width, as a power of two of clock ticks: events
#: hash to bucket ``when >> _BUCKET_SHIFT``.  4096 ticks (~4 us at the
#: ns-granularity clock) keeps sustained-cell buckets at a dozen-odd
#: events — small enough that the sorted drain is effectively free,
#: wide enough that parser/pump continuations land in the bucket that
#: is already being drained.
_BUCKET_SHIFT = 12

class Simulator:
    """Event-driven simulator with an integer-nanosecond clock."""

    #: Class-level engine-mode switch (see :mod:`repro.sim.modes`).
    #: ``False`` restores the seed engine's behaviour — step()-driven run
    #: loop, no heap compaction — for apples-to-apples benchmarking; the
    #: simulated results are identical either way.
    optimized = True

    #: Event-core-mode switch (see :mod:`repro.sim.modes`): calendar-queue
    #: event storage plus the fused-continuation run loop.  Sampled once
    #: per Simulator at construction — the queue structure cannot change
    #: under queued events — so, unlike ``optimized``, flipping the class
    #: flag affects only simulators built afterwards.
    wheeled = True

    def __init__(self, max_time: Optional[int] = None) -> None:
        self._now = 0
        self._heap: List[EventHandle] = []
        self._seq = itertools.count()
        self._arrival_seq = itertools.count(_ARRIVAL_SEQ_BASE)
        self._events_fired = 0
        # Live (non-cancelled) and tombstoned entries currently in the
        # heap; maintained on push/pop/cancel so pending_events is O(1).
        self._pending = 0
        self._cancelled = 0
        self.max_time = max_time
        # --- calendar-queue state (event-core mode; see module docstring).
        # Entries are (when, seq, handle) tuples so every comparison is a
        # C-level tuple compare.  ``_cur_idx`` is the bucket currently
        # being drained (``_cur_sorted``/``_cur_pos``); events landing at
        # or before it go through the ``_cur_extra`` overflow heap, future
        # buckets live in ``_buckets`` keyed by index with ``_bucket_order``
        # (an int-heap) as the hours hand.
        self._use_wheel = bool(self.wheeled)
        self._cur_idx = -1
        self._cur_sorted: List[Tuple[int, int, EventHandle]] = []
        self._cur_pos = 0
        self._cur_extra: List[Tuple[int, int, EventHandle]] = []
        self._buckets: Dict[int, List[Tuple[int, int, EventHandle]]] = {}
        self._bucket_order: List[int] = []
        # Smallest (when, seq) per future bucket, maintained on push and
        # dropped when the bucket is promoted to the drain position.  Lets
        # the fused run loop peek the true queue head without sorting a
        # bucket — a cancelled entry can hold a bucket's min, which only
        # costs a coalescing opportunity (the spill path is always safe).
        self._bucket_mins: Dict[int, Tuple[int, int]] = {}
        # Continuations buffered by schedule_fusable() inside _run_wheel():
        # bare (when, seq, callback, args) tuples, never queued.
        self._fuse_buf: List[Tuple[int, int, Callable[..., None], tuple]] = []
        self._in_run = False
        #: Continuations executed directly by the fused run loop, without
        #: a round-trip through the event queue (disjoint from
        #: ``events_fired``; see :attr:`events_committed`).
        self.events_coalesced = 0
        #: Optional self-profiler (``record(callback, seconds)`` per
        #: executed event) — see :mod:`repro.telemetry.selfprof`.  None
        #: keeps the hot path to a single attribute check.
        self.profiler = None
        #: Optional :class:`~repro.validation.invariants.InvariantChecker`
        #: consulted before each event fires; same off-path discipline.
        self.validator = None

    @property
    def now(self) -> int:
        """Current simulated time in ticks."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Events executed from the queue so far (for diagnostics).

        Coalesced continuations do not count here — compare
        :attr:`events_committed` across engine modes instead.
        """
        return self._events_fired

    @property
    def events_committed(self) -> int:
        """Total committed events: queue pops plus coalesced continuations.

        Invariant across engine modes — equal to ``events_fired`` of the
        same run with the event-core flags off — which makes it the
        right event count for cross-mode equivalence checks.
        """
        return self._events_fired + self.events_coalesced

    @property
    def pending_events(self) -> int:
        """Number of queued (non-cancelled) events.  O(1)."""
        return self._pending

    def _note_cancelled(self) -> None:
        """An owned handle was cancelled; update counters, maybe compact."""
        self._pending -= 1
        self._cancelled += 1
        if (self._cancelled >= _COMPACT_MIN_TOMBSTONES
                and self._cancelled * 2 > len(self._heap)
                and self.optimized
                # Calendar buckets self-clean as time advances; the heap
                # compaction below would reset the tombstone counter
                # without touching them.
                and not self._use_wheel):
            self._compact()

    def _compact(self) -> None:
        """Drop tombstones and re-heapify, in place.

        In place so that a ``run()`` loop holding a reference to the heap
        list stays valid; (when, seq) ordering is preserved, so the firing
        order — and every downstream result — is unchanged.
        """
        self._heap[:] = [ev for ev in self._heap if not ev.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def _wheel_push(self, when: int, seq: int, handle: EventHandle) -> None:
        """Insert an entry into the calendar queue.

        Entries at or before the bucket being drained go through the
        overflow heap — it is merged against the sorted drain on every
        pop, so an entry whose timestamp precedes the current bucket
        (possible only via fused continuations firing at the tail of the
        previous bucket) still sorts ahead of everything queued.
        """
        b = when >> _BUCKET_SHIFT
        if b <= self._cur_idx:
            heapq.heappush(self._cur_extra, (when, seq, handle))
        else:
            bucket = self._buckets.get(b)
            if bucket is None:
                self._buckets[b] = [(when, seq, handle)]
                self._bucket_mins[b] = (when, seq)
                heapq.heappush(self._bucket_order, b)
            else:
                bucket.append((when, seq, handle))
                mins = self._bucket_mins
                if (when, seq) < mins[b]:
                    mins[b] = (when, seq)

    def schedule(self, delay: int, callback: Callable[..., None],
                 *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ticks from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        # Inlined schedule_at (this is the timer hot path; delay >= 0
        # guarantees the when >= now precondition).
        when = self._now + delay
        seq = next(self._seq)
        handle = EventHandle(when, seq, callback, args, self)
        if self._use_wheel:
            # Inlined _wheel_push: this is the timer re-arm hot path.
            b = when >> _BUCKET_SHIFT
            if b <= self._cur_idx:
                heapq.heappush(self._cur_extra, (when, seq, handle))
            else:
                bucket = self._buckets.get(b)
                if bucket is None:
                    self._buckets[b] = [(when, seq, handle)]
                    self._bucket_mins[b] = (when, seq)
                    heapq.heappush(self._bucket_order, b)
                else:
                    bucket.append((when, seq, handle))
                    mins = self._bucket_mins
                    if (when, seq) < mins[b]:
                        mins[b] = (when, seq)
        else:
            heapq.heappush(self._heap, handle)
        self._pending += 1
        return handle

    def schedule_fusable(self, delay: int, callback: Callable[..., None],
                         *args: Any) -> Optional[EventHandle]:
        """:meth:`schedule`, with a continuation hint for the run loop.

        Call sites that re-enter the engine at the tail of the current
        handler (stream inspection, kernel activation, the delay-0
        dispatch pump) use this instead of :meth:`schedule`.  Inside the
        fused run loop the continuation is buffered as a bare
        ``(when, seq, callback, args)`` tuple — no :class:`EventHandle`,
        no queue traffic — and executed directly if it is still the
        globally next event once the current handler returns (spilled
        into the calendar queue otherwise).  Everywhere else — wheel
        off, step()-driven sessions, ``run_until`` device slices,
        validated or self-profiled runs — this is exactly
        :meth:`schedule`.  The committed event sequence (firing order
        and clock advance) is identical either way; coalesced
        continuations count in :attr:`events_coalesced` instead of
        ``events_fired`` (their sum, :attr:`events_committed`, is the
        mode-invariant total), and no handle is returned for them —
        fusable call sites never cancel.
        """
        if (not self._in_run or self.validator is not None
                or self.profiler is not None):
            return self.schedule(delay, callback, *args)
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._fuse_buf.append((self._now + delay, next(self._seq),
                               callback, args))
        return None

    def schedule_at(self, when: int, callback: Callable[..., None],
                    *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before now={self._now}")
        seq = next(self._seq)
        handle = EventHandle(when, seq, callback, args, self)
        if self._use_wheel:
            self._wheel_push(when, seq, handle)
        else:
            heapq.heappush(self._heap, handle)
        self._pending += 1
        return handle

    def schedule_arrival(self, when: int, callback: Callable[..., None],
                         *args: Any) -> EventHandle:
        """Schedule a workload-arrival event at absolute time ``when``.

        Arrival events draw sequence numbers from a dedicated negative
        counter, so at equal timestamps they fire before every
        device-side event — and among themselves in scheduling order.
        That reproduces exactly the ordering the finite path gets from
        ``submit_workload`` scheduling every arrival up front (seqs
        ``0..n-1``, before any device timer exists), which is what makes
        a lazily-fed stream bit-identical to the pre-generated list even
        when an arrival ties with a device event re-armed mid-run.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before now={self._now}")
        seq = next(self._arrival_seq)
        handle = EventHandle(when, seq, callback, args, self)
        if self._use_wheel:
            self._wheel_push(when, seq, handle)
        else:
            heapq.heappush(self._heap, handle)
        self._pending += 1
        return handle

    def _wheel_peek(self) -> Optional[Tuple[int, int, EventHandle]]:
        """Head entry of the calendar queue, tombstones skipped (and
        reclaimed); ``None`` when the queue is empty.  May advance the
        drain bucket, never removes a live entry."""
        heappop = heapq.heappop
        while True:
            cur = self._cur_sorted
            pos = self._cur_pos
            extra = self._cur_extra
            if pos < len(cur):
                head = cur[pos]
                if extra and extra[0] < head:
                    head = extra[0]
                    if head[2].cancelled:
                        heappop(extra)
                        self._cancelled -= 1
                        continue
                    return head
                if head[2].cancelled:
                    self._cur_pos = pos + 1
                    self._cancelled -= 1
                    continue
                return head
            if extra:
                head = extra[0]
                if head[2].cancelled:
                    heappop(extra)
                    self._cancelled -= 1
                    continue
                return head
            order = self._bucket_order
            if not order:
                return None
            b = heappop(order)
            lst = self._buckets.pop(b)
            del self._bucket_mins[b]
            lst.sort()
            self._cur_idx = b
            self._cur_sorted = lst
            self._cur_pos = 0

    def _wheel_next(self) -> Optional[Tuple[int, int, EventHandle]]:
        """Remove and return the head entry (live or not); ``None`` when
        empty.  Tombstone reclamation is the caller's job, matching the
        heap pop contract."""
        cur = self._cur_sorted
        pos = self._cur_pos
        extra = self._cur_extra
        if pos < len(cur):
            head = cur[pos]
            if extra and extra[0] < head:
                return heapq.heappop(extra)
            self._cur_pos = pos + 1
            return head
        if extra:
            return heapq.heappop(extra)
        order = self._bucket_order
        if not order:
            return None
        b = heapq.heappop(order)
        lst = self._buckets.pop(b)
        del self._bucket_mins[b]
        lst.sort()
        self._cur_idx = b
        self._cur_sorted = lst
        self._cur_pos = 1
        return lst[0]

    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``False`` when the queue is empty (the clock does not
        advance), ``True`` otherwise.
        """
        if self._use_wheel:
            return self._step_wheel()
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._pending -= 1
            if self.max_time is not None and event.when > self.max_time:
                raise SimulationError(
                    f"simulation exceeded max_time={self.max_time} ticks; "
                    "the workload may be livelocked")
            if self.validator is not None:
                self.validator.on_event(event, self._now)
            self._now = event.when
            self._events_fired += 1
            profiler = self.profiler
            if profiler is None:
                event.callback(*event.args)
            else:
                started = perf_counter()
                event.callback(*event.args)
                profiler.record(event.callback, perf_counter() - started)
            return True
        return False

    def _step_wheel(self) -> bool:
        """:meth:`step` over the calendar queue — identical semantics."""
        while True:
            entry = self._wheel_next()
            if entry is None:
                return False
            event = entry[2]
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._pending -= 1
            if self.max_time is not None and event.when > self.max_time:
                raise SimulationError(
                    f"simulation exceeded max_time={self.max_time} ticks; "
                    "the workload may be livelocked")
            if self.validator is not None:
                self.validator.on_event(event, self._now)
            self._now = event.when
            self._events_fired += 1
            profiler = self.profiler
            if profiler is None:
                event.callback(*event.args)
            else:
                started = perf_counter()
                event.callback(*event.args)
                profiler.record(event.callback, perf_counter() - started)
            return True

    def run(self) -> int:
        """Run until no events remain; return the final time.

        The hot loop inlines :meth:`step` (identical semantics, minus one
        Python call frame per event — measurable at millions of events).
        ``self._heap`` is mutated in place by :meth:`_compact`, so the
        local binding stays valid across callbacks.
        """
        if not self.optimized:
            while self.step():
                pass
            return self._now
        if self._use_wheel:
            return self._run_wheel()
        heap = self._heap
        pop = heapq.heappop
        max_time = self.max_time
        # Hoisted for the duration of this run(): both sinks are attached
        # at system-build time, before any event fires.
        validator = self.validator
        profiler = self.profiler
        while heap:
            event = pop(heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._pending -= 1
            if max_time is not None and event.when > max_time:
                raise SimulationError(
                    f"simulation exceeded max_time={max_time} ticks; "
                    "the workload may be livelocked")
            if validator is not None:
                validator.on_event(event, self._now)
            self._now = event.when
            self._events_fired += 1
            if profiler is None:
                event.callback(*event.args)
            else:
                started = perf_counter()
                event.callback(*event.args)
                profiler.record(event.callback, perf_counter() - started)
        return self._now

    def _run_wheel(self) -> int:
        """Inlined run loop over the calendar queue, with event fusion.

        Pop/fire semantics match :meth:`step` exactly.  After each
        handler returns, continuations it buffered via
        :meth:`schedule_fusable` are executed directly while they remain
        the globally next event in (when, seq) order; the first buffered
        continuation that is preceded by a queued event spills the whole
        buffer back into the calendar queue.  Either way every event
        advances the clock, increments ``events_fired`` and passes
        through the validator just as a queued pop would.
        """
        heappop = heapq.heappop
        max_time = self.max_time
        # Hoisted for the duration of this run(): both sinks are attached
        # at system-build time, before any event fires.
        validator = self.validator
        profiler = self.profiler
        fuse = self._fuse_buf
        self._in_run = True
        try:
            while True:
                # Inlined _wheel_next().
                cur = self._cur_sorted
                pos = self._cur_pos
                extra = self._cur_extra
                if pos < len(cur):
                    entry = cur[pos]
                    if extra and extra[0] < entry:
                        entry = heappop(extra)
                    else:
                        self._cur_pos = pos + 1
                elif extra:
                    entry = heappop(extra)
                else:
                    order = self._bucket_order
                    if not order:
                        break
                    b = heappop(order)
                    lst = self._buckets.pop(b)
                    del self._bucket_mins[b]
                    lst.sort()
                    self._cur_idx = b
                    self._cur_sorted = lst
                    self._cur_pos = 1
                    entry = lst[0]
                event = entry[2]
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                self._pending -= 1
                when = entry[0]
                if max_time is not None and when > max_time:
                    raise SimulationError(
                        f"simulation exceeded max_time={max_time} ticks; "
                        "the workload may be livelocked")
                if validator is not None:
                    validator.on_event(event, self._now)
                self._now = when
                self._events_fired += 1
                if profiler is None:
                    event.callback(*event.args)
                else:
                    started = perf_counter()
                    event.callback(*event.args)
                    profiler.record(event.callback, perf_counter() - started)
                while fuse:
                    if len(fuse) > 1:
                        # (when, seq) prefixes are globally unique, so the
                        # tuple sort never compares the callback fields.
                        fuse.sort()
                    cand = fuse[0]
                    when_c = cand[0]
                    seq_c = cand[1]
                    # Conservative inline peek: a queued head (tombstoned
                    # or not) that precedes the continuation forces a
                    # spill; unsorted future buckets answer through their
                    # maintained per-bucket min.  Pessimism (a cancelled
                    # entry holding a head or a min) only costs a
                    # coalescing opportunity — the spilled event fires
                    # from the queue at the same (when, seq) position.
                    cur = self._cur_sorted
                    pos = self._cur_pos
                    extra = self._cur_extra
                    if pos < len(cur):
                        head = cur[pos]
                        if extra and extra[0] < head:
                            head = extra[0]
                        preceded = (head[0] < when_c
                                    or (head[0] == when_c
                                        and head[1] < seq_c))
                    elif extra:
                        head = extra[0]
                        preceded = (head[0] < when_c
                                    or (head[0] == when_c
                                        and head[1] < seq_c))
                    else:
                        order = self._bucket_order
                        if order:
                            head = self._bucket_mins[order[0]]
                            preceded = (head[0] < when_c
                                        or (head[0] == when_c
                                            and head[1] < seq_c))
                        else:
                            preceded = False
                    if preceded:
                        # A queued event may precede the continuation:
                        # spill the buffer and resume normal popping.
                        push = self._wheel_push
                        for when_s, seq_s, cb_s, args_s in fuse:
                            push(when_s, seq_s,
                                 EventHandle(when_s, seq_s, cb_s, args_s,
                                             self))
                            self._pending += 1
                        del fuse[:]
                        break
                    del fuse[0]
                    if max_time is not None and when_c > max_time:
                        raise SimulationError(
                            f"simulation exceeded max_time={max_time} ticks; "
                            "the workload may be livelocked")
                    self._now = when_c
                    self.events_coalesced += 1
                    cand[2](*cand[3])
        finally:
            self._in_run = False
            if fuse:
                # Unwind path (callback raised): preserve pending events.
                push = self._wheel_push
                for when_s, seq_s, cb_s, args_s in fuse:
                    push(when_s, seq_s,
                         EventHandle(when_s, seq_s, cb_s, args_s, self))
                    self._pending += 1
                del fuse[:]
        return self._now

    def run_until(self, when: int) -> int:
        """Run events up to and including time ``when``.

        The clock is left at ``when`` (or later if an event fired exactly
        there) so subsequent relative scheduling behaves intuitively.
        """
        if self._use_wheel:
            while True:
                head = self._wheel_peek()
                if head is None or head[0] > when:
                    break
                self._step_wheel()
            self._now = max(self._now, when)
            return self._now
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                self._cancelled -= 1
                continue
            if head.when > when:
                break
            self.step()
        self._now = max(self._now, when)
        return self._now

    def event_core_stats(self) -> dict:
        """Event-core accounting for bench JSONs and run reports.

        ``wheel_pops`` counts events that went through the calendar
        queue, ``heap_pops`` those through the seed binary heap,
        ``events_coalesced`` the fused continuations executed without
        touching either; pops and coalesced sum to ``events_committed``,
        the mode-invariant total.
        """
        fired = self._events_fired
        return {
            "wheeled": self._use_wheel,
            "events_fired": fired,
            "events_coalesced": self.events_coalesced,
            "events_committed": fired + self.events_coalesced,
            "wheel_pops": fired if self._use_wheel else 0,
            "heap_pops": 0 if self._use_wheel else fired,
        }


class PeriodicTask:
    """Re-arms ``callback`` every ``period`` ticks while ``active()`` holds.

    The task is started lazily with :meth:`ensure_running`; when the
    predicate returns ``False`` the task stops re-arming itself and a later
    ``ensure_running`` restarts it.  This keeps idle simulations free of
    timer events, which matters because experiment makespans vary by 1000x.
    """

    def __init__(self, sim: Simulator, period: int,
                 callback: Callable[[], None],
                 active: Callable[[], bool]) -> None:
        if period <= 0:
            raise SimulationError("PeriodicTask period must be positive")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._active = active
        self._handle: Optional[EventHandle] = None
        #: Ticks whose callback actually ran.
        self.ticks_fired = 0
        #: Ticks elided: the timer fired but the predicate had gone false,
        #: so the callback (and the re-arm) were skipped.
        self.ticks_elided = 0
        #: Times the loop was (re)armed from idle by :meth:`ensure_running`.
        self.restarts = 0
        #: Optional epoch gate (event-core mode): a callable consulted
        #: while the task is active; returning ``True`` certifies that
        #: running the callback now would change nothing observable, so
        #: the tick re-arms without executing it.  The timer event itself
        #: still fires every period — tick phase and the committed event
        #: sequence are unchanged — only the callback body is skipped.
        self.gate: Optional[Callable[[], bool]] = None
        #: Ticks whose callback was skipped because the gate held.
        self.ticks_gated = 0

    @property
    def running(self) -> bool:
        """Whether a tick is currently scheduled."""
        return self._handle is not None and not self._handle.cancelled

    def ensure_running(self) -> None:
        """Start the periodic loop if it is not already pending."""
        if not self.running and self._active():
            self.restarts += 1
            self._handle = self._sim.schedule(self._period, self._tick)

    def stop(self) -> None:
        """Cancel the pending tick, if any."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        self._handle = None
        if not self._active():
            self.ticks_elided += 1
            return
        gate = self.gate
        if gate is not None and gate():
            self.ticks_gated += 1
            self._handle = self._sim.schedule(self._period, self._tick)
            return
        self.ticks_fired += 1
        self._callback()
        # Re-check: the callback may have drained the last work.
        if self._active():
            self._handle = self._sim.schedule(self._period, self._tick)
