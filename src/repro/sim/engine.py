"""Discrete-event simulation engine.

A :class:`Simulator` owns a clock (integer nanoseconds) and a pending-event
heap.  Components schedule callbacks with :meth:`Simulator.schedule` (relative
delay) or :meth:`Simulator.schedule_at` (absolute time).  Events at the same
timestamp fire in the order they were scheduled (FIFO), which keeps runs
deterministic.

:class:`PeriodicTask` re-arms a callback on a fixed period for as long as a
predicate holds; the schedulers use it for their 100 us / 250 us update
loops so that no events fire while the device is idle.

Cancellation is tombstone-based: :meth:`EventHandle.cancel` marks the
entry and the heap skips it on pop.  Components that re-arm a timer on
every state change (the compute units) would otherwise grow the heap
mostly-tombstones on long runs, so the simulator keeps live/cancelled
counters — making :attr:`Simulator.pending_events` O(1) — and compacts
the heap in place once cancelled entries outnumber live ones.  Compaction
filters and re-heapifies; the (when, seq) total order is untouched, so
firing order (and therefore every simulated result) is identical with or
without it.
"""

from __future__ import annotations

import heapq
import itertools
from time import perf_counter
from typing import Any, Callable, List, Optional

from ..errors import SimulationError


class EventHandle:
    """Handle to a scheduled event; lets the owner cancel it."""

    __slots__ = ("when", "seq", "callback", "args", "cancelled", "sim")

    def __init__(self, when: int, seq: int,
                 callback: Callable[..., None], args: tuple,
                 sim: "Optional[Simulator]" = None) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Owning simulator, notified on cancel so its live/cancelled
        #: counters stay O(1)-consistent (None for detached handles).
        self.sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if self.sim is not None:
                self.sim._note_cancelled()

    def __lt__(self, other: "EventHandle") -> bool:
        # Tuple-free (when, seq) comparison: this runs once per heap
        # sift level on every push/pop, the innermost loop of the engine.
        if self.when != other.when:
            return self.when < other.when
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<EventHandle t={self.when} {name} {state}>"


#: Heaps smaller than this are never compacted (filtering would cost more
#: than the tombstones it reclaims).
_COMPACT_MIN_TOMBSTONES = 64

#: First sequence number of the arrival lane (see
#: :meth:`Simulator.schedule_arrival`).  Far enough below zero that the
#: lane can never collide with the device lane's non-negative counter.
_ARRIVAL_SEQ_BASE = -(2 ** 62)


class Simulator:
    """Event-driven simulator with an integer-nanosecond clock."""

    #: Class-level engine-mode switch (see :mod:`repro.sim.modes`).
    #: ``False`` restores the seed engine's behaviour — step()-driven run
    #: loop, no heap compaction — for apples-to-apples benchmarking; the
    #: simulated results are identical either way.
    optimized = True

    def __init__(self, max_time: Optional[int] = None) -> None:
        self._now = 0
        self._heap: List[EventHandle] = []
        self._seq = itertools.count()
        self._arrival_seq = itertools.count(_ARRIVAL_SEQ_BASE)
        self._events_fired = 0
        # Live (non-cancelled) and tombstoned entries currently in the
        # heap; maintained on push/pop/cancel so pending_events is O(1).
        self._pending = 0
        self._cancelled = 0
        self.max_time = max_time
        #: Optional self-profiler (``record(callback, seconds)`` per
        #: executed event) — see :mod:`repro.telemetry.selfprof`.  None
        #: keeps the hot path to a single attribute check.
        self.profiler = None
        #: Optional :class:`~repro.validation.invariants.InvariantChecker`
        #: consulted before each event fires; same off-path discipline.
        self.validator = None

    @property
    def now(self) -> int:
        """Current simulated time in ticks."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total events executed so far (for diagnostics)."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Number of queued (non-cancelled) events.  O(1)."""
        return self._pending

    def _note_cancelled(self) -> None:
        """An owned handle was cancelled; update counters, maybe compact."""
        self._pending -= 1
        self._cancelled += 1
        if (self._cancelled >= _COMPACT_MIN_TOMBSTONES
                and self._cancelled * 2 > len(self._heap)
                and self.optimized):
            self._compact()

    def _compact(self) -> None:
        """Drop tombstones and re-heapify, in place.

        In place so that a ``run()`` loop holding a reference to the heap
        list stays valid; (when, seq) ordering is preserved, so the firing
        order — and every downstream result — is unchanged.
        """
        self._heap[:] = [ev for ev in self._heap if not ev.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def schedule(self, delay: int, callback: Callable[..., None],
                 *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ticks from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        # Inlined schedule_at (this is the timer hot path; delay >= 0
        # guarantees the when >= now precondition).
        handle = EventHandle(self._now + delay, next(self._seq),
                             callback, args, self)
        heapq.heappush(self._heap, handle)
        self._pending += 1
        return handle

    def schedule_at(self, when: int, callback: Callable[..., None],
                    *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before now={self._now}")
        handle = EventHandle(when, next(self._seq), callback, args, self)
        heapq.heappush(self._heap, handle)
        self._pending += 1
        return handle

    def schedule_arrival(self, when: int, callback: Callable[..., None],
                         *args: Any) -> EventHandle:
        """Schedule a workload-arrival event at absolute time ``when``.

        Arrival events draw sequence numbers from a dedicated negative
        counter, so at equal timestamps they fire before every
        device-side event — and among themselves in scheduling order.
        That reproduces exactly the ordering the finite path gets from
        ``submit_workload`` scheduling every arrival up front (seqs
        ``0..n-1``, before any device timer exists), which is what makes
        a lazily-fed stream bit-identical to the pre-generated list even
        when an arrival ties with a device event re-armed mid-run.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before now={self._now}")
        handle = EventHandle(when, next(self._arrival_seq),
                             callback, args, self)
        heapq.heappush(self._heap, handle)
        self._pending += 1
        return handle

    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``False`` when the queue is empty (the clock does not
        advance), ``True`` otherwise.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._pending -= 1
            if self.max_time is not None and event.when > self.max_time:
                raise SimulationError(
                    f"simulation exceeded max_time={self.max_time} ticks; "
                    "the workload may be livelocked")
            if self.validator is not None:
                self.validator.on_event(event, self._now)
            self._now = event.when
            self._events_fired += 1
            profiler = self.profiler
            if profiler is None:
                event.callback(*event.args)
            else:
                started = perf_counter()
                event.callback(*event.args)
                profiler.record(event.callback, perf_counter() - started)
            return True
        return False

    def run(self) -> int:
        """Run until no events remain; return the final time.

        The hot loop inlines :meth:`step` (identical semantics, minus one
        Python call frame per event — measurable at millions of events).
        ``self._heap`` is mutated in place by :meth:`_compact`, so the
        local binding stays valid across callbacks.
        """
        if not self.optimized:
            while self.step():
                pass
            return self._now
        heap = self._heap
        pop = heapq.heappop
        max_time = self.max_time
        # Hoisted for the duration of this run(): both sinks are attached
        # at system-build time, before any event fires.
        validator = self.validator
        profiler = self.profiler
        while heap:
            event = pop(heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._pending -= 1
            if max_time is not None and event.when > max_time:
                raise SimulationError(
                    f"simulation exceeded max_time={max_time} ticks; "
                    "the workload may be livelocked")
            if validator is not None:
                validator.on_event(event, self._now)
            self._now = event.when
            self._events_fired += 1
            if profiler is None:
                event.callback(*event.args)
            else:
                started = perf_counter()
                event.callback(*event.args)
                profiler.record(event.callback, perf_counter() - started)
        return self._now

    def run_until(self, when: int) -> int:
        """Run events up to and including time ``when``.

        The clock is left at ``when`` (or later if an event fired exactly
        there) so subsequent relative scheduling behaves intuitively.
        """
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                self._cancelled -= 1
                continue
            if head.when > when:
                break
            self.step()
        self._now = max(self._now, when)
        return self._now


class PeriodicTask:
    """Re-arms ``callback`` every ``period`` ticks while ``active()`` holds.

    The task is started lazily with :meth:`ensure_running`; when the
    predicate returns ``False`` the task stops re-arming itself and a later
    ``ensure_running`` restarts it.  This keeps idle simulations free of
    timer events, which matters because experiment makespans vary by 1000x.
    """

    def __init__(self, sim: Simulator, period: int,
                 callback: Callable[[], None],
                 active: Callable[[], bool]) -> None:
        if period <= 0:
            raise SimulationError("PeriodicTask period must be positive")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._active = active
        self._handle: Optional[EventHandle] = None
        #: Ticks whose callback actually ran.
        self.ticks_fired = 0
        #: Ticks elided: the timer fired but the predicate had gone false,
        #: so the callback (and the re-arm) were skipped.
        self.ticks_elided = 0
        #: Times the loop was (re)armed from idle by :meth:`ensure_running`.
        self.restarts = 0

    @property
    def running(self) -> bool:
        """Whether a tick is currently scheduled."""
        return self._handle is not None and not self._handle.cancelled

    def ensure_running(self) -> None:
        """Start the periodic loop if it is not already pending."""
        if not self.running and self._active():
            self.restarts += 1
            self._handle = self._sim.schedule(self._period, self._tick)

    def stop(self) -> None:
        """Cancel the pending tick, if any."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        self._handle = None
        if not self._active():
            self.ticks_elided += 1
            return
        self.ticks_fired += 1
        self._callback()
        # Re-check: the callback may have drained the last work.
        if self._active():
            self._handle = self._sim.schedule(self._period, self._tick)
