"""Experiment harness: cells, grids, summaries, paper-expected values."""

from .artifacts import (cell_record, collect_results, load_results,
                        save_results)
from .experiment import (CellResult, ExperimentSpec, PAPER_NUM_JOBS,
                         clear_cache, deadline_counts, default_num_jobs,
                         run_cell)
from .replication import (ReplicatedCell, ReplicatedMetric,
                          compare_with_confidence, replicate_cell)
from .formatting import format_bar_series, format_table
from .paper_expected import (PAPER_GEOMEAN_CLAIMS, PAPER_JOB_TABLE_BYTES,
                             PAPER_PREDICTION_MAE, PAPER_WASTED_WORK,
                             TABLE5A_THROUGHPUT, TABLE5B_P99_MS,
                             TABLE5C_ENERGY_MJ, TABLE5_SCHEDULERS)
from .summary import (GEOMEAN_FLOOR, geomean_over_benchmarks, geomean_ratio,
                      grid_results, normalized_deadline_grid,
                      wasted_work_by_scheduler)

__all__ = [
    "CellResult",
    "ExperimentSpec",
    "GEOMEAN_FLOOR",
    "PAPER_GEOMEAN_CLAIMS",
    "PAPER_JOB_TABLE_BYTES",
    "PAPER_NUM_JOBS",
    "PAPER_PREDICTION_MAE",
    "PAPER_WASTED_WORK",
    "TABLE5A_THROUGHPUT",
    "TABLE5B_P99_MS",
    "TABLE5C_ENERGY_MJ",
    "TABLE5_SCHEDULERS",
    "ReplicatedCell",
    "ReplicatedMetric",
    "cell_record",
    "clear_cache",
    "collect_results",
    "compare_with_confidence",
    "deadline_counts",
    "default_num_jobs",
    "format_bar_series",
    "format_table",
    "geomean_over_benchmarks",
    "geomean_ratio",
    "grid_results",
    "load_results",
    "normalized_deadline_grid",
    "replicate_cell",
    "run_cell",
    "save_results",
    "wasted_work_by_scheduler",
]
