"""Experiment harness: cells, sweeps, the parallel runner, summaries.

The public sweep surface is :class:`SweepSpec` (what to run),
:class:`RunOptions` (how to run it), :class:`Runner` (parallel
execution + persistent result cache) and :func:`run_cell` (one cell,
in-process).  Everything else supports the paper's tables and figures.
"""

from .artifacts import (cell_record, collect_results, load_results,
                        result_record, save_results)
from .cache import ResultCache, cache_key, code_fingerprint, default_cache_dir
from .experiment import (CellResult, ExperimentSpec, PAPER_NUM_JOBS,
                         clear_cache, deadline_counts, default_num_jobs,
                         run_cell)
# replicate_cell / compare_with_confidence stay importable but raise:
# their deprecation cycle finished, the stubs point at the sweep API.
from .replication import (ReplicatedCell, ReplicatedMetric, compare_sweep,
                          compare_with_confidence, replicate_cell,
                          replicate_sweep)
from .runner import CellFailure, Runner, SweepOutcome
from .spec import RunOptions, SweepSpec, single_cell_sweep
from .formatting import format_bar_series, format_table
from .paper_expected import (PAPER_GEOMEAN_CLAIMS, PAPER_JOB_TABLE_BYTES,
                             PAPER_PREDICTION_MAE, PAPER_WASTED_WORK,
                             TABLE5A_THROUGHPUT, TABLE5B_P99_MS,
                             TABLE5C_ENERGY_MJ, TABLE5_SCHEDULERS)
from .summary import (GEOMEAN_FLOOR, geomean_over_benchmarks, geomean_ratio,
                      grid_results, normalized_deadline_grid,
                      wasted_work_by_scheduler)

__all__ = [
    "CellFailure",
    "CellResult",
    "ExperimentSpec",
    "GEOMEAN_FLOOR",
    "PAPER_GEOMEAN_CLAIMS",
    "PAPER_JOB_TABLE_BYTES",
    "PAPER_NUM_JOBS",
    "PAPER_PREDICTION_MAE",
    "PAPER_WASTED_WORK",
    "ReplicatedCell",
    "ReplicatedMetric",
    "ResultCache",
    "RunOptions",
    "Runner",
    "SweepOutcome",
    "SweepSpec",
    "TABLE5A_THROUGHPUT",
    "TABLE5B_P99_MS",
    "TABLE5C_ENERGY_MJ",
    "TABLE5_SCHEDULERS",
    "cache_key",
    "cell_record",
    "clear_cache",
    "code_fingerprint",
    "collect_results",
    "compare_sweep",
    "compare_with_confidence",
    "deadline_counts",
    "default_cache_dir",
    "default_num_jobs",
    "format_bar_series",
    "format_table",
    "geomean_over_benchmarks",
    "geomean_ratio",
    "grid_results",
    "load_results",
    "normalized_deadline_grid",
    "replicate_cell",
    "replicate_sweep",
    "result_record",
    "run_cell",
    "save_results",
    "single_cell_sweep",
    "wasted_work_by_scheduler",
]
