"""Experiment cells: one (benchmark, scheduler, arrival rate) simulation.

The paper's evaluation is a grid of such cells (8 benchmarks x 11
schedulers x 3 arrival rates); every figure and table slices this grid.
:func:`run_cell` runs one cell deterministically and memoises the result
in-process, so benches that share cells (Figure 6 / Figure 9 / Table 5 all
reuse the high-rate runs) pay for each simulation once.

``REPRO_NUM_JOBS`` (environment) overrides the per-benchmark job count —
the paper uses 128 (Section 5.3); smaller values give quicker, lower-
fidelity sweeps.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..config import DEFAULT_CONFIG, SimConfig
from ..errors import HarnessError
from ..metrics.collector import RunMetrics
from ..metrics.tracking import PredictionTracker
from ..schedulers.registry import make_scheduler
from ..sim.device import GPUSystem
from ..workloads.registry import benchmark_spec, build_workload

#: The paper simulates 128 jobs per benchmark (Section 5.3).
PAPER_NUM_JOBS = 128


def default_num_jobs() -> int:
    """Job count per cell; the REPRO_NUM_JOBS env var overrides 128."""
    value = os.environ.get("REPRO_NUM_JOBS")
    if value is None:
        return PAPER_NUM_JOBS
    count = int(value)
    if count <= 0:
        raise HarnessError("REPRO_NUM_JOBS must be positive")
    return count


@dataclass(frozen=True)
class ExperimentSpec:
    """Identity of one cell in the evaluation grid."""

    benchmark: str
    scheduler: str
    rate_level: str = "high"
    num_jobs: int = PAPER_NUM_JOBS
    seed: int = 1
    #: Extra scheduler-constructor arguments, e.g. the admission ablation:
    #: ``(("enable_admission", False),)``.  Tuple-of-pairs keeps the spec
    #: hashable.
    scheduler_args: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        from ..workloads.registry import validate_rate_level
        benchmark_spec(self.benchmark)  # validates the name
        validate_rate_level(self.rate_level)
        if self.num_jobs <= 0:
            raise HarnessError("num_jobs must be positive")

    def describe(self) -> str:
        """Human-readable cell label."""
        return (f"{self.benchmark}/{self.scheduler}"
                f"@{self.rate_level} n={self.num_jobs} seed={self.seed}")


@dataclass
class CellResult:
    """A cell's metrics plus scheduler-side diagnostics."""

    spec: ExperimentSpec
    metrics: RunMetrics
    diagnostics: Dict[str, object] = field(default_factory=dict)


_CACHE: Dict[Tuple[ExperimentSpec, int], CellResult] = {}


def clear_cache(persistent: bool = True) -> int:
    """Drop all memoised cell results.

    Also clears the persistent content-addressed result cache
    (:mod:`repro.harness.cache`) unless ``persistent=False``; returns
    the number of persistent entries removed.
    """
    _CACHE.clear()
    if not persistent:
        return 0
    from .cache import ResultCache
    try:
        return ResultCache().clear()
    except OSError:
        return 0


def run_cell(spec: ExperimentSpec,
             config: SimConfig = DEFAULT_CONFIG,
             tracker: Optional[PredictionTracker] = None,
             telemetry=None, validator=None, *, options=None) -> CellResult:
    """Run (or fetch) one experiment cell.

    Execution options may be given either as individual keywords or
    bundled in a :class:`~repro.harness.spec.RunOptions` (``options=``)
    — the form runner workers use; mixing both raises.

    Runs with a ``tracker``, a ``telemetry`` hub or a ``validator`` are
    never cached — all three accumulate state from the run they observe,
    so each caller gets a fresh simulation (and a cached result would
    carry no telemetry).  With a ``validator``
    (:class:`~repro.validation.invariants.InvariantChecker`), invariants
    are checked throughout the run and the post-run analytic oracles are
    swept; the checker's summary (plus any oracle failures) lands in the
    result's ``diagnostics["validation"]``.
    """
    if options is not None:
        if (config is not DEFAULT_CONFIG or tracker is not None
                or telemetry is not None or validator is not None):
            raise HarnessError(
                "pass either options= or individual config/tracker/"
                "telemetry/validator keywords, not both")
        config = options.config
        tracker = options.tracker
        telemetry = options.telemetry
        validator = options.build_validator()
    observed = (tracker is not None or telemetry is not None
                or validator is not None)
    key = (spec, id(config))
    if not observed:
        cached = _CACHE.get(key)
        if cached is not None:
            return cached
    kwargs = dict(spec.scheduler_args)
    if tracker is not None:
        if spec.scheduler != "LAX":
            raise HarnessError("prediction tracking is a LAX feature")
        kwargs["tracker"] = tracker
    policy = make_scheduler(spec.scheduler, **kwargs)
    jobs = build_workload(spec.benchmark, spec.rate_level,
                          num_jobs=spec.num_jobs, seed=spec.seed,
                          gpu=config.gpu)
    system = GPUSystem(policy, config, telemetry=telemetry,
                       validator=validator)
    system.submit_workload(jobs)
    metrics = system.run()
    diagnostics: Dict[str, object] = {
        "events_fired": system.sim.events_fired,
        "wgs_issued": system.dispatcher.wgs_issued,
        "wgs_preempted": system.dispatcher.wgs_preempted,
        "host_commands": system.host.commands_sent,
    }
    admission = getattr(policy, "admission", None)
    if admission is not None:
        diagnostics["admission_accepted"] = admission.accepted
        diagnostics["admission_rejected"] = admission.rejected
    if validator is not None:
        from ..validation.oracles import audit_run
        summary = validator.summary()
        summary["oracle_failures"] = audit_run(system, jobs, metrics)
        diagnostics["validation"] = summary
    result = CellResult(spec=spec, metrics=metrics, diagnostics=diagnostics)
    if not observed:
        _CACHE[key] = result
    return result


def deadline_counts(benchmark: str, schedulers, rate_level: str = "high",
                    num_jobs: Optional[int] = None, seed: int = 1,
                    config: SimConfig = DEFAULT_CONFIG,
                    runner=None) -> Dict[str, int]:
    """Jobs-meeting-deadline per scheduler for one benchmark/rate.

    Executes through the sweep :class:`~repro.harness.runner.Runner`
    (serial by default); pass ``runner=Runner(workers=N)`` to fan the
    schedulers out over worker processes.
    """
    from .runner import Runner
    from .spec import RunOptions, SweepSpec
    jobs = num_jobs if num_jobs is not None else default_num_jobs()
    sweep = SweepSpec(benchmarks=(benchmark,), schedulers=tuple(schedulers),
                      rate_levels=(rate_level,), seeds=(seed,),
                      num_jobs=jobs)
    active = runner if runner is not None else Runner(workers=1)
    outcome = active.run(sweep, RunOptions(config=config))
    outcome.raise_failures()
    return {spec.scheduler: result.metrics.jobs_meeting_deadline
            for spec, result in outcome.results.items()}
