"""Seed replication: running cells across seeds for robust comparisons.

The paper reports single runs with "randomly generated" arrival times;
anything this reproduction asserts about *shape* should survive a change
of seed.  :func:`replicate_sweep` runs every (benchmark, scheduler,
rate) combination of a :class:`~repro.harness.spec.SweepSpec` across
the sweep's seeds and aggregates the key metrics;
:func:`compare_sweep` determines whether one scheduler beats another
consistently across seeds (a sign-test-style criterion that makes no
distributional assumptions).

Both execute through the sweep :class:`~repro.harness.runner.Runner` —
serial by default, so behaviour matches the old in-process loops; pass
``runner=Runner(workers=N)`` to fan the seeds out over processes and
reuse the persistent result cache.  The pre-spec string-positional
entry points (:func:`replicate_cell`, :func:`compare_with_confidence`)
completed their deprecation cycle and now raise with a pointer to the
sweep API.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import HarnessError
from .spec import RunOptions, SweepSpec


@dataclass(frozen=True)
class ReplicatedMetric:
    """Mean/spread of one metric across seeds."""

    values: tuple

    @property
    def mean(self) -> float:
        """Mean across seeds."""
        return statistics.mean(self.values)

    @property
    def stdev(self) -> float:
        """Sample standard deviation (0 for a single seed)."""
        if len(self.values) < 2:
            return 0.0
        return statistics.stdev(self.values)

    @property
    def minimum(self) -> float:
        """Smallest per-seed value."""
        return min(self.values)

    @property
    def maximum(self) -> float:
        """Largest per-seed value."""
        return max(self.values)

    def describe(self) -> str:
        """``mean +/- stdev [min..max]`` rendering."""
        return (f"{self.mean:.1f} +/- {self.stdev:.1f} "
                f"[{self.minimum:.0f}..{self.maximum:.0f}]")


@dataclass(frozen=True)
class ReplicatedCell:
    """Aggregated outcome of one cell across seeds."""

    benchmark: str
    scheduler: str
    rate_level: str
    seeds: tuple
    deadline_met: ReplicatedMetric
    rejected: ReplicatedMetric
    wasted_fraction: ReplicatedMetric


def _default_runner(runner):
    if runner is not None:
        return runner
    from .runner import Runner
    return Runner(workers=1)


def replicate_sweep(sweep: SweepSpec,
                    options: Optional[RunOptions] = None,
                    runner=None) -> List[ReplicatedCell]:
    """Run ``sweep`` and aggregate each combination across its seeds.

    Returns one :class:`ReplicatedCell` per (benchmark, scheduler,
    rate) combination, in the sweep's deterministic order.  A
    ``RunOptions(validate=True)`` attaches a fresh
    :class:`~repro.validation.invariants.InvariantChecker` to every
    seed's run, so a whole replication sweep self-checks (any violation
    raises out of the sweep with its event context).
    """
    outcome = _default_runner(runner).run(
        sweep, options if options is not None else RunOptions())
    outcome.raise_failures()
    by_cell = outcome.results
    aggregated: List[ReplicatedCell] = []
    for benchmark in sweep.benchmarks:
        for scheduler in sweep.schedulers:
            for rate in sweep.rate_levels:
                met: List[float] = []
                rejected: List[float] = []
                wasted: List[float] = []
                for spec, result in by_cell.items():
                    if (spec.benchmark, spec.scheduler, spec.rate_level) \
                            != (benchmark, scheduler, rate):
                        continue
                    metrics = result.metrics
                    met.append(metrics.jobs_meeting_deadline)
                    rejected.append(metrics.jobs_rejected)
                    wasted.append(metrics.wasted_wg_fraction)
                aggregated.append(ReplicatedCell(
                    benchmark=benchmark, scheduler=scheduler,
                    rate_level=rate, seeds=tuple(sweep.seeds),
                    deadline_met=ReplicatedMetric(tuple(met)),
                    rejected=ReplicatedMetric(tuple(rejected)),
                    wasted_fraction=ReplicatedMetric(tuple(wasted))))
    return aggregated


def compare_sweep(sweep: SweepSpec,
                  options: Optional[RunOptions] = None,
                  runner=None) -> Dict[str, object]:
    """Per-seed win/loss duel between the sweep's two schedulers.

    The sweep must name exactly one benchmark, one rate level and two
    schedulers — the first is the challenger, the second the baseline.
    Returns the per-seed deadline-met pairs, the win count (ties count
    as half), and ``consistent`` — True when the challenger wins or
    ties on every seed.
    """
    if len(sweep.schedulers) != 2:
        raise HarnessError("compare_sweep needs exactly two schedulers "
                           "(challenger, baseline)")
    if len(sweep.benchmarks) != 1 or len(sweep.rate_levels) != 1:
        raise HarnessError("compare_sweep duels run on one benchmark at "
                           "one rate level")
    challenger, baseline = sweep.schedulers
    benchmark = sweep.benchmarks[0]
    outcome = _default_runner(runner).run(
        sweep, options if options is not None else RunOptions())
    outcome.raise_failures()
    met = {(spec.scheduler, spec.seed):
           result.metrics.jobs_meeting_deadline
           for spec, result in outcome.results.items()}
    pairs = []
    wins = 0.0
    for seed in sweep.seeds:
        a = met[(challenger, seed)]
        b = met[(baseline, seed)]
        pairs.append((seed, a, b))
        if a > b:
            wins += 1.0
        elif a == b:
            wins += 0.5
    return {
        "benchmark": benchmark,
        "challenger": challenger,
        "baseline": baseline,
        "pairs": pairs,
        "wins": wins,
        "num_seeds": len(sweep.seeds),
        "consistent": all(a >= b for _, a, b in pairs),
    }


# ----------------------------------------------------------------------
# Removed string-positional wrappers (deprecation cycle completed)
# ----------------------------------------------------------------------

def replicate_cell(*args: object, **kwargs: object) -> None:
    """Removed.  The PR-3 deprecation cycle is complete: build a
    :class:`SweepSpec` and call :func:`replicate_sweep` instead::

        replicate_sweep(SweepSpec(benchmarks=("IPV6",),
                                  schedulers=("LAX",), seeds=(1, 2, 3)),
                        RunOptions(validate=True))[0]
    """
    raise HarnessError(
        "replicate_cell(benchmark, scheduler, ...) was removed; build a "
        "SweepSpec and call replicate_sweep(sweep, RunOptions(...))")


def compare_with_confidence(*args: object, **kwargs: object) -> None:
    """Removed.  The PR-3 deprecation cycle is complete: build a
    two-scheduler :class:`SweepSpec` and call :func:`compare_sweep`
    instead::

        compare_sweep(SweepSpec(benchmarks=("IPV6",),
                                schedulers=("LAX", "RR"),
                                seeds=(1, 2, 3, 4, 5)))
    """
    raise HarnessError(
        "compare_with_confidence(benchmark, challenger, baseline, ...) was "
        "removed; build a SweepSpec and call compare_sweep(sweep, "
        "RunOptions(...))")
