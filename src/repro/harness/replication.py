"""Seed replication: running cells across seeds for robust comparisons.

The paper reports single runs with "randomly generated" arrival times;
anything this reproduction asserts about *shape* should survive a change
of seed.  :func:`replicate_cell` runs one (benchmark, scheduler, rate)
cell across several seeds and aggregates the key metrics;
:func:`compare_with_confidence` determines whether one scheduler beats
another consistently across seeds (a sign-test-style criterion that makes
no distributional assumptions).
"""

from __future__ import annotations

import dataclasses
import statistics
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..config import DEFAULT_CONFIG, SimConfig
from ..errors import HarnessError
from .experiment import ExperimentSpec, run_cell


@dataclass(frozen=True)
class ReplicatedMetric:
    """Mean/spread of one metric across seeds."""

    values: tuple

    @property
    def mean(self) -> float:
        """Mean across seeds."""
        return statistics.mean(self.values)

    @property
    def stdev(self) -> float:
        """Sample standard deviation (0 for a single seed)."""
        if len(self.values) < 2:
            return 0.0
        return statistics.stdev(self.values)

    @property
    def minimum(self) -> float:
        """Smallest per-seed value."""
        return min(self.values)

    @property
    def maximum(self) -> float:
        """Largest per-seed value."""
        return max(self.values)

    def describe(self) -> str:
        """``mean +/- stdev [min..max]`` rendering."""
        return (f"{self.mean:.1f} +/- {self.stdev:.1f} "
                f"[{self.minimum:.0f}..{self.maximum:.0f}]")


@dataclass(frozen=True)
class ReplicatedCell:
    """Aggregated outcome of one cell across seeds."""

    benchmark: str
    scheduler: str
    rate_level: str
    seeds: tuple
    deadline_met: ReplicatedMetric
    rejected: ReplicatedMetric
    wasted_fraction: ReplicatedMetric


def replicate_cell(benchmark: str, scheduler: str, rate_level: str = "high",
                   num_jobs: int = 64, seeds: Sequence[int] = (1, 2, 3),
                   config: SimConfig = DEFAULT_CONFIG,
                   validate: bool = False) -> ReplicatedCell:
    """Run one cell across ``seeds`` and aggregate its metrics.

    ``validate=True`` attaches a fresh
    :class:`~repro.validation.invariants.InvariantChecker` to every
    seed's run, so a whole replication sweep self-checks (any violation
    raises out of the sweep with its event context).
    """
    if not seeds:
        raise HarnessError("at least one seed required")
    met: List[float] = []
    rejected: List[float] = []
    wasted: List[float] = []
    for seed in seeds:
        spec = ExperimentSpec(benchmark=benchmark, scheduler=scheduler,
                              rate_level=rate_level, num_jobs=num_jobs,
                              seed=seed)
        validator = None
        if validate:
            from ..validation.invariants import InvariantChecker
            validator = InvariantChecker()
        metrics = run_cell(spec, config=config, validator=validator).metrics
        met.append(metrics.jobs_meeting_deadline)
        rejected.append(metrics.jobs_rejected)
        wasted.append(metrics.wasted_wg_fraction)
    return ReplicatedCell(
        benchmark=benchmark, scheduler=scheduler, rate_level=rate_level,
        seeds=tuple(seeds),
        deadline_met=ReplicatedMetric(tuple(met)),
        rejected=ReplicatedMetric(tuple(rejected)),
        wasted_fraction=ReplicatedMetric(tuple(wasted)))


def compare_with_confidence(benchmark: str, challenger: str, baseline: str,
                            rate_level: str = "high", num_jobs: int = 64,
                            seeds: Sequence[int] = (1, 2, 3, 4, 5),
                            config: SimConfig = DEFAULT_CONFIG,
                            validate: bool = False) -> Dict[str, object]:
    """Per-seed win/loss record of ``challenger`` vs ``baseline``.

    Returns the per-seed deadline-met pairs, the win count (ties count as
    half), and ``consistent`` — True when the challenger wins or ties on
    every seed.  ``validate=True`` runs every cell under a fresh invariant
    checker, as in :func:`replicate_cell`.
    """
    def _validator():
        if not validate:
            return None
        from ..validation.invariants import InvariantChecker
        return InvariantChecker()

    pairs = []
    wins = 0.0
    for seed in seeds:
        challenger_cell = run_cell(ExperimentSpec(
            benchmark=benchmark, scheduler=challenger,
            rate_level=rate_level, num_jobs=num_jobs, seed=seed),
            config=config, validator=_validator())
        baseline_cell = run_cell(ExperimentSpec(
            benchmark=benchmark, scheduler=baseline,
            rate_level=rate_level, num_jobs=num_jobs, seed=seed),
            config=config, validator=_validator())
        a = challenger_cell.metrics.jobs_meeting_deadline
        b = baseline_cell.metrics.jobs_meeting_deadline
        pairs.append((seed, a, b))
        if a > b:
            wins += 1.0
        elif a == b:
            wins += 0.5
    return {
        "benchmark": benchmark,
        "challenger": challenger,
        "baseline": baseline,
        "pairs": pairs,
        "wins": wins,
        "num_seeds": len(list(seeds)),
        "consistent": all(a >= b for _, a, b in pairs),
    }
