"""Seed replication: running cells across seeds for robust comparisons.

The paper reports single runs with "randomly generated" arrival times;
anything this reproduction asserts about *shape* should survive a change
of seed.  :func:`replicate_sweep` runs every (benchmark, scheduler,
rate) combination of a :class:`~repro.harness.spec.SweepSpec` across
the sweep's seeds and aggregates the key metrics;
:func:`compare_sweep` determines whether one scheduler beats another
consistently across seeds (a sign-test-style criterion that makes no
distributional assumptions).

Both execute through the sweep :class:`~repro.harness.runner.Runner` —
serial by default, so behaviour matches the old in-process loops; pass
``runner=Runner(workers=N)`` to fan the seeds out over processes and
reuse the persistent result cache.  The pre-spec string-positional
entry points (:func:`replicate_cell`, :func:`compare_with_confidence`)
remain as thin deprecated wrappers.
"""

from __future__ import annotations

import statistics
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..config import DEFAULT_CONFIG, SimConfig
from ..errors import HarnessError
from .spec import RunOptions, SweepSpec


@dataclass(frozen=True)
class ReplicatedMetric:
    """Mean/spread of one metric across seeds."""

    values: tuple

    @property
    def mean(self) -> float:
        """Mean across seeds."""
        return statistics.mean(self.values)

    @property
    def stdev(self) -> float:
        """Sample standard deviation (0 for a single seed)."""
        if len(self.values) < 2:
            return 0.0
        return statistics.stdev(self.values)

    @property
    def minimum(self) -> float:
        """Smallest per-seed value."""
        return min(self.values)

    @property
    def maximum(self) -> float:
        """Largest per-seed value."""
        return max(self.values)

    def describe(self) -> str:
        """``mean +/- stdev [min..max]`` rendering."""
        return (f"{self.mean:.1f} +/- {self.stdev:.1f} "
                f"[{self.minimum:.0f}..{self.maximum:.0f}]")


@dataclass(frozen=True)
class ReplicatedCell:
    """Aggregated outcome of one cell across seeds."""

    benchmark: str
    scheduler: str
    rate_level: str
    seeds: tuple
    deadline_met: ReplicatedMetric
    rejected: ReplicatedMetric
    wasted_fraction: ReplicatedMetric


def _default_runner(runner):
    if runner is not None:
        return runner
    from .runner import Runner
    return Runner(workers=1)


def replicate_sweep(sweep: SweepSpec,
                    options: Optional[RunOptions] = None,
                    runner=None) -> List[ReplicatedCell]:
    """Run ``sweep`` and aggregate each combination across its seeds.

    Returns one :class:`ReplicatedCell` per (benchmark, scheduler,
    rate) combination, in the sweep's deterministic order.  A
    ``RunOptions(validate=True)`` attaches a fresh
    :class:`~repro.validation.invariants.InvariantChecker` to every
    seed's run, so a whole replication sweep self-checks (any violation
    raises out of the sweep with its event context).
    """
    outcome = _default_runner(runner).run(
        sweep, options if options is not None else RunOptions())
    outcome.raise_failures()
    by_cell = outcome.results
    aggregated: List[ReplicatedCell] = []
    for benchmark in sweep.benchmarks:
        for scheduler in sweep.schedulers:
            for rate in sweep.rate_levels:
                met: List[float] = []
                rejected: List[float] = []
                wasted: List[float] = []
                for spec, result in by_cell.items():
                    if (spec.benchmark, spec.scheduler, spec.rate_level) \
                            != (benchmark, scheduler, rate):
                        continue
                    metrics = result.metrics
                    met.append(metrics.jobs_meeting_deadline)
                    rejected.append(metrics.jobs_rejected)
                    wasted.append(metrics.wasted_wg_fraction)
                aggregated.append(ReplicatedCell(
                    benchmark=benchmark, scheduler=scheduler,
                    rate_level=rate, seeds=tuple(sweep.seeds),
                    deadline_met=ReplicatedMetric(tuple(met)),
                    rejected=ReplicatedMetric(tuple(rejected)),
                    wasted_fraction=ReplicatedMetric(tuple(wasted))))
    return aggregated


def compare_sweep(sweep: SweepSpec,
                  options: Optional[RunOptions] = None,
                  runner=None) -> Dict[str, object]:
    """Per-seed win/loss duel between the sweep's two schedulers.

    The sweep must name exactly one benchmark, one rate level and two
    schedulers — the first is the challenger, the second the baseline.
    Returns the per-seed deadline-met pairs, the win count (ties count
    as half), and ``consistent`` — True when the challenger wins or
    ties on every seed.
    """
    if len(sweep.schedulers) != 2:
        raise HarnessError("compare_sweep needs exactly two schedulers "
                           "(challenger, baseline)")
    if len(sweep.benchmarks) != 1 or len(sweep.rate_levels) != 1:
        raise HarnessError("compare_sweep duels run on one benchmark at "
                           "one rate level")
    challenger, baseline = sweep.schedulers
    benchmark = sweep.benchmarks[0]
    outcome = _default_runner(runner).run(
        sweep, options if options is not None else RunOptions())
    outcome.raise_failures()
    met = {(spec.scheduler, spec.seed):
           result.metrics.jobs_meeting_deadline
           for spec, result in outcome.results.items()}
    pairs = []
    wins = 0.0
    for seed in sweep.seeds:
        a = met[(challenger, seed)]
        b = met[(baseline, seed)]
        pairs.append((seed, a, b))
        if a > b:
            wins += 1.0
        elif a == b:
            wins += 0.5
    return {
        "benchmark": benchmark,
        "challenger": challenger,
        "baseline": baseline,
        "pairs": pairs,
        "wins": wins,
        "num_seeds": len(sweep.seeds),
        "consistent": all(a >= b for _, a, b in pairs),
    }


# ----------------------------------------------------------------------
# Deprecated string-positional wrappers
# ----------------------------------------------------------------------

def replicate_cell(benchmark: str, scheduler: str, rate_level: str = "high",
                   num_jobs: int = 64, seeds: Sequence[int] = (1, 2, 3),
                   config: SimConfig = DEFAULT_CONFIG,
                   validate: bool = False) -> ReplicatedCell:
    """Deprecated: build a :class:`SweepSpec` and call
    :func:`replicate_sweep` instead."""
    warnings.warn(
        "replicate_cell(benchmark, scheduler, ...) is deprecated; build a "
        "SweepSpec and call replicate_sweep(sweep, RunOptions(...))",
        DeprecationWarning, stacklevel=2)
    if not seeds:
        raise HarnessError("at least one seed required")
    sweep = SweepSpec(benchmarks=(benchmark,), schedulers=(scheduler,),
                      rate_levels=(rate_level,), seeds=tuple(seeds),
                      num_jobs=num_jobs)
    options = RunOptions(config=config, validate=validate)
    return replicate_sweep(sweep, options)[0]


def compare_with_confidence(benchmark: str, challenger: str, baseline: str,
                            rate_level: str = "high", num_jobs: int = 64,
                            seeds: Sequence[int] = (1, 2, 3, 4, 5),
                            config: SimConfig = DEFAULT_CONFIG,
                            validate: bool = False) -> Dict[str, object]:
    """Deprecated: build a :class:`SweepSpec` and call
    :func:`compare_sweep` instead."""
    warnings.warn(
        "compare_with_confidence(benchmark, challenger, baseline, ...) is "
        "deprecated; build a SweepSpec and call compare_sweep(sweep, "
        "RunOptions(...))",
        DeprecationWarning, stacklevel=2)
    if not seeds:
        raise HarnessError("at least one seed required")
    sweep = SweepSpec(benchmarks=(benchmark,),
                      schedulers=(challenger, baseline),
                      rate_levels=(rate_level,), seeds=tuple(seeds),
                      num_jobs=num_jobs)
    options = RunOptions(config=config, validate=validate)
    return compare_sweep(sweep, options)
