"""Sweep and run specifications: the harness' declarative surface.

A :class:`SweepSpec` names a grid of experiment cells — the cross
product of benchmarks x schedulers x arrival rates x seeds the paper's
figures are built from — without running anything.  A
:class:`RunOptions` collects everything about *how* cells run (config,
validation, telemetry sinks) that is not part of a cell's identity.
:class:`repro.harness.runner.Runner` consumes both; surviving
string-positional helpers (``deadline_counts``) are thin forwards
onto this surface, and the removed ones (``replicate_cell``,
``compare_with_confidence``) raise with a pointer here.

Keeping identity (:class:`~repro.harness.experiment.ExperimentSpec`,
enumerated by :meth:`SweepSpec.cells`) separate from execution policy
(:class:`RunOptions`) is what lets the runner fan cells out to worker
processes and content-address their results: a cell's cache key is a
digest of its spec plus the config, never of the sinks observing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..config import DEFAULT_CONFIG, SimConfig
from ..errors import HarnessError
from .experiment import ExperimentSpec

#: Default jobs per cell for replication sweeps (smaller than the
#: paper's 128 because sweeps multiply cells by seeds).
SWEEP_NUM_JOBS = 64


def _as_tuple(value) -> tuple:
    if isinstance(value, str):
        return (value,)
    return tuple(value)


@dataclass(frozen=True)
class SweepSpec:
    """A grid of experiment cells: benchmarks x schedulers x rates x seeds.

    The grid is declarative — building a spec validates the names but
    runs nothing.  :meth:`cells` enumerates the concrete
    :class:`~repro.harness.experiment.ExperimentSpec` cells in a fixed,
    deterministic order (benchmark-major, then scheduler, rate, seed),
    which is the order every :class:`~repro.harness.runner.Runner`
    reports results in regardless of worker completion order.
    """

    benchmarks: Tuple[str, ...]
    schedulers: Tuple[str, ...]
    rate_levels: Tuple[str, ...] = ("high",)
    seeds: Tuple[int, ...] = (1,)
    num_jobs: int = SWEEP_NUM_JOBS
    #: Extra scheduler-constructor arguments applied to every cell,
    #: tuple-of-pairs as in :class:`ExperimentSpec`.
    scheduler_args: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        for name in ("benchmarks", "schedulers", "rate_levels", "seeds"):
            object.__setattr__(self, name, _as_tuple(getattr(self, name)))
            if not getattr(self, name):
                raise HarnessError(f"SweepSpec.{name} must be non-empty")
        from ..errors import WorkloadError
        from ..schedulers.registry import scheduler_names
        from ..workloads.registry import benchmark_spec, validate_rate_level
        for benchmark in self.benchmarks:
            benchmark_spec(benchmark)  # validates the name
        known = set(scheduler_names())
        for scheduler in self.schedulers:
            if scheduler not in known:
                raise HarnessError(
                    f"unknown scheduler {scheduler!r}; known: "
                    f"{', '.join(sorted(known))}")
        for rate in self.rate_levels:
            # Named levels plus x<multiplier> load-sweep levels.
            try:
                validate_rate_level(rate)
            except WorkloadError as exc:
                raise HarnessError(str(exc))
        if self.num_jobs <= 0:
            raise HarnessError("SweepSpec.num_jobs must be positive")

    def __len__(self) -> int:
        return (len(self.benchmarks) * len(self.schedulers)
                * len(self.rate_levels) * len(self.seeds))

    def __iter__(self) -> Iterator[ExperimentSpec]:
        return iter(self.cells())

    def cells(self) -> List[ExperimentSpec]:
        """All cells of the grid, in deterministic sweep order."""
        return [
            ExperimentSpec(benchmark=benchmark, scheduler=scheduler,
                           rate_level=rate, num_jobs=self.num_jobs,
                           seed=seed, scheduler_args=self.scheduler_args)
            for benchmark in self.benchmarks
            for scheduler in self.schedulers
            for rate in self.rate_levels
            for seed in self.seeds
        ]

    def describe(self) -> str:
        """Human-readable one-line summary of the grid."""
        return (f"{len(self.benchmarks)} benchmark(s) x "
                f"{len(self.schedulers)} scheduler(s) x "
                f"{len(self.rate_levels)} rate(s) x "
                f"{len(self.seeds)} seed(s) = {len(self)} cells "
                f"(n={self.num_jobs})")


@dataclass
class RunOptions:
    """How cells execute: config plus observation/validation sinks.

    The first three sink fields hold live objects that accumulate state
    from the run they observe; they only make sense for in-process
    (serial) execution and force the cell to run fresh rather than be
    served from any cache.  ``validate`` is the process-safe variant:
    each cell gets a *fresh*
    :class:`~repro.validation.invariants.InvariantChecker`, so it works
    across pool workers and participates in result caching (the flag is
    part of the cache key — a validated result never masquerades as an
    unvalidated one, or vice versa).
    """

    config: SimConfig = field(default_factory=lambda: DEFAULT_CONFIG)
    #: LAX prediction tracker (in-process runs only).
    tracker: Optional[object] = None
    #: Telemetry hub observing the run (in-process runs only).
    telemetry: Optional[object] = None
    #: Pre-built invariant checker (in-process runs only).
    validator: Optional[object] = None
    #: Attach a fresh invariant checker per cell (pool-safe).
    validate: bool = False

    @property
    def has_live_sinks(self) -> bool:
        """Whether any in-process-only observer object is attached."""
        return (self.tracker is not None or self.telemetry is not None
                or self.validator is not None)

    def build_validator(self):
        """The validator for one cell run: explicit, fresh, or None."""
        if self.validator is not None:
            return self.validator
        if self.validate:
            from ..validation import InvariantChecker
            return InvariantChecker()
        return None


def single_cell_sweep(spec: ExperimentSpec) -> SweepSpec:
    """Wrap one cell's identity as a one-cell sweep."""
    return SweepSpec(benchmarks=(spec.benchmark,),
                     schedulers=(spec.scheduler,),
                     rate_levels=(spec.rate_level,),
                     seeds=(spec.seed,),
                     num_jobs=spec.num_jobs,
                     scheduler_args=spec.scheduler_args)
