"""The sweep engine: parallel cell execution with deterministic output.

:class:`Runner` executes every cell of a
:class:`~repro.harness.spec.SweepSpec` and returns a
:class:`SweepOutcome` whose results are keyed and ordered by cell
identity, never by completion order — a sweep run on eight workers is
bit-identical to the same sweep run serially (``workers=1``), because
each cell is an independent deterministic simulation and the assembly
step sorts by the sweep's own cell order.

Execution layers, outermost first:

1. **Persistent cache** (:class:`~repro.harness.cache.ResultCache`):
   cells whose content digest is already stored are served without
   touching a worker.  ``refresh=True`` recomputes and overwrites;
   ``cache=False`` bypasses the store entirely.
2. **Process pool** (``workers > 1``): cache misses fan out over a
   ``ProcessPoolExecutor``.  A worker failure never aborts the sweep —
   exceptions, invariant violations, timeouts and hard worker crashes
   are captured as structured :class:`CellFailure` records while the
   remaining cells keep running.  After a pool breaks (a worker died),
   the unfinished cells re-run isolated one-per-pool so a single
   crashing cell cannot take healthy neighbours down with it.
3. **In-process serial** (``workers=1``): cells run through
   :func:`~repro.harness.experiment.run_cell` in sweep order.  This is
   the only mode that supports live observer objects (telemetry hub,
   prediction tracker, pre-built validator) since those cannot cross a
   process boundary; ``RunOptions.validate`` works in every mode.

Progress is reported through the existing telemetry layer: pass a
:class:`~repro.telemetry.TelemetryHub` and the runner maintains
``repro_sweep_*`` instruments in its metrics registry; pass an
``on_progress`` callback for line-by-line reporting (the CLI does).
"""

from __future__ import annotations

import concurrent.futures
import os
import time
import traceback as traceback_module
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import HarnessError
from ..config import SimConfig
from .cache import ResultCache
from .experiment import CellResult, ExperimentSpec, run_cell
from .spec import RunOptions, SweepSpec

#: ``on_progress(done, total, spec, source)`` with source one of
#: ``"cache"``, ``"run"``, ``"failed"``.
ProgressCallback = Callable[[int, int, ExperimentSpec, str], None]


@dataclass
class CellFailure:
    """Structured record of one cell that did not produce a result."""

    spec: ExperimentSpec
    #: ``"error"`` (exception in the simulation), ``"invariant"``
    #: (validation violation), ``"timeout"`` or ``"crash"`` (worker
    #: process died).
    kind: str
    message: str
    attempts: int = 1
    traceback: str = ""
    #: Invariant violations carry their structured event context here.
    context: Dict[str, object] = field(default_factory=dict)
    #: The original exception object — only populated for in-process
    #: (serial) execution; never crosses a process boundary.
    exception: Optional[BaseException] = None

    def describe(self) -> str:
        """One-line rendering for logs and error messages."""
        return f"{self.spec.describe()}: {self.kind}: {self.message}"


@dataclass
class SweepOutcome:
    """Everything one sweep produced, in deterministic cell order."""

    sweep: SweepSpec
    #: Successful cells, keyed by spec in ``sweep.cells()`` order.
    results: Dict[ExperimentSpec, CellResult]
    #: Failed cells, keyed by spec in ``sweep.cells()`` order.
    failures: Dict[ExperimentSpec, CellFailure]
    workers: int
    wall_seconds: float
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def ok(self) -> bool:
        """Whether every cell produced a result."""
        return not self.failures

    def raise_failures(self) -> None:
        """Re-raise the first failure (serial) or raise a summary.

        Serial failures carry the original exception and re-raise it
        unchanged, preserving pre-runner control flow (e.g. an
        ``InvariantViolation`` escaping a validated replication sweep).
        """
        if not self.failures:
            return
        first = next(iter(self.failures.values()))
        if first.exception is not None:
            raise first.exception
        lines = "; ".join(f.describe() for f in self.failures.values())
        raise HarnessError(f"{len(self.failures)} cell(s) failed: {lines}")

    def records(self) -> List[Dict[str, object]]:
        """Flat JSON-ready records for every successful cell, in order.

        This is the canonical aggregated form for bit-identity checks:
        serialising these records must give the same bytes whether the
        sweep ran serially or across workers.
        """
        from .artifacts import result_record
        return [result_record(result) for result in self.results.values()]

    def describe(self) -> str:
        """One-line sweep summary (the CLI prints this)."""
        computed = max(0, len(self.results) - self.cache_hits)
        return (f"sweep: {len(self.sweep)} cells, {computed} computed, "
                f"{self.cache_hits} cached, {len(self.failures)} failed "
                f"(workers={self.workers}, {self.wall_seconds:.2f}s)")


def _pool_worker(spec: ExperimentSpec, config: SimConfig,
                 validate: bool,
                 modes_state: Optional[dict] = None) -> Tuple[str, object]:
    """Run one cell in a worker process; never raises.

    Returns a picklable ``(status, payload)`` pair: ``("ok",
    CellResult)`` on success, otherwise a failure-kind tag plus a
    context dict.  Exceptions are flattened here because exception
    classes with rich constructors (e.g. ``InvariantViolation``) do not
    round-trip through pickle reliably.

    ``modes_state`` is the parent's :func:`repro.sim.modes.snapshot`;
    a fresh interpreter starts from the class-attribute defaults, so
    without re-applying it a sweep launched under ``engine_mode(False)``
    (or any partial flag set) would silently run its cells optimized.
    """
    try:
        if modes_state is not None:
            from ..sim import modes as _modes
            _modes.apply(modes_state)
        validator = None
        if validate:
            from ..validation import InvariantChecker
            validator = InvariantChecker()
        result = run_cell(spec, config=config, validator=validator)
        return ("ok", result)
    except BaseException as exc:  # noqa: BLE001 - converted to data
        from ..validation import InvariantViolation
        if isinstance(exc, InvariantViolation):
            return ("invariant", {
                "message": str(exc),
                "invariant": exc.invariant,
                "time": exc.time,
                "context": dict(exc.context),
            })
        return ("error", {
            "message": f"{type(exc).__name__}: {exc}",
            "traceback": traceback_module.format_exc(),
        })


class Runner:
    """Executes sweeps: cache first, then workers, deterministic output.

    Parameters
    ----------
    workers:
        Process count for cache misses; ``None`` means
        ``os.cpu_count()``.  ``1`` executes in-process (no pool).
    cache / cache_dir / refresh:
        Persistent result cache controls.  ``cache=False`` disables the
        store; ``refresh=True`` ignores stored results but rewrites
        them from the fresh runs.
    timeout:
        Per-cell wall-clock budget in seconds (pool mode only; serial
        cells cannot be preempted).  A timed-out cell becomes a
        ``CellFailure(kind="timeout")`` and its worker process is
        terminated at the end of the sweep.
    retries:
        Extra attempts granted to cells whose worker *crashed* (died
        without returning).  Deterministic in-simulation exceptions are
        not retried — the same inputs would fail the same way.
    telemetry:
        Optional :class:`~repro.telemetry.TelemetryHub`; the runner
        keeps ``repro_sweep_*`` gauges/counters in its registry.
    on_progress:
        Optional callback invoked per finished cell.
    """

    def __init__(self, workers: Optional[int] = None, cache: bool = True,
                 cache_dir: Optional[str] = None, refresh: bool = False,
                 timeout: Optional[float] = None, retries: int = 1,
                 telemetry=None,
                 on_progress: Optional[ProgressCallback] = None) -> None:
        resolved = workers if workers is not None else (os.cpu_count() or 1)
        if resolved < 1:
            raise HarnessError("Runner workers must be >= 1")
        if retries < 0:
            raise HarnessError("Runner retries must be >= 0")
        self.workers = resolved
        self.cache_enabled = cache
        self.cache = ResultCache(cache_dir) if cache else None
        self.refresh = refresh
        self.timeout = timeout
        self.retries = retries
        self.telemetry = telemetry
        self.on_progress = on_progress

    # ------------------------------------------------------------------

    def run(self, sweep: SweepSpec,
            options: Optional[RunOptions] = None) -> SweepOutcome:
        """Execute every cell of ``sweep`` and assemble the outcome."""
        options = options if options is not None else RunOptions()
        if self.workers > 1 and options.has_live_sinks:
            raise HarnessError(
                "telemetry hubs, trackers and pre-built validators are "
                "in-process observers; run them with workers=1 or use "
                "RunOptions.validate for pool-safe validation")
        cells = sweep.cells()
        started = time.perf_counter()
        progress = self._progress_instruments(len(cells))

        results: Dict[ExperimentSpec, CellResult] = {}
        failures: Dict[ExperimentSpec, CellFailure] = {}
        cache_hits = 0
        # Live observer objects accumulate state from the run they
        # watch; a cached replay would leave them blind, so those runs
        # bypass the store in both directions.
        cacheable = self.cache is not None and not options.has_live_sinks
        todo: List[ExperimentSpec] = []
        if cacheable and not self.refresh:
            for spec in cells:
                cached = self.cache.get(spec, options.config,
                                        options.validate)
                if cached is not None:
                    results[spec] = cached
                    cache_hits += 1
                    self._report(progress, len(results) + len(failures),
                                 len(cells), spec, "cache")
                else:
                    todo.append(spec)
        else:
            todo = list(cells)

        if todo:
            if self.workers == 1:
                run_results, run_failures = self._run_serial(
                    todo, options, progress, len(cells),
                    done=len(results) + len(failures))
            else:
                run_results, run_failures = self._run_pool(
                    todo, options, progress, len(cells),
                    done=len(results) + len(failures))
            results.update(run_results)
            failures.update(run_failures)
            if cacheable:
                for spec, result in run_results.items():
                    self.cache.put(spec, options.config, result,
                                   options.validate)

        ordered_results = {spec: results[spec] for spec in cells
                           if spec in results}
        ordered_failures = {spec: failures[spec] for spec in cells
                            if spec in failures}
        outcome = SweepOutcome(
            sweep=sweep, results=ordered_results,
            failures=ordered_failures, workers=self.workers,
            wall_seconds=time.perf_counter() - started,
            cache_hits=cache_hits, cache_misses=len(todo))
        self._finish_instruments(progress, outcome)
        return outcome

    def run_cell(self, spec: ExperimentSpec,
                 options: Optional[RunOptions] = None) -> CellResult:
        """Run a single cell through the cache/runner stack.

        Failures propagate as exceptions (serial mode re-raises the
        original; pool mode raises :class:`HarnessError` with the
        structured context), making this a drop-in cached variant of
        :func:`~repro.harness.experiment.run_cell`.
        """
        from .spec import single_cell_sweep
        outcome = self.run(single_cell_sweep(spec), options)
        outcome.raise_failures()
        return next(iter(outcome.results.values()))

    # ------------------------------------------------------------------
    # Serial execution
    # ------------------------------------------------------------------

    def _run_serial(self, todo, options, progress, total, done):
        results: Dict[ExperimentSpec, CellResult] = {}
        failures: Dict[ExperimentSpec, CellFailure] = {}
        for spec in todo:
            try:
                results[spec] = run_cell(
                    spec, config=options.config, tracker=options.tracker,
                    telemetry=options.telemetry,
                    validator=options.build_validator())
                done += 1
                self._report(progress, done, total, spec, "run")
            except Exception as exc:  # noqa: BLE001 - captured per cell
                failures[spec] = self._failure_from_exception(spec, exc)
                done += 1
                self._report(progress, done, total, spec, "failed")
        return results, failures

    @staticmethod
    def _failure_from_exception(spec, exc) -> CellFailure:
        from ..validation import InvariantViolation
        if isinstance(exc, InvariantViolation):
            return CellFailure(
                spec=spec, kind="invariant", message=str(exc),
                context=dict(exc.context), exception=exc)
        return CellFailure(
            spec=spec, kind="error",
            message=f"{type(exc).__name__}: {exc}",
            traceback=traceback_module.format_exc(), exception=exc)

    # ------------------------------------------------------------------
    # Pool execution
    # ------------------------------------------------------------------

    def _run_pool(self, todo, options, progress, total, done):
        results: Dict[ExperimentSpec, CellResult] = {}
        failures: Dict[ExperimentSpec, CellFailure] = {}
        attempts = {spec: 1 for spec in todo}
        base = done  # cells already accounted for (cache hits)
        survivors = self._pool_round(todo, options, results, failures,
                                     attempts, progress, total, base)
        # A broken pool leaves survivors unattributed: re-run each in
        # its own single-worker pool so only the genuinely crashing
        # cell fails its retry budget.
        while survivors:
            spec = survivors.pop(0)
            if attempts[spec] > self.retries:
                failures[spec] = CellFailure(
                    spec=spec, kind="crash",
                    message="worker process died before returning a result",
                    attempts=attempts[spec])
                self._report(progress, base + len(results) + len(failures),
                             total, spec, "failed")
                continue
            attempts[spec] += 1
            leftover = self._pool_round(
                [spec], options, results, failures, attempts, progress,
                total, base + len(results) + len(failures), isolate=True)
            survivors = leftover + survivors
        return results, failures

    def _pool_round(self, todo, options, results, failures, attempts,
                    progress, total, done, isolate=False):
        """One executor's worth of cells; returns crash survivors."""
        max_workers = 1 if isolate else min(self.workers, len(todo))
        executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers)
        from ..sim import modes as _modes
        modes_state = _modes.snapshot()
        futures = [(executor.submit(_pool_worker, spec, options.config,
                                    options.validate, modes_state), spec)
                   for spec in todo]
        survivors: List[ExperimentSpec] = []
        timed_out = False
        broken = False
        for future, spec in futures:
            try:
                status, payload = future.result(timeout=self.timeout)
            except concurrent.futures.TimeoutError:
                future.cancel()
                failures[spec] = CellFailure(
                    spec=spec, kind="timeout",
                    message=(f"cell exceeded the {self.timeout:.1f}s "
                             "per-cell budget"),
                    attempts=attempts[spec])
                timed_out = True
                done += 1
                self._report(progress, done, total, spec, "failed")
                continue
            except (BrokenProcessPool, EOFError, OSError):
                broken = True
                survivors.append(spec)
                continue
            if status == "ok":
                results[spec] = payload
                done += 1
                self._report(progress, done, total, spec, "run")
            elif status == "invariant":
                failures[spec] = CellFailure(
                    spec=spec, kind="invariant",
                    message=payload["message"],
                    attempts=attempts[spec],
                    context=dict(payload.get("context", {})))
                done += 1
                self._report(progress, done, total, spec, "failed")
            else:
                failures[spec] = CellFailure(
                    spec=spec, kind="error", message=payload["message"],
                    attempts=attempts[spec],
                    traceback=payload.get("traceback", ""))
                done += 1
                self._report(progress, done, total, spec, "failed")
        self._shutdown(executor, kill=timed_out or broken)
        return survivors

    @staticmethod
    def _shutdown(executor, kill: bool) -> None:
        """Tear an executor down without hanging on stuck workers."""
        if not kill:
            executor.shutdown(wait=True)
            return
        # shutdown() drops its process table, so grab it first — the
        # stuck/dead workers must be terminated, not waited on.
        processes = list((getattr(executor, "_processes", None) or {})
                         .values())
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except TypeError:  # pragma: no cover - pre-3.9 signature
            executor.shutdown(wait=False)
        for process in processes:
            try:
                process.terminate()
            except (OSError, AttributeError):  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    # Progress reporting
    # ------------------------------------------------------------------

    def _progress_instruments(self, total: int):
        if self.telemetry is None:
            return None
        registry = self.telemetry.registry
        instruments = {
            "total": registry.gauge(
                "sweep_cells", "Cells in the current sweep"),
            "completed": registry.counter(
                "sweep_cells_completed_total",
                "Sweep cells finished (cached, computed or failed)"),
            "cache_hits": registry.counter(
                "sweep_cache_hits_total",
                "Sweep cells served from the persistent result cache"),
            "failures": registry.counter(
                "sweep_cell_failures_total",
                "Sweep cells that ended in a structured failure"),
        }
        instruments["total"].set(total)
        return instruments

    def _report(self, instruments, done, total, spec, source) -> None:
        if instruments is not None:
            instruments["completed"].inc()
            if source == "cache":
                instruments["cache_hits"].inc()
            elif source == "failed":
                instruments["failures"].inc()
        if self.on_progress is not None:
            self.on_progress(done, total, spec, source)

    @staticmethod
    def _finish_instruments(instruments, outcome) -> None:
        if instruments is None:
            return
        instruments["total"].set(len(outcome.sweep))
