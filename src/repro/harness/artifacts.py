"""Artifact export: the whole evaluation grid as machine-readable JSON.

``pytest benchmarks/`` prints the paper's tables; this module produces the
same data as a structured artifact for notebooks, plotting scripts, or
regression tracking:

    from repro.harness.artifacts import collect_results, save_results
    results = collect_results(num_jobs=64)       # ~a minute
    save_results(results, "results.json")

Each record carries the cell identity (benchmark, scheduler, rate, jobs,
seed) and the metrics every figure/table consumes.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from ..config import DEFAULT_CONFIG, SimConfig
from ..schedulers.registry import PAPER_SCHEDULERS
from ..units import to_ms
from ..workloads.registry import BENCHMARK_ORDER, RATE_LEVELS
from .experiment import ExperimentSpec, default_num_jobs, run_cell


def result_record(result: "CellResult") -> Dict:
    """Flatten an already-computed cell result into a JSON-ready record."""
    spec = result.spec
    metrics = result.metrics
    p99 = metrics.p99_latency_ticks
    return {
        "benchmark": spec.benchmark,
        "scheduler": spec.scheduler,
        "rate_level": spec.rate_level,
        "num_jobs": spec.num_jobs,
        "seed": spec.seed,
        "jobs_meeting_deadline": metrics.jobs_meeting_deadline,
        "jobs_rejected": metrics.jobs_rejected,
        "deadline_ratio": metrics.deadline_ratio,
        "successful_throughput_jobs_per_s": metrics.successful_throughput,
        "p99_latency_ms": to_ms(int(p99)) if p99 is not None else None,
        "energy_per_successful_job_mj":
            metrics.energy_per_successful_job_mj,
        "wasted_wg_fraction": metrics.wasted_wg_fraction,
        "makespan_ms": to_ms(metrics.makespan_ticks),
        "wg_completions": metrics.wg_completions,
        "wgs_preempted": metrics.wgs_preempted,
    }


def cell_record(spec: ExperimentSpec,
                config: SimConfig = DEFAULT_CONFIG) -> Dict:
    """Run one cell and flatten its metrics into a JSON-ready record."""
    return result_record(run_cell(spec, config=config))


def collect_results(benchmarks: Sequence[str] = BENCHMARK_ORDER,
                    schedulers: Sequence[str] = PAPER_SCHEDULERS,
                    rate_levels: Sequence[str] = ("high",),
                    num_jobs: Optional[int] = None, seed: int = 1,
                    config: SimConfig = DEFAULT_CONFIG,
                    workers: Optional[int] = 1,
                    runner=None) -> List[Dict]:
    """Run a benchmark x scheduler x rate grid and collect records.

    Executes through the sweep :class:`~repro.harness.runner.Runner`:
    serial by default, ``workers=N`` (or an explicit ``runner=``) fans
    the grid out over worker processes with the persistent result
    cache in front.  Record order follows the sweep's deterministic
    cell order regardless of worker scheduling.
    """
    from .runner import Runner
    from .spec import RunOptions, SweepSpec
    jobs = num_jobs if num_jobs is not None else default_num_jobs()
    sweep = SweepSpec(benchmarks=tuple(benchmarks),
                      schedulers=tuple(schedulers),
                      rate_levels=tuple(rate_levels), seeds=(seed,),
                      num_jobs=jobs)
    active = runner if runner is not None else Runner(workers=workers)
    outcome = active.run(sweep, RunOptions(config=config))
    outcome.raise_failures()
    return outcome.records()


def save_results(records: List[Dict], path: str) -> int:
    """Write collected records to a JSON file; returns the record count."""
    payload = {"format": "repro-results-v1", "records": records}
    with open(path, "w", encoding="utf-8") as sink:
        json.dump(payload, sink, indent=1)
    return len(records)


def load_results(path: str) -> List[Dict]:
    """Read back a results file written by :func:`save_results`."""
    with open(path, encoding="utf-8") as source:
        payload = json.load(source)
    if payload.get("format") != "repro-results-v1":
        raise ValueError(f"unsupported results format in {path}")
    return payload["records"]
