"""Plain-text rendering of tables and figure series.

The benches print the same rows/series the paper's tables and figures
report; these helpers keep the output aligned and consistent.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table."""
    cells = [[_stringify(value) for value in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in cells:
        lines.append("  ".join(value.ljust(widths[i])
                               for i, value in enumerate(row)))
    return "\n".join(lines)


def format_bar_series(labels: Sequence[str], values: Sequence[float],
                      width: int = 40, title: Optional[str] = None) -> str:
    """Render a horizontal bar chart (one figure series)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    peak = max((v for v in values if v > 0), default=1.0)
    label_width = max((len(label) for label in labels), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(width * value / peak))
        lines.append(f"{label.ljust(label_width)}  {value:8.3f}  {bar}")
    return "\n".join(lines)


def _stringify(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000:
            return f"{value:.0f}"
        if magnitude >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
