"""Persistent content-addressed result cache for experiment cells.

Cell results are stored on disk under a digest of everything that can
change them:

* the cell identity (:class:`~repro.harness.experiment.ExperimentSpec`
  fields: benchmark, scheduler, rate, job count, seed, scheduler args);
* the full :class:`~repro.config.SimConfig` (flattened to a dict, so
  changing any field — even a nested ``GPUConfig`` knob — is a miss);
* the package version (``repro.__version__``), guarding against
  version skew between the writer and the reader;
* a *code fingerprint*: a digest of the package sources split into a
  common part (simulator, workloads, harness — everything except the
  per-policy scheduler modules) and the modules implementing the cell's
  scheduler.  Editing the engine invalidates every cached cell; editing
  one scheduler invalidates only that scheduler's cells, which is what
  makes re-running a full sweep after a scheduler tweak cheap;
* whether the run was validated (a validated result carries extra
  diagnostics and must not be served for an unvalidated request).

The scheduler part of the fingerprint covers the policy's defining
module plus every ``repro.schedulers`` module it (transitively)
references.  A dependency smuggled in through dynamic import is not
tracked — ``--refresh`` is the escape hatch.

The cache lives at ``$REPRO_CACHE_DIR`` (or ``~/.cache/repro``) as one
pickle per result under ``objects/<2-hex>/<digest>.pkl``; writes are
atomic (temp file + rename), unreadable entries count as misses.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import sys
import tempfile
from types import ModuleType
from typing import Dict, List, Optional, Tuple

from ..config import SimConfig
from .experiment import CellResult, ExperimentSpec

def _package_version() -> str:
    """Current ``repro._version`` string (read at call time, so tests
    can simulate version skew by patching the module attribute)."""
    from .. import _version
    return _version.__version__


#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: On-disk payload format tag; bump when the pickle layout changes.
CACHE_FORMAT = "repro-cell-cache-v1"


def default_cache_dir() -> str:
    """Resolve the cache directory: env override, else ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME",
                          os.path.join(os.path.expanduser("~"), ".cache"))
    return os.path.join(base, "repro")


# ----------------------------------------------------------------------
# Code fingerprinting
# ----------------------------------------------------------------------

def _file_digest(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as source:
        digest.update(source.read())
    return digest.hexdigest()


def _package_root() -> str:
    import repro
    return os.path.dirname(os.path.abspath(repro.__file__))


def _iter_source_files() -> List[str]:
    root = _package_root()
    files = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            if name.endswith(".py"):
                files.append(os.path.join(dirpath, name))
    return sorted(files)


def _is_policy_module(relpath: str) -> bool:
    """Per-policy scheduler sources, excluded from the common digest.

    ``base``/``registry``/``__init__`` stay in the common digest: they
    shape every policy, so editing them must invalidate everything.
    """
    parts = relpath.split(os.sep)
    if parts[0] != "schedulers":
        return False
    leaf = os.path.basename(relpath)
    return leaf not in ("__init__.py", "base.py", "registry.py")


_FINGERPRINTS: Optional[Tuple[str, Dict[str, str]]] = None


def _fingerprints() -> Tuple[str, Dict[str, str]]:
    """(common digest, per-module digest for policy modules), memoised."""
    global _FINGERPRINTS
    if _FINGERPRINTS is None:
        root = _package_root()
        common = hashlib.sha256()
        policy: Dict[str, str] = {}
        for path in _iter_source_files():
            relpath = os.path.relpath(path, root)
            digest = _file_digest(path)
            if _is_policy_module(relpath):
                module = "repro." + relpath[:-3].replace(os.sep, ".")
                policy[module] = digest
            else:
                common.update(f"{relpath}:{digest}\n".encode())
        _FINGERPRINTS = (common.hexdigest(), policy)
    return _FINGERPRINTS


def _policy_module_closure(scheduler: str) -> List[str]:
    """``repro.schedulers`` modules reachable from a policy's module."""
    from ..schedulers.registry import make_scheduler  # noqa: F401 (loads modules)
    from ..schedulers import registry as sched_registry
    factory = sched_registry._FACTORIES.get(scheduler)
    if factory is None:
        return []
    start = getattr(factory, "__module__", None)
    seen: set = set()
    stack = [start] if start else []
    while stack:
        name = stack.pop()
        if not isinstance(name, str) or name in seen \
                or not name.startswith("repro.schedulers"):
            continue
        seen.add(name)
        module = sys.modules.get(name)
        if module is None:
            continue
        for value in vars(module).values():
            if isinstance(value, ModuleType):
                stack.append(value.__name__)
            else:
                stack.append(getattr(value, "__module__", None))
    return sorted(seen)


def code_fingerprint(scheduler: str) -> str:
    """Digest of the sources a cell for ``scheduler`` depends on."""
    common, policy = _fingerprints()
    parts = [common]
    for module in _policy_module_closure(scheduler):
        digest = policy.get(module)
        if digest is not None:
            parts.append(f"{module}:{digest}")
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


def _invalidate_fingerprints() -> None:
    """Testing hook: force the source digests to be recomputed."""
    global _FINGERPRINTS
    _FINGERPRINTS = None


# ----------------------------------------------------------------------
# Key derivation
# ----------------------------------------------------------------------

def cache_key(spec: ExperimentSpec, config: SimConfig,
              validate: bool = False) -> str:
    """Content digest identifying one cell result."""
    payload = {
        "format": CACHE_FORMAT,
        "version": _package_version(),
        "spec": {
            "benchmark": spec.benchmark,
            "scheduler": spec.scheduler,
            "rate_level": spec.rate_level,
            "num_jobs": spec.num_jobs,
            "seed": spec.seed,
            "scheduler_args": spec.scheduler_args,
        },
        "config": dataclasses.asdict(config),
        "code": code_fingerprint(spec.scheduler),
        "validate": bool(validate),
    }
    text = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode()).hexdigest()


# ----------------------------------------------------------------------
# The cache proper
# ----------------------------------------------------------------------

class ResultCache:
    """Pickle-per-result store addressed by :func:`cache_key`.

    The cache never invents data: a digest mismatch, version mismatch
    or unreadable pickle is treated as a miss and the entry stays for
    :meth:`clear` to reap.  ``hits``/``misses``/``stores`` count this
    instance's traffic (the runner surfaces them per sweep).
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory or default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _objects_dir(self) -> str:
        return os.path.join(self.directory, "objects")

    def _path(self, digest: str) -> str:
        return os.path.join(self._objects_dir(), digest[:2],
                            digest + ".pkl")

    def get(self, spec: ExperimentSpec, config: SimConfig,
            validate: bool = False) -> Optional[CellResult]:
        """Cached result for a cell, or None on any kind of miss."""
        digest = cache_key(spec, config, validate)
        path = self._path(digest)
        try:
            with open(path, "rb") as source:
                payload = pickle.load(source)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            return None
        if (not isinstance(payload, dict)
                or payload.get("format") != CACHE_FORMAT
                or payload.get("version") != _package_version()
                or payload.get("key") != digest):
            self.misses += 1
            return None
        result = payload.get("result")
        if not isinstance(result, CellResult):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: ExperimentSpec, config: SimConfig,
            result: CellResult, validate: bool = False) -> str:
        """Store one result atomically; returns its digest."""
        digest = cache_key(spec, config, validate)
        path = self._path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {
            "format": CACHE_FORMAT,
            "version": _package_version(),
            "key": digest,
            "result": result,
        }
        fd, tmp_path = tempfile.mkstemp(dir=os.path.dirname(path),
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as sink:
                pickle.dump(payload, sink, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.stores += 1
        return digest

    # -- maintenance ----------------------------------------------------

    def _entries(self) -> List[str]:
        objects = self._objects_dir()
        found: List[str] = []
        if not os.path.isdir(objects):
            return found
        for dirpath, _dirnames, filenames in os.walk(objects):
            for name in filenames:
                if name.endswith(".pkl"):
                    found.append(os.path.join(dirpath, name))
        return sorted(found)

    def stats(self) -> Dict[str, object]:
        """Entry count and footprint of the on-disk store."""
        entries = self._entries()
        total = 0
        for path in entries:
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        return {
            "directory": self.directory,
            "entries": len(entries),
            "total_bytes": total,
            "version": _package_version(),
        }

    def clear(self) -> int:
        """Delete every stored result; returns how many were removed."""
        removed = 0
        for path in self._entries():
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed
