"""Values the paper reports, for paper-vs-measured comparison.

Everything a bench prints next to our measurements comes from here:
Table 5 (throughput / 99-percentile latency / energy per successful job)
and the headline geomean ratios quoted in Section 6.  Absolute values are
not expected to match (our substrate is a WG-granular simulator, not
gem5); the *shape* — who wins, rough factors — is the reproduction target.
"""

from __future__ import annotations

from typing import Dict, Mapping

#: Scheduler column order of Table 5.
TABLE5_SCHEDULERS = ("RR", "MLFQ", "BAT", "BAY", "PRO", "LJF", "SJF", "SRF",
                     "PREMA", "EDF", "LAX")

#: Table 5a: successful-job throughput (jobs per second).
TABLE5A_THROUGHPUT: Mapping[str, Mapping[str, float]] = {
    "LSTM": {"RR": 511, "MLFQ": 419, "BAT": 458, "BAY": 2651, "PRO": 465,
             "LJF": 372, "SJF": 2883, "SRF": 3069, "PREMA": 1302,
             "EDF": 1209, "LAX": 3317},
    "GRU": {"RR": 912, "MLFQ": 700, "BAT": 775, "BAY": 2828, "PRO": 775,
            "LJF": 1551, "SJF": 3466, "SRF": 3558, "PREMA": 2463,
            "EDF": 1870, "LAX": 3859},
    "VAN": {"RR": 729, "MLFQ": 515, "BAT": 750, "BAY": 2574, "PRO": 987,
            "LJF": 472, "SJF": 2832, "SRF": 2960, "PREMA": 1416,
            "EDF": 1158, "LAX": 3226},
    "HYBRID": {"RR": 85, "MLFQ": 43, "BAT": 85, "BAY": 1147, "PRO": 85,
               "LJF": 766, "SJF": 1277, "SRF": 1702, "PREMA": 511,
               "EDF": 340, "LAX": 1757},
    "IPV6": {"RR": 13158, "MLFQ": 13816, "BAT": 11842, "BAY": 0,
             "PRO": 13816, "LJF": 13158, "SJF": 13158, "SRF": 13158,
             "PREMA": 12500, "EDF": 13157, "LAX": 23953},
    "CUCKOO": {"RR": 289, "MLFQ": 289, "BAT": 276, "BAY": 651, "PRO": 295,
               "LJF": 289, "SJF": 289, "SRF": 289, "PREMA": 289,
               "EDF": 289, "LAX": 831},
    "GMM": {"RR": 2242, "MLFQ": 2841, "BAT": 2242, "BAY": 2446, "PRO": 2242,
            "LJF": 2242, "SJF": 2242, "SRF": 2242, "PREMA": 1921,
            "EDF": 2038, "LAX": 4646},
    "STEM": {"RR": 3937, "MLFQ": 3937, "BAT": 2624, "BAY": 1969, "PRO": 2624,
             "LJF": 3937, "SJF": 3937, "SRF": 3937, "PREMA": 23622,
             "EDF": 3937, "LAX": 20954},
}

#: Table 5b: 99-percentile job latency (milliseconds).
TABLE5B_P99_MS: Mapping[str, Mapping[str, float]] = {
    "LSTM": {"RR": 47.7, "MLFQ": 38.2, "BAT": 51.9, "BAY": 21.4, "PRO": 6.7,
             "LJF": 50.1, "SJF": 46.4, "SRF": 46.3, "PREMA": 43.2,
             "EDF": 37.8, "LAX": 6.0},
    "GRU": {"RR": 35.1, "MLFQ": 25.6, "BAT": 37.9, "BAY": 20.4, "PRO": 6.5,
            "LJF": 36.9, "SJF": 33.7, "SRF": 33.4, "PREMA": 27.6,
            "EDF": 25.7, "LAX": 6.5},
    "VAN": {"RR": 43.9, "MLFQ": 34.2, "BAT": 38.7, "BAY": 9.4, "PRO": 7.0,
            "LJF": 47.0, "SJF": 43.6, "SRF": 42.9, "PREMA": 38.7,
            "EDF": 34.9, "LAX": 6.6},
    "HYBRID": {"RR": 84.5, "MLFQ": 75.7, "BAT": 88.4, "BAY": 20.9,
               "PRO": 2.4, "LJF": 85.7, "SJF": 81.9, "SRF": 83.9,
               "PREMA": 83.7, "EDF": 75.6, "LAX": 7.2},
    "IPV6": {"RR": 0.2, "MLFQ": 0.2, "BAT": 0.2, "BAY": 0.0, "PRO": 0.4,
             "LJF": 0.2, "SJF": 0.2, "SRF": 0.2, "PREMA": 0.2, "EDF": 0.2,
             "LAX": 0.04},
    "CUCKOO": {"RR": 9.7, "MLFQ": 9.0, "BAT": 9.2, "BAY": 1.0, "PRO": 1.3,
               "LJF": 9.2, "SJF": 9.2, "SRF": 9.2, "PREMA": 9.4, "EDF": 9.2,
               "LAX": 4.5},
    "GMM": {"RR": 41.5, "MLFQ": 42.3, "BAT": 42.2, "BAY": 3.3, "PRO": 1.8,
            "LJF": 42.2, "SJF": 42.2, "SRF": 42.2, "PREMA": 40.2,
            "EDF": 42.3, "LAX": 2.8},
    "STEM": {"RR": 3.1, "MLFQ": 3.1, "BAT": 3.2, "BAY": 0.3, "PRO": 0.3,
             "LJF": 3.1, "SJF": 3.1, "SRF": 3.1, "PREMA": 4.8, "EDF": 3.1,
             "LAX": 0.5},
}

#: Table 5c: energy per successful job (millijoules).
TABLE5C_ENERGY_MJ: Mapping[str, Mapping[str, float]] = {
    "LSTM": {"RR": 1.35, "MLFQ": 1.80, "BAT": 1.47, "BAY": 0.08,
             "PRO": 0.08, "LJF": 2.32, "SJF": 0.26, "SRF": 0.25,
             "PREMA": 0.58, "EDF": 0.62, "LAX": 0.08},
    "GRU": {"RR": 0.58, "MLFQ": 0.78, "BAT": 0.69, "BAY": 0.07, "PRO": 0.06,
            "LJF": 1.30, "SJF": 0.21, "SRF": 0.21, "PREMA": 0.43,
            "EDF": 0.53, "LAX": 0.08},
    "VAN": {"RR": 0.72, "MLFQ": 0.96, "BAT": 0.90, "BAY": 0.07, "PRO": 0.08,
            "LJF": 1.30, "SJF": 0.21, "SRF": 0.21, "PREMA": 0.43,
            "EDF": 0.53, "LAX": 0.08},
    "HYBRID": {"RR": 15.4, "MLFQ": 31.19, "BAT": 15.39, "BAY": 0.21,
               "PRO": 0.36, "LJF": 1.65, "SJF": 0.89, "SRF": 0.74,
               "PREMA": 2.53, "EDF": 3.94, "LAX": 0.15},
    "IPV6": {"RR": 0.014, "MLFQ": 0.016, "BAT": 0.014, "BAY": 0.0,
             "PRO": 0.014, "LJF": 0.014, "SJF": 0.014, "SRF": 0.014,
             "PREMA": 0.014, "EDF": 0.014, "LAX": 0.007},
    "CUCKOO": {"RR": 0.78, "MLFQ": 0.78, "BAT": 1.04, "BAY": 0.05,
               "PRO": 0.05, "LJF": 0.79, "SJF": 0.79, "SRF": 0.79,
               "PREMA": 0.79, "EDF": 1.05, "LAX": 0.12},
    "GMM": {"RR": 2.35, "MLFQ": 1.62, "BAT": 2.78, "BAY": 0.14, "PRO": 0.20,
            "LJF": 2.55, "SJF": 2.55, "SRF": 2.52, "PREMA": 2.75,
            "EDF": 3.13, "LAX": 0.21},
    "STEM": {"RR": 0.12, "MLFQ": 0.12, "BAT": 0.16, "BAY": 0.011,
             "PRO": 0.009, "LJF": 0.08, "SJF": 0.08, "SRF": 0.08,
             "PREMA": 0.21, "EDF": 0.12, "LAX": 0.008},
}

#: Section 6 headline geomean ratios (jobs meeting deadline, vs RR unless
#: otherwise stated).
PAPER_GEOMEAN_CLAIMS: Dict[str, float] = {
    # Figure 6: LAX vs RR at the three arrival rates.
    "LAX_vs_RR_low": 1.7,
    "LAX_vs_RR_medium": 3.1,
    "LAX_vs_RR_high": 4.2,
    # Section 6.1.1.
    "BAT_vs_RR_high": 0.77,   # "completes 23% fewer jobs than RR"
    "BAY_vs_RR_high": 1.0,    # "RR and BAY complete the same geomean"
    "PRO_vs_RR_high": 1.02,
    "LAX_vs_BAY_high": 3.1,
    # Section 6.1.2 (high arrival rate).
    "SJF_vs_RR_high": 2.46,
    "SRF_vs_RR_high": 2.54,
    "MLFQ_vs_RR_high": 0.85,
    "EDF_vs_RR_high": 1.5,
    "LJF_vs_RR_high": 1.24,
    "PREMA_vs_RR_high": 2.2,
    "LAX_vs_SRF_high": 1.7,
    "LAX_vs_PREMA_high": 2.0,
    "LAX_vs_EDF_high": 2.9,
    # Section 6.1.3 (normalised to LAX-SW).
    "LAX-CPU_vs_LAX-SW_high": 1.5,
    "LAX_vs_LAX-SW_high": 1.7,
    "LAX-SW_vs_BAY_high": 1.8,
}

#: Figure 9: geomean wasted-work fractions per scheduler.
PAPER_WASTED_WORK: Dict[str, float] = {
    "RR": 0.69,    # deadline-blind schedulers waste 67-71%
    "BAT": 0.70,
    "BAY": 0.27,
    "PRO": 0.65,
    "SJF": 0.41,
    "SRF": 0.38,
    "LJF": 0.56,
    "LAX": 0.22,
}

#: Figure 10 headline: mean absolute prediction error.
PAPER_PREDICTION_MAE = 0.08

#: Section 4.2: Job Table memory for a 128-queue system, bytes.
PAPER_JOB_TABLE_BYTES = 4240
