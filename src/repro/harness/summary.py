"""Cross-benchmark summaries: the paper's normalised geomean comparisons.

Figures 6-8 plot jobs-completed-by-deadline normalised to a baseline
scheduler per benchmark, then quote geometric means across benchmarks.
These helpers build those series from experiment cells.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from ..config import DEFAULT_CONFIG, SimConfig
from ..metrics.percentile import geomean, safe_ratio
from .experiment import CellResult, ExperimentSpec, default_num_jobs, run_cell

#: Floor substituted for zero normalised ratios inside geomeans, mirroring
#: the "completed zero jobs" cells in the paper (e.g. BAY on IPV6).
GEOMEAN_FLOOR = 0.05


def grid_results(benchmarks: Sequence[str], schedulers: Sequence[str],
                 rate_level: str = "high", num_jobs: Optional[int] = None,
                 seed: int = 1, config: SimConfig = DEFAULT_CONFIG,
                 ) -> Dict[str, Dict[str, CellResult]]:
    """Run a benchmark x scheduler grid at one arrival rate."""
    jobs = num_jobs if num_jobs is not None else default_num_jobs()
    grid: Dict[str, Dict[str, CellResult]] = {}
    for benchmark in benchmarks:
        row: Dict[str, CellResult] = {}
        for scheduler in schedulers:
            spec = ExperimentSpec(benchmark=benchmark, scheduler=scheduler,
                                  rate_level=rate_level, num_jobs=jobs,
                                  seed=seed)
            row[scheduler] = run_cell(spec, config)
        grid[benchmark] = row
    return grid


def normalized_deadline_grid(grid: Mapping[str, Mapping[str, CellResult]],
                             baseline: str) -> Dict[str, Dict[str, float]]:
    """Jobs-meeting-deadline per cell, normalised to ``baseline``.

    When the baseline itself completes zero jobs, the cell is normalised
    against one job so the comparison stays finite (the paper's bars are
    clipped in the same situation).
    """
    normalized: Dict[str, Dict[str, float]] = {}
    for benchmark, row in grid.items():
        base = row[baseline].metrics.jobs_meeting_deadline
        denominator = max(1, base)
        normalized[benchmark] = {
            scheduler: safe_ratio(cell.metrics.jobs_meeting_deadline,
                                  denominator)
            for scheduler, cell in row.items()
        }
    return normalized


def geomean_over_benchmarks(normalized: Mapping[str, Mapping[str, float]],
                            scheduler: str) -> float:
    """Geomean of one scheduler's normalised ratios across benchmarks."""
    return geomean((row[scheduler] for row in normalized.values()),
                   floor=GEOMEAN_FLOOR)


def geomean_ratio(grid: Mapping[str, Mapping[str, CellResult]],
                  scheduler: str, baseline: str) -> float:
    """Geomean across benchmarks of scheduler/baseline deadline counts."""
    ratios = []
    for row in grid.values():
        numerator = row[scheduler].metrics.jobs_meeting_deadline
        denominator = max(1, row[baseline].metrics.jobs_meeting_deadline)
        ratios.append(numerator / denominator)
    return geomean(ratios, floor=GEOMEAN_FLOOR)


def wasted_work_by_scheduler(grid: Mapping[str, Mapping[str, CellResult]],
                             ) -> Dict[str, float]:
    """Figure 9 summary: geomean wasted-WG fraction per scheduler."""
    schedulers = next(iter(grid.values())).keys()
    wasted: Dict[str, float] = {}
    for scheduler in schedulers:
        fractions = [grid[benchmark][scheduler].metrics.wasted_wg_fraction
                     for benchmark in grid]
        wasted[scheduler] = geomean(fractions, floor=0.01)
    return wasted
