"""Simulated system configuration.

:class:`GPUConfig` mirrors Table 2 of the paper (the gem5 system the authors
simulate): an 8-CU GCN-like GPU at 1500 MHz with 128 compute queues.
:class:`OverheadConfig` collects the latency constants the paper states in
Section 5 (CP parse rate, host-device communication, Baymax prediction cost,
PREMA preemption interval).  :class:`SimConfig` bundles both plus the
simulation-level knobs (scheduler update periods, energy coefficients).

All times are integer nanosecond ticks (see :mod:`repro.sim.time`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from .errors import ConfigError
from .units import MS, US


@dataclass(frozen=True)
class GPUConfig:
    """Hardware parameters of the simulated GPU (paper Table 2)."""

    #: Number of compute units.
    num_cus: int = 8
    #: SIMD units per CU; also the number of WGs a CU runs at full rate.
    simd_per_cu: int = 4
    #: Maximum wavefronts resident per SIMD unit.
    wavefronts_per_simd: int = 10
    #: Threads per wavefront (GCN wave64).
    wavefront_size: int = 64
    #: Maximum resident threads per CU.
    threads_per_cu: int = 2560
    #: Vector register file per CU, bytes (256 KB).
    vgpr_bytes_per_cu: int = 256 * 1024
    #: Local data store per CU, bytes (64 KB).
    lds_bytes_per_cu: int = 64 * 1024
    #: Number of hardware compute queues the CP manages.
    num_queues: int = 128
    #: Memory bandwidth used to cost context save/restore, bytes per ns.
    #: 16-channel DDR4 at 1000 MHz is ~256 GB/s ~= 256 B/ns; preemption
    #: traffic sees a fraction of that in practice.
    context_bw_bytes_per_ns: float = 64.0
    #: WG issue discipline.  True (contemporary hardware): the dispatcher
    #: fills occupancy greedily — WGs keep issuing as long as thread /
    #: register / LDS / wavefront resources allow, even past the point
    #: where residents slow each other.  False: a conservative WG
    #: scheduler that only issues into full-rate slots, trading occupancy
    #: for per-WG latency (the ablation in bench_ablation_dispatch.py).
    greedy_occupancy: bool = True
    #: Optional device memory-bandwidth cap for kernel traffic, bytes/ns.
    #: 0 disables the model (the default: Table 1 calibration already
    #: reflects each kernel's achieved bandwidth in its isolated time).
    #: When enabled, each CU gets an equal slice and resident WGs whose
    #: aggregate demand (``bytes_per_wg / wg_work``) exceeds the slice are
    #: throttled proportionally.
    memory_bw_bytes_per_ns: float = 0.0

    def __post_init__(self) -> None:
        for name in ("num_cus", "simd_per_cu", "wavefronts_per_simd",
                     "wavefront_size", "threads_per_cu", "vgpr_bytes_per_cu",
                     "lds_bytes_per_cu", "num_queues"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"GPUConfig.{name} must be positive")
        if self.context_bw_bytes_per_ns <= 0:
            raise ConfigError("GPUConfig.context_bw_bytes_per_ns must be positive")
        if self.memory_bw_bytes_per_ns < 0:
            raise ConfigError("GPUConfig.memory_bw_bytes_per_ns must be >= 0")

    @property
    def max_wavefronts_per_cu(self) -> int:
        """Wavefront slots per CU (4 SIMD x 10 slots = 40)."""
        return self.simd_per_cu * self.wavefronts_per_simd

    @property
    def full_rate_lanes(self) -> int:
        """Device-wide WG slots that run at full rate (8 CU x 4 SIMD = 32).

        This is the denominator used to calibrate per-WG service demand
        from Table 1 isolated kernel times.
        """
        return self.num_cus * self.simd_per_cu


@dataclass(frozen=True)
class OverheadConfig:
    """Latency constants from Section 5 of the paper."""

    #: CP parses four streams in parallel every 2 us (Section 5).
    cp_parse_period: int = 2 * US
    #: Streams inspected per CP parse period.
    cp_parse_width: int = 4
    #: One-way host-device communication latency added per kernel for
    #: CPU-side schedulers (Section 5.1: "4 us of host-device communication
    #: overhead per kernel in a job").
    host_device_latency: int = 4 * US
    #: Baymax regression-model invocation cost (Section 5.1: 50 us).
    baymax_prediction_latency: int = 50 * US
    #: PREMA scheduling/preemption interval (Section 5.1: 250 us).
    prema_interval: int = 250 * US
    #: LAX priority-update and profiling-window period (Section 4: 100 us).
    lax_update_period: int = 100 * US

    def __post_init__(self) -> None:
        for name in ("cp_parse_period", "cp_parse_width", "host_device_latency",
                     "baymax_prediction_latency", "prema_interval",
                     "lax_update_period"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"OverheadConfig.{name} must be positive")


@dataclass(frozen=True)
class EnergyConfig:
    """Coefficients for the per-WG energy model.

    The paper analyses energy with per-instruction energies; at WG
    granularity the equivalent is a dynamic cost proportional to busy
    lane-time plus a static cost proportional to wall time.
    """

    #: Dynamic power of one busy full-rate lane, watts.
    dynamic_watts_per_lane: float = 4.0
    #: Static (idle/leakage) power of the whole device, watts.
    static_watts: float = 35.0
    #: Extra energy per byte of context saved/restored on preemption, joules.
    preemption_joules_per_byte: float = 2.0e-9

    def __post_init__(self) -> None:
        if self.dynamic_watts_per_lane < 0 or self.static_watts < 0:
            raise ConfigError("energy coefficients must be non-negative")
        if self.preemption_joules_per_byte < 0:
            raise ConfigError("preemption energy must be non-negative")


@dataclass(frozen=True)
class SimConfig:
    """Top-level simulation configuration."""

    gpu: GPUConfig = field(default_factory=GPUConfig)
    overheads: OverheadConfig = field(default_factory=OverheadConfig)
    energy: EnergyConfig = field(default_factory=EnergyConfig)
    #: Safety limit on simulated time; a run exceeding this raises.
    max_sim_time: int = 60_000 * MS
    #: Seed for all stochastic workload generation.
    seed: int = 1

    def __post_init__(self) -> None:
        if self.max_sim_time <= 0:
            raise ConfigError("SimConfig.max_sim_time must be positive")

    def replace(self, **changes: object) -> "SimConfig":
        """Return a copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)


DEFAULT_CONFIG = SimConfig()
