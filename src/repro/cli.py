"""Command-line front end: run experiment cells and print summaries.

Examples::

    lax-sim --benchmark LSTM --scheduler LAX --rate high
    lax-sim --benchmark IPV6 --scheduler RR --rate medium --jobs 64
    lax-sim --benchmark SUSTAINED --scheduler LAX --stream 100000
    lax-sim --benchmark SUSTAINED --stream 50000 --rate x1.5 --validate
    lax-sim --benchmark LSTM --scheduler LAX --emit-telemetry out/
    lax-sim --benchmark LSTM --scheduler LAX --window 2 --slo-monitor
    lax-sim --benchmark LSTM --sink jsonl --emit-telemetry out/
    lax-sim report --benchmark LSTM --scheduler LAX --rate high
    lax-sim report --from-bundle out/
    lax-sim --benchmark LSTM --compare LAX RR PREMA --workers 4
    lax-sim --benchmark LSTM --compare LAX RR --workers 4 --validate
    lax-sim --benchmark LSTM --scheduler LAX --refresh
    lax-sim cache stats
    lax-sim cache clear
    lax-sim --list

Cell runs and ``--compare`` sweeps execute through the sweep runner
(:mod:`repro.harness.runner`): results are served from the persistent
content-addressed cache when the same (spec, config, code version) has
run before, ``--workers N`` fans a comparison sweep out over worker
processes, ``--no-cache`` bypasses the cache and ``--refresh``
recomputes and overwrites it.  ``lax-sim cache stats``/``clear``
inspect and empty the store (``$REPRO_CACHE_DIR`` or
``~/.cache/repro``; override per call with ``--cache-dir``).

``--trace`` and ``--emit-telemetry`` compose with every run mode
(single cell, ``--workload`` and, for ``--emit-telemetry``, ``--compare``);
combinations that cannot run (e.g. with ``--save-workload``, which never
simulates) exit with a clear error instead of being silently dropped.
``--validate`` attaches the runtime invariant checker and sweeps the
analytic oracles after the run; a violation exits with code 3 and the
structured event context instead of a traceback.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

from .harness.experiment import ExperimentSpec, run_cell
from .harness.formatting import format_table
from .schedulers.registry import scheduler_names
from .sim.time import to_ms
from .workloads.registry import BENCHMARK_ORDER, RATE_LEVELS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lax-sim",
        description=("Simulate one (benchmark, scheduler, arrival rate) "
                     "cell of the LAX evaluation (HPCA 2021)."))
    parser.add_argument("command", nargs="?", default="run",
                        choices=("run", "report", "cache"),
                        help="'run' prints the summary table (default); "
                             "'report' prints the full markdown run report "
                             "with deadline-miss post-mortems; 'cache' "
                             "manages the persistent result cache")
    parser.add_argument("action", nargs="?", default=None,
                        metavar="ACTION",
                        help="subcommand for 'cache': 'stats' or 'clear'")
    parser.add_argument("--benchmark", default="LSTM",
                        choices=list(BENCHMARK_ORDER) + ["SUSTAINED"],
                        help="one of the Table 4 benchmarks, or SUSTAINED "
                             "(the streaming sustained-traffic cell)")
    parser.add_argument("--scheduler", default="LAX",
                        choices=scheduler_names())
    parser.add_argument("--rate", default="high",
                        help="arrival-rate level from Table 4 ('high', "
                             "'medium', 'low') or an 'x<multiplier>' of "
                             "the high rate (e.g. 'x1.5') for load sweeps")
    parser.add_argument("--jobs", type=int, default=128,
                        help="jobs to simulate (paper uses 128)")
    parser.add_argument("--stream", type=int, metavar="N",
                        help="run N jobs as a lazy streamed workload "
                             "(SUSTAINED only): jobs are generated on "
                             "demand and retired on completion, so memory "
                             "stays O(live jobs) at any N")
    parser.add_argument("--no-retire", action="store_true", dest="no_retire",
                        help="with --stream: keep every job's state until "
                             "the end of the run (the seed bookkeeping; "
                             "memory grows with N)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--devices", type=int, metavar="N",
                        help="run a routed N-device cluster instead of one "
                             "GPU; works with a finite cell or --stream "
                             "(the stream offers N x the per-device rate)")
    parser.add_argument("--router", metavar="NAME",
                        help="cluster routing policy (default laxity); "
                             "requires --devices.  See 'lax-sim --list'")
    parser.add_argument("--list", action="store_true",
                        help="list benchmarks and schedulers, then exit")
    parser.add_argument("--compare", nargs="+", metavar="SCHED",
                        help="run several schedulers on the same cell and "
                             "print a comparison table")
    parser.add_argument("--trace", metavar="PATH",
                        help="record a WG-level event trace of the run to "
                             "PATH (.jsonl or .csv)")
    parser.add_argument("--emit-telemetry", metavar="DIR",
                        dest="emit_telemetry",
                        help="write the full telemetry bundle (Perfetto "
                             "trace, metrics snapshots, run report) to DIR")
    parser.add_argument("--sink", default="list", metavar="SPEC",
                        help="telemetry sink backing the event streams: "
                             "'list' (default, retain all in memory), "
                             "'ring[:N]' (last N events), 'jsonl[:DIR]' "
                             "(stream to disk, flat memory) or 'null'")
    parser.add_argument("--window", type=float, metavar="MS",
                        help="collect windowed steady-state metrics "
                             "(per-window p50/p99, SLO attainment, "
                             "throughput, occupancy) over tumbling "
                             "MS-millisecond windows of sim-time")
    parser.add_argument("--slo-monitor", action="store_true",
                        dest="slo_monitor",
                        help="stream a live per-window progress line and "
                             "SLO threshold alerts to stderr "
                             "(needs --window)")
    parser.add_argument("--from-bundle", metavar="DIR", dest="from_bundle",
                        help="with the report command: render DIR's "
                             "report.json instead of running a simulation")
    parser.add_argument("--workload", metavar="FILE",
                        help="run a workload JSON file instead of a "
                             "generated benchmark")
    parser.add_argument("--save-workload", metavar="FILE",
                        help="write the generated workload to FILE and exit")
    parser.add_argument("--validate", action="store_true",
                        help="run under the invariant checker and sweep the "
                             "analytic oracles afterwards; exits 3 with the "
                             "violation's event context on failure")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes for --compare sweeps "
                             "(default 1 = serial; results are "
                             "bit-identical either way)")
    parser.add_argument("--cache-dir", metavar="DIR", dest="cache_dir",
                        help="persistent result-cache directory (default "
                             "$REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--no-cache", action="store_true", dest="no_cache",
                        help="bypass the persistent result cache entirely")
    parser.add_argument("--refresh", action="store_true",
                        help="ignore cached results but rewrite the cache "
                             "from the fresh runs")
    return parser


def _mode_error(args) -> Optional[str]:
    """Reject argument combinations that cannot do what they ask."""
    report = args.command == "report"
    if args.command == "cache":
        if args.action not in ("stats", "clear"):
            return "cache expects an action: 'stats' or 'clear'"
        if (args.compare or args.workload or args.save_workload
                or args.trace or args.emit_telemetry or args.validate
                or args.window is not None or args.slo_monitor
                or args.sink != "list" or args.from_bundle):
            return ("'cache stats/clear' manages the result store and "
                    "cannot be combined with run flags")
    elif args.action is not None:
        return (f"unexpected positional {args.action!r}; only the cache "
                "command takes an action")
    if args.workers < 1:
        return "--workers must be at least 1"
    from .errors import WorkloadError
    from .workloads.registry import validate_rate_level
    try:
        validate_rate_level(args.rate)
    except WorkloadError as exc:
        return str(exc)
    if args.no_retire and args.stream is None:
        return "--no-retire only changes --stream runs; add --stream N"
    if args.stream is not None:
        if args.stream < 1:
            return "--stream needs a positive job count"
        if args.benchmark != "SUSTAINED":
            return ("--stream feeds the lazy SUSTAINED arrival source; "
                    "use --benchmark SUSTAINED")
        if args.compare or args.workload or args.save_workload:
            return ("--stream simulates one lazily generated run and "
                    "cannot be combined with --compare, --workload or "
                    "--save-workload")
        if args.workers > 1 and args.devices is None:
            return "--stream runs one in-process simulation; drop --workers"
        if args.from_bundle:
            return "--stream and --from-bundle cannot be combined"
    if args.devices is not None:
        if args.devices < 1:
            return "--devices needs a positive device count"
        from .cluster import router_names
        router = args.router if args.router is not None else "laxity"
        if router not in router_names():
            return (f"unknown router {router!r}; known: "
                    f"{', '.join(router_names())}")
        if router == "pass-through" and args.devices != 1:
            return "--router pass-through is single-device; use --devices 1"
        if (args.compare or args.workload or args.save_workload
                or args.trace or args.emit_telemetry
                or args.window is not None or args.slo_monitor
                or args.sink != "list" or args.from_bundle
                or args.command == "report"):
            return ("--devices runs a routed fleet and prints its summary "
                    "table; it cannot be combined with --compare, "
                    "--workload, --save-workload, --trace, "
                    "--emit-telemetry, --sink/--window/--slo-monitor or "
                    "the report command")
    elif args.router is not None:
        return "--router chooses a cluster policy; add --devices N"
    if args.no_cache and args.refresh:
        return ("--no-cache skips the result cache entirely; --refresh "
                "rewrites it — pick one")
    if args.workers > 1:
        if (args.trace or args.emit_telemetry or args.window is not None
                or args.slo_monitor or args.sink != "list"):
            return ("--trace/--emit-telemetry/--sink/--window/--slo-monitor "
                    "observe one in-process run; telemetry requires serial "
                    "execution — drop --workers")
        if args.workload:
            return "--workload runs a single file; --workers does not apply"
    if args.from_bundle:
        if not report:
            return ("--from-bundle renders an existing bundle's report; "
                    "use the report command")
        if (args.compare or args.workload or args.save_workload
                or args.trace or args.emit_telemetry or args.validate
                or args.window is not None or args.slo_monitor
                or args.sink != "list"):
            return ("report --from-bundle renders an existing report.json "
                    "and cannot be combined with run flags")
    if args.window is not None and args.window <= 0:
        return "--window must be a positive duration in milliseconds"
    if args.slo_monitor and args.window is None:
        return "--slo-monitor needs --window MS to define its windows"
    if args.sink != "list":
        from .errors import TelemetryError
        from .telemetry import parse_sink_spec
        try:
            kind, arg = parse_sink_spec(args.sink)
        except TelemetryError as exc:
            return str(exc)
        if kind == "jsonl" and arg is None and not args.emit_telemetry:
            return ("--sink jsonl needs a directory: use jsonl:DIR or "
                    "combine with --emit-telemetry DIR")
    if args.save_workload:
        if (args.trace or args.emit_telemetry or report or args.validate
                or args.window is not None or args.slo_monitor
                or args.sink != "list"):
            return ("--save-workload only writes a workload file (nothing "
                    "is simulated); it cannot be combined with --trace, "
                    "--emit-telemetry, --sink/--window/--slo-monitor, "
                    "--validate or the report command")
        if args.compare:
            return "--save-workload and --compare cannot be combined"
    if args.compare:
        if args.workload:
            return "--workload and --compare cannot be combined"
        if args.trace:
            return ("--trace records a single run; with --compare use "
                    "--emit-telemetry DIR to write one bundle per scheduler")
        if report:
            return ("the report command describes a single run; drop "
                    "--compare or use --emit-telemetry DIR instead")
    if args.trace and not args.trace.endswith((".jsonl", ".csv")):
        return "--trace expects a .jsonl or .csv path"
    return None


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``lax-sim`` console script."""
    args = _build_parser().parse_args(argv)
    if args.list:
        from .cluster import router_names
        print("benchmarks:", ", ".join(BENCHMARK_ORDER),
              "+ SUSTAINED (streaming)")
        print("schedulers:", ", ".join(scheduler_names()))
        print("rate levels:", ", ".join(RATE_LEVELS),
              "or x<multiplier> of high (e.g. x1.5)")
        print("routers:", ", ".join(router_names()),
              "(--devices N --router NAME)")
        return 0
    error = _mode_error(args)
    if error is not None:
        print(error)
        return 2
    if args.command == "cache":
        return _cache_command(args)
    if args.from_bundle:
        return _report_from_bundle(args)
    if args.save_workload:
        return _save_workload(args)
    if args.compare:
        return _compare(args)
    if args.workload:
        return _run_workload_file(args)
    if args.devices is not None:
        return _run_cluster(args)
    if args.stream is not None:
        return _run_stream(args)
    return _run_single(args)


def _cache_command(args) -> int:
    """``lax-sim cache stats`` / ``lax-sim cache clear``."""
    from .harness.cache import ResultCache
    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.directory}")
        return 0
    stats = cache.stats()
    rows = [
        ("directory", stats["directory"]),
        ("entries", stats["entries"]),
        ("total bytes", stats["total_bytes"]),
        ("package version", stats["version"]),
    ]
    print(format_table(("field", "value"), rows, title="result cache"))
    return 0


def _make_runner(args, workers: int = 1, on_progress=None):
    """A Runner wired to this invocation's cache and worker flags."""
    from .harness.runner import Runner
    return Runner(workers=workers, cache=not args.no_cache,
                  cache_dir=args.cache_dir, refresh=args.refresh,
                  on_progress=on_progress)


def _window_ticks(args) -> Optional[int]:
    """--window milliseconds as integer ticks, or None."""
    if args.window is None:
        return None
    from .units import MS
    return max(1, int(args.window * MS))


def _make_hub(args, label: str = "run", sink_dir: Optional[str] = None):
    """Telemetry hub for this invocation, or None when nothing asked."""
    if not (args.trace or args.emit_telemetry or args.command == "report"
            or args.window is not None or args.slo_monitor
            or args.sink != "list"):
        return None
    from .telemetry import TelemetryHub
    hub = TelemetryHub(wg_events=bool(args.trace), sink=args.sink,
                       sink_dir=(sink_dir if sink_dir is not None
                                 else args.emit_telemetry),
                       window=_window_ticks(args),
                       slo_monitor=args.slo_monitor,
                       slo_stream=sys.stderr if args.slo_monitor else None,
                       label=label)
    if hub.monitor is not None:
        from .telemetry import print_alert, reject_rate_above, slo_below
        hub.monitor.add_rule("slo_attainment<0.95", slo_below(0.95),
                             consecutive=3, callback=print_alert)
        hub.monitor.add_rule("reject_rate>0.5", reject_rate_above(0.5),
                             consecutive=3, callback=print_alert)
    return hub


def _report_from_bundle(args) -> int:
    """Render an already-written bundle's report.json as markdown.

    Works on bundles written before windowed metrics existed — the
    renderer skips sections whose keys are absent.
    """
    import json
    from .telemetry import render_markdown
    path = os.path.join(args.from_bundle, "report.json")
    if not os.path.isfile(path):
        print(f"no report.json under {args.from_bundle}")
        return 2
    with open(path, encoding="utf-8") as source:
        report = json.load(source)
    print(render_markdown(report), end="")
    return 0


def _make_validator(args):
    """Invariant checker when ``--validate`` was passed, else None."""
    if not args.validate:
        return None
    from .validation import InvariantChecker
    return InvariantChecker()


def _event_core_diagnostics(system) -> Dict[str, object]:
    """Event-core counters for the run's diagnostics block.

    Present on every bundle written from here on (an off-mode run just
    records the heap counters and a disabled pool); bundles written
    before the event core existed simply lack the key and the report
    renderer skips the section.
    """
    from .sim import job_pool
    counters: Dict[str, object] = dict(system.sim.event_core_stats())
    counters["job_pool"] = job_pool.stats()
    updater = getattr(system.policy, "_updater", None)
    if updater is not None:
        counters["periodic_ticks_fired"] = updater.ticks_fired
        counters["periodic_ticks_elided"] = updater.ticks_elided
    return counters


def _violation_exit(exc, validator, args) -> int:
    """Report an invariant violation cleanly; exit code 3.

    Prints the structured event context line by line, and — when
    ``--emit-telemetry`` was also requested — flushes the checker's
    summary into the bundle directory so the post-mortem has the
    conservation state on disk.
    """
    print(f"error: {exc}", file=sys.stderr)
    print(f"  invariant: {exc.invariant}", file=sys.stderr)
    print(f"  sim time:  {exc.time}", file=sys.stderr)
    for key, value in sorted(exc.context.items()):
        print(f"  {key}: {value}", file=sys.stderr)
    if args.emit_telemetry and validator is not None:
        from .telemetry import write_validation_summary
        path = write_validation_summary(args.emit_telemetry,
                                        validator.summary())
        print(f"wrote violation summary to {path}", file=sys.stderr)
    return 3


def _validation_outcome(summary, quiet: bool = False) -> int:
    """Print the post-run validation verdict; 0 ok, 3 on oracle failure.

    ``quiet`` skips the one-line verdict (report mode embeds it already)
    but still surfaces oracle failures on stderr.
    """
    failures = summary.get("oracle_failures") or []
    if not quiet:
        print(f"validation: {summary['total_checks']} invariant checks, "
              f"{len(summary['violations'])} violations, "
              f"{len(failures)} oracle failures")
    for failure in failures:
        print(f"  oracle: {failure}", file=sys.stderr)
    return 3 if failures else 0


def _sink_note(hub) -> None:
    """One line saying where a non-default sink put the event stream."""
    if hub is None or hub.sink_spec == "list":
        return
    events = hub.sink_summary()["events"]
    note = (f"telemetry sink {events['kind']}: {events['total']} events, "
            f"{events['retained']} retained in memory")
    if "path" in events:
        note += f" -> {events['path']}"
    print(note)


def _export_trace(hub, path: str) -> None:
    if path.endswith(".jsonl"):
        count = hub.trace.to_jsonl(path)
    else:
        count = hub.trace.to_csv(path)
    print(f"wrote {count} trace events to {path}")


def _emit_bundle(directory: str, hub, metrics, label: str,
                 diagnostics, validation=None) -> None:
    from .telemetry import write_bundle
    paths = write_bundle(directory, hub, metrics, label=label,
                         diagnostics=diagnostics, validation=validation)
    print(f"wrote telemetry bundle ({len(paths)} files) to {directory}")


def _print_report(hub, metrics, label: str, diagnostics,
                  validation=None) -> None:
    from .telemetry import build_report, render_markdown
    print(render_markdown(build_report(metrics, hub, label=label,
                                       diagnostics=diagnostics,
                                       validation=validation)), end="")


def _summary_rows(metrics) -> List[tuple]:
    p99_value = metrics.p99_latency_ticks
    energy = metrics.energy_per_successful_job_mj
    return [
        ("jobs arrived", metrics.num_jobs),
        ("jobs meeting deadline", metrics.jobs_meeting_deadline),
        ("jobs rejected", metrics.jobs_rejected),
        ("deadline ratio", f"{metrics.deadline_ratio:.3f}"),
        ("successful throughput (jobs/s)",
         f"{metrics.successful_throughput:.0f}"),
        ("99p latency (ms)",
         f"{to_ms(p99_value):.3f}" if p99_value is not None else "-"),
        ("energy per successful job (mJ)",
         f"{energy:.4f}" if energy is not None else "-"),
        ("wasted WG fraction", f"{metrics.wasted_wg_fraction:.3f}"),
        ("makespan (ms)", f"{to_ms(metrics.makespan_ticks):.3f}"),
    ]


def _run_single(args) -> int:
    """Run one generated cell; print a table or a full report.

    The cell executes through the serial runner, so an unobserved run
    (no trace/telemetry/report) is served from the persistent result
    cache when its content digest has run before.
    """
    from .harness.spec import RunOptions, single_cell_sweep
    from .validation import InvariantViolation
    spec = ExperimentSpec(benchmark=args.benchmark, scheduler=args.scheduler,
                          rate_level=args.rate, num_jobs=args.jobs,
                          seed=args.seed)
    hub = _make_hub(args, label=spec.describe())
    validator = _make_validator(args)
    options = RunOptions(telemetry=hub, validator=validator,
                         validate=args.validate)
    outcome = _make_runner(args, workers=1).run(single_cell_sweep(spec),
                                                options)
    failure = outcome.failures.get(spec)
    if failure is not None:
        if isinstance(failure.exception, InvariantViolation):
            return _violation_exit(failure.exception, validator, args)
        outcome.raise_failures()
    result = outcome.results[spec]
    metrics = result.metrics
    label = spec.describe()
    validation = result.diagnostics.get("validation")
    if args.command == "report":
        _print_report(hub, metrics, label, result.diagnostics,
                      validation=validation)
    else:
        print(format_table(("metric", "value"), _summary_rows(metrics),
                           title=label))
    if args.trace:
        _export_trace(hub, args.trace)
    if args.emit_telemetry:
        _emit_bundle(args.emit_telemetry, hub, metrics, label,
                     result.diagnostics, validation=validation)
    _sink_note(hub)
    if validation is not None:
        return _validation_outcome(validation,
                                   quiet=args.command == "report")
    return 0


def _save_workload(args) -> int:
    """Generate a benchmark workload and write it to a JSON file."""
    from .config import SimConfig
    from .workloads.registry import build_workload
    from .workloads.serialization import save_workload

    jobs = build_workload(args.benchmark, args.rate, num_jobs=args.jobs,
                          seed=args.seed, gpu=SimConfig().gpu)
    count = save_workload(jobs, args.save_workload)
    print(f"wrote {count} {args.benchmark}@{args.rate} jobs to "
          f"{args.save_workload}")
    return 0


def _run_workload_file(args) -> int:
    """Simulate a workload JSON file under the chosen scheduler."""
    from .config import SimConfig
    from .schedulers.registry import make_scheduler
    from .sim.device import GPUSystem
    from .workloads.serialization import load_workload

    jobs = load_workload(args.workload)
    hub = _make_hub(args, label=os.path.basename(args.workload))
    validator = _make_validator(args)
    system = GPUSystem(make_scheduler(args.scheduler), SimConfig(),
                       telemetry=hub, validator=validator)
    system.submit_workload(jobs)
    if validator is not None:
        from .validation import InvariantViolation
        try:
            metrics = system.run()
        except InvariantViolation as exc:
            return _violation_exit(exc, validator, args)
    else:
        metrics = system.run()
    label = f"{args.workload} under {args.scheduler}"
    diagnostics = {
        "events_fired": system.sim.events_fired,
        "wgs_issued": system.dispatcher.wgs_issued,
        "wgs_preempted": system.dispatcher.wgs_preempted,
        "host_commands": system.host.commands_sent,
        "event_core": _event_core_diagnostics(system),
    }
    validation = None
    if validator is not None:
        from .validation import audit_run
        validation = validator.summary()
        validation["oracle_failures"] = audit_run(system, jobs, metrics)
    if args.command == "report":
        _print_report(hub, metrics, label, diagnostics,
                      validation=validation)
    else:
        p99_value = metrics.p99_latency_ticks
        rows = [
            ("jobs", metrics.num_jobs),
            ("jobs meeting deadline", metrics.jobs_meeting_deadline),
            ("jobs rejected", metrics.jobs_rejected),
            ("wasted WG fraction", f"{metrics.wasted_wg_fraction:.3f}"),
            ("99p latency (ms)",
             f"{to_ms(p99_value):.3f}" if p99_value is not None else "-"),
        ]
        print(format_table(("metric", "value"), rows, title=label))
    if args.trace:
        _export_trace(hub, args.trace)
    if args.emit_telemetry:
        _emit_bundle(args.emit_telemetry, hub, metrics, label, diagnostics,
                     validation=validation)
    _sink_note(hub)
    if validation is not None:
        return _validation_outcome(validation,
                                   quiet=args.command == "report")
    return 0


def _run_stream(args) -> int:
    """Run a lazily streamed SUSTAINED cell at O(live-jobs) memory.

    Jobs are generated on demand by the Poisson sustained-traffic
    source and (unless ``--no-retire``) retired as they reach a
    terminal state, so the run's footprint is bounded by the in-flight
    population no matter how large ``--stream N`` is.  Outcomes fold
    into the stream aggregate; the summary table reads the same
    metrics properties as a finite run.
    """
    from .config import SimConfig
    from .schedulers.registry import make_scheduler
    from .sim.device import GPUSystem
    from .workloads.registry import benchmark_spec
    from .workloads.streaming import sustained_source

    config = SimConfig()
    rate = benchmark_spec(args.benchmark).rate(args.rate)
    source = sustained_source(rate, seed=args.seed, gpu=config.gpu)
    label = (f"{args.benchmark}/{args.scheduler}@{args.rate} "
             f"stream n={args.stream} seed={args.seed}")
    hub = _make_hub(args, label=label)
    validator = _make_validator(args)
    retire = not args.no_retire
    system = GPUSystem(make_scheduler(args.scheduler), config,
                       telemetry=hub, validator=validator, retire=retire)
    stream = source.jobs()
    fed_jobs: List[object] = []
    if validator is not None and not retire:
        # Without retirement the per-job ledgers stay live, so record
        # the fed jobs and let the oracles audit them directly.
        def _recording(jobs):
            for job in jobs:
                fed_jobs.append(job)
                yield job
        stream = _recording(stream)
    system.submit_stream(stream, max_jobs=args.stream)
    if validator is not None:
        from .validation import InvariantViolation
        try:
            metrics = system.run()
        except InvariantViolation as exc:
            return _violation_exit(exc, validator, args)
    else:
        metrics = system.run()
    diagnostics = {
        "events_fired": system.sim.events_fired,
        "wgs_issued": system.dispatcher.wgs_issued,
        "wgs_preempted": system.dispatcher.wgs_preempted,
        "host_commands": system.host.commands_sent,
        "jobs_retired": metrics.stream.jobs if metrics.stream else 0,
        "event_core": _event_core_diagnostics(system),
    }
    validation = None
    if validator is not None:
        from .validation import audit_run
        validation = validator.summary()
        # With retirement on, terminal jobs carry no kernel state and
        # the oracles read the banked stream aggregate instead.
        validation["oracle_failures"] = audit_run(system, fed_jobs, metrics)
    if args.command == "report":
        _print_report(hub, metrics, label, diagnostics,
                      validation=validation)
    else:
        print(format_table(("metric", "value"), _summary_rows(metrics),
                           title=label))
    if args.trace:
        _export_trace(hub, args.trace)
    if args.emit_telemetry:
        _emit_bundle(args.emit_telemetry, hub, metrics, label, diagnostics,
                     validation=validation)
    _sink_note(hub)
    if validation is not None:
        return _validation_outcome(validation,
                                   quiet=args.command == "report")
    return 0


def _run_cluster(args) -> int:
    """Run a routed multi-device fleet; print the fleet summary table.

    A finite cell routes the generated workload across the devices; a
    ``--stream N`` run offers ``--devices`` times the per-device
    sustained rate through one front door, so a balanced router loads
    each device like the single-device cell at the same level.
    ``--workers`` fans the per-device simulations out over processes
    (bit-identical to serial).
    """
    from .cluster import ClusterSystem
    from .config import SimConfig
    from .workloads.registry import benchmark_spec, build_workload
    from .workloads.streaming import sustained_fleet_source

    config = SimConfig()
    router = args.router if args.router is not None else "laxity"
    fleet = ClusterSystem(
        args.scheduler, config, num_devices=args.devices, router=router,
        seed=args.seed, validate=args.validate, workers=args.workers,
        retire=(not args.no_retire) if args.stream is not None else None)
    if args.stream is not None:
        rate = benchmark_spec(args.benchmark).rate(args.rate)
        source = sustained_fleet_source(args.devices, rate,
                                        seed=args.seed, gpu=config.gpu)
        fleet.submit_stream(source, max_jobs=args.stream)
        label = (f"{args.benchmark}/{args.scheduler}@{args.rate} "
                 f"x{args.devices} router={router} stream n={args.stream} "
                 f"seed={args.seed}")
    else:
        fleet.submit_workload(build_workload(
            args.benchmark, args.rate, args.jobs, seed=args.seed))
        label = (f"{args.benchmark}/{args.scheduler}@{args.rate} "
                 f"x{args.devices} router={router} n={args.jobs} "
                 f"seed={args.seed}")
    if args.validate:
        from .validation import InvariantViolation
        try:
            metrics = fleet.run()
        except InvariantViolation as exc:
            return _violation_exit(exc, None, args)
    else:
        metrics = fleet.run()
    p99_value = metrics.p99_latency_ticks
    rows = [
        ("jobs arrived", metrics.num_jobs),
        ("jobs meeting deadline", metrics.jobs_meeting_deadline),
        ("jobs rejected (router)", metrics.router_rejected),
        ("jobs rejected (total)", metrics.jobs_rejected),
        ("fleet SLO attainment", f"{metrics.deadline_ratio:.3f}"),
        ("load imbalance (jobs max/mean)", f"{metrics.load_imbalance:.3f}"),
        ("work imbalance (WGs max/mean)", f"{metrics.work_imbalance:.3f}"),
        ("99p latency (ms)",
         f"{to_ms(p99_value):.3f}" if p99_value is not None else "-"),
        ("device wall-clock (s)", f"{metrics.wall_seconds:.2f}"),
    ]
    for index, size in enumerate(metrics.lane_sizes):
        attainment = metrics.per_device_attainment[index]
        rows.append((f"device {index}",
                     f"{size} jobs, SLO {attainment:.3f}"))
    print(format_table(("metric", "value"), rows, title=label))
    if args.validate:
        checks = sum(
            1 for diag in metrics.diagnostics if diag is not None)
        print(f"validation: router conservation ok, invariant checker "
              f"attached to {checks} device runs")
    return 0


def _comparison_row(name, metrics) -> tuple:
    p99_value = metrics.p99_latency_ticks
    return (
        name,
        f"{metrics.jobs_meeting_deadline}/{metrics.num_jobs}",
        metrics.jobs_rejected,
        f"{metrics.wasted_wg_fraction * 100:.0f}%",
        f"{to_ms(p99_value):.3f}" if p99_value is not None else "-",
        f"{metrics.successful_throughput:.0f}",
    )


def _print_comparison(args, rows) -> None:
    print(format_table(
        ("scheduler", "met deadline", "rejected", "wasted", "p99 (ms)",
         "throughput (jobs/s)"),
        rows,
        title=f"{args.benchmark}@{args.rate} n={args.jobs} seed={args.seed}"))


def _oracle_exit_code(name, validation) -> int:
    """Print a scheduler's oracle failures; 3 when any, else 0."""
    if validation is not None and validation.get("oracle_failures"):
        for failure in validation["oracle_failures"]:
            print(f"  oracle ({name}): {failure}", file=sys.stderr)
        return 3
    return 0


def _compare(args) -> int:
    """Run one (benchmark, rate) cell under several schedulers.

    The sweep executes through the parallel runner (``--workers N``
    fans schedulers out over processes; results are identical to
    serial) with the persistent result cache in front.  With
    ``--emit-telemetry DIR`` the sweep runs serially in-process and
    each scheduler's bundle lands in its own ``DIR/<scheduler>/``
    subdirectory.
    """
    known = set(scheduler_names())
    for name in args.compare:
        if name not in known:
            print(f"unknown scheduler {name!r}; known: "
                  f"{', '.join(sorted(known))}")
            return 2
    if args.emit_telemetry:
        return _compare_with_bundles(args)

    from .harness.spec import RunOptions, SweepSpec
    sweep = SweepSpec(benchmarks=(args.benchmark,),
                      schedulers=tuple(args.compare),
                      rate_levels=(args.rate,), seeds=(args.seed,),
                      num_jobs=args.jobs)

    def report_progress(done, total, spec, source):
        tag = {"cache": "cached", "run": "ran", "failed": "FAILED"}[source]
        print(f"[{done}/{total}] {spec.describe()} ({tag})",
              file=sys.stderr)

    runner = _make_runner(args, workers=args.workers,
                          on_progress=report_progress)
    outcome = runner.run(sweep, RunOptions(validate=args.validate))
    exit_code = 0
    for failure in outcome.failures.values():
        if failure.kind == "invariant":
            print(f"error: {failure.message}", file=sys.stderr)
            for key, value in sorted(failure.context.items()):
                print(f"  {key}: {value}", file=sys.stderr)
            exit_code = 3
        else:
            print(f"error: {failure.describe()}", file=sys.stderr)
            exit_code = exit_code or 1
    rows = []
    for spec, result in outcome.results.items():
        validation = result.diagnostics.get("validation")
        oracle_code = _oracle_exit_code(spec.scheduler, validation)
        exit_code = exit_code or oracle_code
        rows.append(_comparison_row(spec.scheduler, result.metrics))
    _print_comparison(args, rows)
    print(outcome.describe())
    return exit_code


def _compare_with_bundles(args) -> int:
    """Serial comparison that writes one telemetry bundle per scheduler."""
    exit_code = 0
    rows = []
    for name in args.compare:
        spec = ExperimentSpec(benchmark=args.benchmark, scheduler=name,
                              rate_level=args.rate, num_jobs=args.jobs,
                              seed=args.seed)
        hub = _make_hub(args, label=spec.describe(),
                        sink_dir=os.path.join(args.emit_telemetry, name))
        validator = _make_validator(args)
        if validator is not None:
            from .validation import InvariantViolation
            try:
                result = run_cell(spec, telemetry=hub, validator=validator)
            except InvariantViolation as exc:
                return _violation_exit(exc, validator, args)
        else:
            result = run_cell(spec, telemetry=hub)
        metrics = result.metrics
        validation = result.diagnostics.get("validation")
        _emit_bundle(os.path.join(args.emit_telemetry, name), hub,
                     metrics, spec.describe(), result.diagnostics,
                     validation=validation)
        exit_code = exit_code or _oracle_exit_code(name, validation)
        rows.append(_comparison_row(name, metrics))
    _print_comparison(args, rows)
    return exit_code


if __name__ == "__main__":  # pragma: no cover - manual entry
    sys.exit(main())
