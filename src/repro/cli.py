"""Command-line front end: run one experiment cell and print its summary.

Examples::

    lax-sim --benchmark LSTM --scheduler LAX --rate high
    lax-sim --benchmark IPV6 --scheduler RR --rate medium --jobs 64
    lax-sim --list
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .harness.experiment import ExperimentSpec, run_cell
from .harness.formatting import format_table
from .schedulers.registry import scheduler_names
from .sim.time import to_ms
from .workloads.registry import BENCHMARK_ORDER, RATE_LEVELS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lax-sim",
        description=("Simulate one (benchmark, scheduler, arrival rate) "
                     "cell of the LAX evaluation (HPCA 2021)."))
    parser.add_argument("--benchmark", default="LSTM",
                        choices=list(BENCHMARK_ORDER))
    parser.add_argument("--scheduler", default="LAX",
                        choices=scheduler_names())
    parser.add_argument("--rate", default="high", choices=list(RATE_LEVELS),
                        help="arrival-rate level from Table 4")
    parser.add_argument("--jobs", type=int, default=128,
                        help="jobs to simulate (paper uses 128)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--list", action="store_true",
                        help="list benchmarks and schedulers, then exit")
    parser.add_argument("--compare", nargs="+", metavar="SCHED",
                        help="run several schedulers on the same cell and "
                             "print a comparison table")
    parser.add_argument("--trace", metavar="PATH",
                        help="record a WG-level event trace of the run to "
                             "PATH (.jsonl or .csv)")
    parser.add_argument("--workload", metavar="FILE",
                        help="run a workload JSON file instead of a "
                             "generated benchmark")
    parser.add_argument("--save-workload", metavar="FILE",
                        help="write the generated workload to FILE and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``lax-sim`` console script."""
    args = _build_parser().parse_args(argv)
    if args.list:
        print("benchmarks:", ", ".join(BENCHMARK_ORDER))
        print("schedulers:", ", ".join(scheduler_names()))
        print("rate levels:", ", ".join(RATE_LEVELS))
        return 0
    if args.save_workload:
        return _save_workload(args)
    if args.workload:
        return _run_workload_file(args)
    if args.compare:
        return _compare(args)
    if args.trace:
        return _traced_run(args)
    spec = ExperimentSpec(benchmark=args.benchmark, scheduler=args.scheduler,
                          rate_level=args.rate, num_jobs=args.jobs,
                          seed=args.seed)
    result = run_cell(spec)
    metrics = result.metrics
    p99_value = metrics.p99_latency_ticks
    energy = metrics.energy_per_successful_job_mj
    rows = [
        ("jobs arrived", metrics.num_jobs),
        ("jobs meeting deadline", metrics.jobs_meeting_deadline),
        ("jobs rejected", metrics.jobs_rejected),
        ("deadline ratio", f"{metrics.deadline_ratio:.3f}"),
        ("successful throughput (jobs/s)",
         f"{metrics.successful_throughput:.0f}"),
        ("99p latency (ms)",
         f"{to_ms(int(p99_value)):.3f}" if p99_value is not None else "-"),
        ("energy per successful job (mJ)",
         f"{energy:.4f}" if energy is not None else "-"),
        ("wasted WG fraction", f"{metrics.wasted_wg_fraction:.3f}"),
        ("makespan (ms)", f"{to_ms(metrics.makespan_ticks):.3f}"),
    ]
    print(format_table(("metric", "value"), rows, title=spec.describe()))
    return 0


def _save_workload(args) -> int:
    """Generate a benchmark workload and write it to a JSON file."""
    from .config import SimConfig
    from .workloads.registry import build_workload
    from .workloads.serialization import save_workload

    jobs = build_workload(args.benchmark, args.rate, num_jobs=args.jobs,
                          seed=args.seed, gpu=SimConfig().gpu)
    count = save_workload(jobs, args.save_workload)
    print(f"wrote {count} {args.benchmark}@{args.rate} jobs to "
          f"{args.save_workload}")
    return 0


def _run_workload_file(args) -> int:
    """Simulate a workload JSON file under the chosen scheduler."""
    from .config import SimConfig
    from .schedulers.registry import make_scheduler
    from .sim.device import GPUSystem
    from .workloads.serialization import load_workload

    jobs = load_workload(args.workload)
    system = GPUSystem(make_scheduler(args.scheduler), SimConfig())
    system.submit_workload(jobs)
    metrics = system.run()
    p99_value = metrics.p99_latency_ticks
    rows = [
        ("jobs", metrics.num_jobs),
        ("jobs meeting deadline", metrics.jobs_meeting_deadline),
        ("jobs rejected", metrics.jobs_rejected),
        ("wasted WG fraction", f"{metrics.wasted_wg_fraction:.3f}"),
        ("99p latency (ms)",
         f"{to_ms(int(p99_value)):.3f}" if p99_value is not None else "-"),
    ]
    print(format_table(("metric", "value"), rows,
                       title=f"{args.workload} under {args.scheduler}"))
    return 0


def _traced_run(args) -> int:
    """Run one cell with WG-level tracing and export the event stream."""
    from .config import SimConfig
    from .schedulers.registry import make_scheduler
    from .sim.device import GPUSystem
    from .sim.trace import TraceRecorder
    from .workloads.registry import build_workload

    if not args.trace.endswith((".jsonl", ".csv")):
        print("--trace expects a .jsonl or .csv path")
        return 2
    config = SimConfig()
    trace = TraceRecorder(wg_events=True)
    system = GPUSystem(make_scheduler(args.scheduler), config, trace=trace)
    system.submit_workload(build_workload(
        args.benchmark, args.rate, num_jobs=args.jobs, seed=args.seed,
        gpu=config.gpu))
    metrics = system.run()
    if args.trace.endswith(".jsonl"):
        count = trace.to_jsonl(args.trace)
    else:
        count = trace.to_csv(args.trace)
    print(f"{args.benchmark}/{args.scheduler}@{args.rate}: "
          f"{metrics.jobs_meeting_deadline}/{metrics.num_jobs} met deadline; "
          f"wrote {count} events to {args.trace}")
    return 0


def _compare(args) -> int:
    """Run one (benchmark, rate) cell under several schedulers."""
    known = set(scheduler_names())
    rows = []
    for name in args.compare:
        if name not in known:
            print(f"unknown scheduler {name!r}; known: "
                  f"{', '.join(sorted(known))}")
            return 2
        spec = ExperimentSpec(benchmark=args.benchmark, scheduler=name,
                              rate_level=args.rate, num_jobs=args.jobs,
                              seed=args.seed)
        metrics = run_cell(spec).metrics
        p99_value = metrics.p99_latency_ticks
        rows.append((
            name,
            f"{metrics.jobs_meeting_deadline}/{metrics.num_jobs}",
            metrics.jobs_rejected,
            f"{metrics.wasted_wg_fraction * 100:.0f}%",
            f"{to_ms(int(p99_value)):.3f}" if p99_value is not None else "-",
            f"{metrics.successful_throughput:.0f}",
        ))
    print(format_table(
        ("scheduler", "met deadline", "rejected", "wasted", "p99 (ms)",
         "throughput (jobs/s)"),
        rows,
        title=f"{args.benchmark}@{args.rate} n={args.jobs} seed={args.seed}"))
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry
    sys.exit(main())
