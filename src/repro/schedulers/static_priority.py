"""Static-priority CP schedulers: SJF, LJF and EDF (Table 3).

Each assigns every job a fixed priority at admission:

* **SJF** — shortest job first, using the offline-profiled isolated
  runtime of the whole kernel chain;
* **LJF** — longest job first (the mirror image);
* **EDF** — earliest absolute deadline first, non-preemptive: the ranking
  applies whenever WG slots free up, but running WGs are never evicted
  (Section 5.1 explains why preemptive EDF is hopeless at these time
  scales).

All three extend the CP (no host overheads) but, unlike LAX, never adjust
priorities after admission and never reject work.
"""

from __future__ import annotations

from ..sim.job import Job
from .base import SchedulerPolicy


class ShortestJobFirstScheduler(SchedulerPolicy):
    """SJF over offline-profiled total job runtimes."""

    name = "SJF"

    def on_job_admitted(self, job: Job) -> None:
        job.priority = float(job.isolated_time(self.ctx.config.gpu))


class LongestJobFirstScheduler(SchedulerPolicy):
    """LJF: the longest offline-profiled job runs first."""

    name = "LJF"

    def on_job_admitted(self, job: Job) -> None:
        job.priority = -float(job.isolated_time(self.ctx.config.gpu))


class EarliestDeadlineFirstScheduler(SchedulerPolicy):
    """Non-preemptive EDF over absolute deadlines."""

    name = "EDF"

    def on_job_admitted(self, job: Job) -> None:
        deadline = job.absolute_deadline
        job.priority = float(deadline) if deadline is not None else float("inf")
