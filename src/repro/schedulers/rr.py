"""Round-robin (RR): the contemporary GPU baseline (Section 2.1).

Modern CPs process compute queues cyclically and deadline-blind.  The
policy keeps a rotating pointer over queue ids; each dispatch pump ranks
active kernels by their queue's distance from the pointer, and after a pump
that issued work the pointer advances past the last queue served, so
service rotates fairly across the 128 queues.
"""

from __future__ import annotations

from typing import List, Sequence

from ..sim.kernel import KernelInstance
from .base import SchedulerPolicy


class RoundRobinScheduler(SchedulerPolicy):
    """Deadline-blind cyclic queue service."""

    name = "RR"

    def __init__(self) -> None:
        super().__init__()
        self._pointer = 0

    def _distance(self, kernel: KernelInstance) -> int:
        num_queues = self.ctx.config.gpu.num_queues
        queue_id = kernel.job.queue_id
        if queue_id is None:
            return num_queues  # not yet bound; serve last
        return (queue_id - self._pointer) % num_queues

    def issue_order(self, kernels: Sequence[KernelInstance]) -> List[KernelInstance]:
        return sorted(kernels, key=lambda k: (self._distance(k), k.job.job_id))

    def on_kernels_served(self, kernels: Sequence[KernelInstance]) -> None:
        served = [k for k in kernels if k.job.queue_id is not None]
        if not served:
            return
        num_queues = self.ctx.config.gpu.num_queues
        farthest = max(self._distance(k) for k in served)
        previous = self._pointer
        self._pointer = (self._pointer + farthest + 1) % num_queues
        if self.decisions_enabled:
            self.emit_decision("queue_rotation", pointer=self._pointer,
                               previous=previous, served=len(served))
