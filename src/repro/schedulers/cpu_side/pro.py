"""PRO: Prophet-style offline-profiled co-scheduling (Chen et al.,
ASPLOS 2017).

Prophet profiles kernels offline and co-locates jobs up to a predicted
utilisation bound, aiming at throughput/QoS for *mixed* workloads.  On the
paper's purely latency-sensitive, homogeneous workloads its behaviour
degrades to FCFS dispatch under a utilisation cap with interference-blind
QoS estimates:

* dispatch order is arrival order (no deadline awareness);
* a job is dispatched while the sum of in-flight jobs' peak thread
  footprints stays under the device's thread capacity — Prophet's
  utilisation-driven co-scheduling knob;
* its QoS check uses the *isolated* runtime ("conservative QoS estimates
  that do not consider overlapping kernels" — i.e. blind to contention),
  so a job is only dropped when even an idle GPU could not finish it;
  everything else is offloaded and frequently misses, which is why the
  paper measures PRO wasting 65 % of its work;
* no online prediction cost (profiling is offline), but kernels still
  chain through the host at 4 us per crossing.
"""

from __future__ import annotations

from typing import Dict, List

from ...sim.job import Job
from ...sim.kernel import KernelInstance
from .base import HostSchedulerPolicy


class ProphetScheduler(HostSchedulerPolicy):
    """FCFS dispatch under an offline-profiled utilisation cap."""

    name = "PRO"

    def __init__(self, utilization_cap: float = 1.0) -> None:
        super().__init__()
        self._cap = utilization_cap
        self._pending: List[Job] = []
        #: job_id -> peak thread footprint of the in-flight job.
        self._inflight_threads: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Arrival
    # ------------------------------------------------------------------

    def host_on_job_arrival(self, job: Job) -> None:
        self._pending.append(job)
        self._dispatch_loop()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    @staticmethod
    def _peak_threads(job: Job) -> int:
        return max(k.descriptor.total_threads for k in job.kernels)

    def _device_thread_capacity(self) -> int:
        gpu = self.ctx.config.gpu
        return gpu.num_cus * gpu.threads_per_cu

    def _dispatch_loop(self) -> None:
        now = self.ctx.now
        budget = self._cap * self._device_thread_capacity()
        used = sum(self._inflight_threads.values())
        remaining: List[Job] = []
        for job in self.fcfs(self._pending):
            isolated = job.isolated_time(self.ctx.config.gpu)
            deadline = job.absolute_deadline
            if deadline is not None and now + isolated > deadline:
                # Even an idle GPU cannot finish it: drop.
                self.ctx.host.reject_job(job)
                continue
            footprint = self._peak_threads(job)
            if used + footprint <= budget:
                used += footprint
                self._inflight_threads[job.job_id] = footprint
                self.ctx.host.submit_job(job, release=1)
            else:
                remaining.append(job)
        self._pending = remaining

    # ------------------------------------------------------------------
    # Device feedback
    # ------------------------------------------------------------------

    def host_on_kernel_complete(self, kernel: KernelInstance) -> None:
        self.chain_next_kernel(kernel)

    def host_on_job_complete(self, job: Job) -> None:
        self._inflight_threads.pop(job.job_id, None)
        self._dispatch_loop()
