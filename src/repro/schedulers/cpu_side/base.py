"""Base class for CPU-side (host) scheduling policies.

BAT, BAY, PRO and the LAX-SW/LAX-CPU variants run on the simulated CPU and
drive the GPU through the :class:`~repro.sim.host.Host` command channel.
The base class gives them:

* arrival interception — jobs land on the host, not the CP;
* delayed device-event delivery — ``host_on_kernel_complete`` /
  ``host_on_job_complete`` fire one interconnect crossing after the device
  event, modelling the notification latency the paper charges CPU-side
  schedulers;
* a per-kernel chaining helper — the host launch pattern in which kernel
  ``i + 1`` is only sent after the host hears kernel ``i`` finished, which
  is what costs "4 us of host-device communication overhead per kernel in
  a job" (Section 5.1) in each direction.

On the device, everything a host policy submits is scheduled round-robin
(the contemporary CP default) unless the policy writes queue priorities.
"""

from __future__ import annotations

from typing import List, Sequence

from ...sim.job import Job
from ...sim.kernel import KernelInstance
from ..base import SchedulerPolicy


class HostSchedulerPolicy(SchedulerPolicy):
    """CPU-side policy plumbing; subclasses implement the ``host_on_*`` hooks."""

    host_side = True

    # ------------------------------------------------------------------
    # Arrival path
    # ------------------------------------------------------------------

    def on_job_arrival(self, job: Job) -> None:
        """Jobs arrive at the host; subclasses decide when to offload."""
        self.host_on_job_arrival(job)

    def host_on_job_arrival(self, job: Job) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Device events relayed with interconnect latency
    # ------------------------------------------------------------------

    def on_kernel_complete(self, kernel: KernelInstance) -> None:
        self.ctx.host.notify(self._deliver_kernel_complete, kernel)

    def on_job_complete(self, job: Job) -> None:
        self.ctx.host.notify(self._deliver_job_complete, job)

    def _deliver_kernel_complete(self, kernel: KernelInstance) -> None:
        # A job-completion notification may race ahead in subclass state;
        # only forward events for jobs the host still cares about.
        self.host_on_kernel_complete(kernel)

    def _deliver_job_complete(self, job: Job) -> None:
        self.host_on_job_complete(job)

    def host_on_kernel_complete(self, kernel: KernelInstance) -> None:
        """Host learns one kernel finished (latency already applied)."""

    def host_on_job_complete(self, job: Job) -> None:
        """Host learns one job finished (latency already applied)."""

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def chain_next_kernel(self, kernel: KernelInstance) -> bool:
        """Launch the kernel after ``kernel`` in its job, if any.

        Returns True when a launch was sent.  This is the host-side
        chaining pattern: each boundary costs a notification crossing (the
        caller got here through one) plus this launch crossing.
        """
        job = kernel.job
        if job.is_done:
            return False
        if kernel.index + 1 >= job.num_kernels:
            return False
        self.ctx.host.release_next_kernel(job)
        return True

    @staticmethod
    def fcfs(jobs: Sequence[Job]) -> List[Job]:
        """Jobs in arrival order (deterministic tie-break by id)."""
        return sorted(jobs, key=lambda j: (j.arrival, j.job_id))
