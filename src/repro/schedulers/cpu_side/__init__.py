"""CPU-side scheduling policies (host software driving the GPU)."""

from .base import HostSchedulerPolicy
from .bat import BatchMakerScheduler, batch_key
from .bay import BaymaxScheduler
from .lax_host import LaxCpuScheduler, LaxSoftwareScheduler
from .pro import ProphetScheduler

__all__ = [
    "BatchMakerScheduler",
    "BaymaxScheduler",
    "HostSchedulerPolicy",
    "LaxCpuScheduler",
    "LaxSoftwareScheduler",
    "ProphetScheduler",
    "batch_key",
]
