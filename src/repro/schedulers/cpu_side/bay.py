"""BAY: Baymax-style QoS-headroom scheduling (Chen et al., ASPLOS 2016).

Baymax pre-trains regression models that predict each job's execution time,
then orders pending jobs by QoS headroom and limits how much predicted work
is outstanding on the accelerator so that nothing overruns its QoS target.

Model here:

* every arrival pays the paper's **50 us prediction-model invocation**
  before the host can act on it (Section 5.1) — this alone makes every
  40 us-deadline IPV6 job hopeless, the effect the paper highlights;
* the prediction itself is the offline isolated runtime (Baymax's models
  are accurate in steady state, but static — they do not see current
  device contention, unlike LAX's completion-rate estimates);
* pending jobs are served smallest-headroom-first; a job is dispatched
  when the predicted outstanding work (serial drain of in-flight
  predictions) plus its own prediction fits inside its deadline, and
  dropped (never offloaded) otherwise — the conservative behaviour the
  paper credits for BAY's low wasted work;
* kernels chain through the host at 4 us per crossing.
"""

from __future__ import annotations

from typing import Dict, List

from ...core.admission import fits_free_capacity
from ...sim.job import Job
from ...sim.kernel import KernelInstance
from .base import HostSchedulerPolicy


class BaymaxScheduler(HostSchedulerPolicy):
    """QoS-headroom admission with static runtime predictions."""

    name = "BAY"

    def __init__(self) -> None:
        super().__init__()
        self._pending: List[Job] = []
        #: job_id -> (prediction, dispatch time); host view of in-flight work.
        self._inflight: Dict[int, tuple] = {}
        self._predictions: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Arrival: run the regression model, then consider dispatch
    # ------------------------------------------------------------------

    def host_on_job_arrival(self, job: Job) -> None:
        latency = self.ctx.config.overheads.baymax_prediction_latency
        self.ctx.sim.schedule(latency, self._on_predicted, job)

    def _on_predicted(self, job: Job) -> None:
        self._predictions[job.job_id] = float(
            job.isolated_time(self.ctx.config.gpu))
        self._pending.append(job)
        self._dispatch_loop()

    # ------------------------------------------------------------------
    # Dispatch: smallest headroom first, bounded outstanding work
    # ------------------------------------------------------------------

    def _headroom(self, job: Job, now: int) -> float:
        """Time to deadline minus predicted runtime (inf when deadline-less)."""
        deadline = job.absolute_deadline
        if deadline is None:
            return float("inf")
        return (deadline - now) - self._predictions[job.job_id]

    def _outstanding(self, now: int) -> float:
        """Predicted work still on the device (host's static view)."""
        total = 0.0
        for prediction, dispatched in self._inflight.values():
            total += max(0.0, prediction - (now - dispatched))
        return total

    def _dispatch_loop(self) -> None:
        now = self.ctx.now
        self._purge_hopeless(now)
        self._pending.sort(key=lambda j: (self._headroom(j, now), j.job_id))
        while self._pending:
            job = self._pending[0]
            prediction = self._predictions[job.job_id]
            finish = now + self._outstanding(now) + prediction
            # Baymax co-locates for utilisation: a job fitting in free
            # full-rate slots is dispatched regardless of the serial-drain
            # headroom estimate.
            utilization_ok = fits_free_capacity(job, self.ctx.dispatcher.cus)
            deadline_ok = (job.absolute_deadline is None
                           or finish <= job.absolute_deadline)
            if not deadline_ok and not utilization_ok:
                # Headroom exhausted right now; wait for in-flight work to
                # drain (the loop reruns on every completion).
                break
            self._pending.pop(0)
            self._inflight[job.job_id] = (prediction, now)
            self.ctx.host.submit_job(job, release=1)

    def _purge_hopeless(self, now: int) -> None:
        """Drop jobs that cannot make their deadline even on an idle GPU."""
        keep: List[Job] = []
        for job in self._pending:
            deadline = job.absolute_deadline
            if deadline is not None and (
                    now + self._predictions[job.job_id] > deadline):
                self._predictions.pop(job.job_id, None)
                self.ctx.host.reject_job(job)
            else:
                keep.append(job)
        self._pending = keep

    # ------------------------------------------------------------------
    # Device feedback
    # ------------------------------------------------------------------

    def host_on_kernel_complete(self, kernel: KernelInstance) -> None:
        self.chain_next_kernel(kernel)

    def host_on_job_complete(self, job: Job) -> None:
        self._inflight.pop(job.job_id, None)
        self._predictions.pop(job.job_id, None)
        self._dispatch_loop()
