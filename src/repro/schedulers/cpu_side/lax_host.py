"""CPU-side laxity variants: LAX-SW and LAX-CPU (Section 6.1.3).

Both run LAX's algorithms — Little's-Law admission and laxity-ordered
priorities — from host software, answering the paper's question "is
CPU-side LAX scheduling sufficient?":

* **LAX-SW** cannot touch device priorities (stock API).  It enforces its
  laxity ordering by *release control*: only the ``window`` least-lax jobs
  have kernels in flight; every kernel boundary costs a completion
  notification plus a launch crossing (4 us each way), which is what
  hobbles it on many-kernel jobs.
* **LAX-CPU** assumes an API extension that exposes the queue-priority
  registers to user software.  It releases each accepted job's whole
  stream at once (the device chains kernels itself) and rewrites queue
  priorities every 100 us, each write landing one crossing late.

Both read the device's completion-rate counters when their control loop
runs; the counters are window-averaged so the extra crossing of staleness
is second-order and not modelled separately.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ...core.admission import (fits_free_capacity,
                               remaining_time_or_deadline,
                               steady_state_pass)
from ...core.laxity import estimate_remaining_time, laxity_priority
from ...sim.engine import PeriodicTask
from ...sim.job import Job
from ...sim.kernel import KernelInstance
from .base import HostSchedulerPolicy


class _LaxityHostBase(HostSchedulerPolicy):
    """Shared host-side admission and update-loop plumbing."""

    def __init__(self) -> None:
        super().__init__()
        self._accepted: Dict[int, Job] = {}
        self._loop: Optional[PeriodicTask] = None

    def start(self) -> None:
        self._loop = PeriodicTask(
            self.ctx.sim, self.ctx.config.overheads.lax_update_period,
            self._control_loop, lambda: bool(self._accepted))

    # -- admission (Algorithm 1, run on the host) -----------------------

    def _admit(self, job: Job) -> bool:
        if job.deadline is None:
            return True  # latency-insensitive work is never gated
        now = self.ctx.now
        profiler = self.ctx.profiler
        # Free-capacity fast path: the host polls device occupancy (its
        # view is one crossing stale, which the reservation discount for
        # not-yet-running accepted jobs largely covers).
        reserved = 0
        for other in self._accepted.values():
            if other.state.value in ("init", "ready"):
                kernel = other.next_kernel()
                if kernel is not None:
                    reserved += kernel.wgs_pending
        if fits_free_capacity(job, self.ctx.dispatcher.cus, reserved):
            return True
        outstanding = sum(
            remaining_time_or_deadline(j, profiler, now)
            for j in self._accepted.values() if j.is_latency_sensitive)
        own = estimate_remaining_time(job, profiler, now)
        if own <= 0.0:
            if outstanding <= 0.0:
                return True
            own = float(job.deadline)
        return outstanding + own + job.elapsed(now) < job.deadline

    def host_on_job_arrival(self, job: Job) -> None:
        if not self._admit(job):
            self.ctx.host.reject_job(job)
            return
        if not job.is_latency_sensitive:
            # Queue-priority register is set before the stream is ever
            # submitted, so best-effort work backfills from the start.
            job.priority = float("inf")
        self._accepted[job.job_id] = job
        self._on_accepted(job)
        self._loop.ensure_running()

    def host_on_job_complete(self, job: Job) -> None:
        self._accepted.pop(job.job_id, None)

    def on_job_rejected(self, job: Job) -> None:
        # Fired when a host-issued cancel lands on the device.
        self._accepted.pop(job.job_id, None)

    def _late_reject_pass(self) -> None:
        """Algorithm 1's continuous sweep, run from host software."""
        ordered = sorted(self._accepted.values(),
                         key=lambda j: (j.arrival, j.job_id))
        offloaded = [j for j in ordered if j.state.value != "init"]
        for job in steady_state_pass(offloaded, self.ctx.profiler,
                                     self.ctx.now):
            self._accepted.pop(job.job_id, None)
            self.ctx.host.cancel_job(job)

    # -- subclass surface ------------------------------------------------

    def _on_accepted(self, job: Job) -> None:
        raise NotImplementedError

    def _control_loop(self) -> None:
        raise NotImplementedError


class LaxSoftwareScheduler(_LaxityHostBase):
    """LAX-SW: laxity ordering via host release control only."""

    name = "LAX-SW"

    def __init__(self, window: int = 8) -> None:
        super().__init__()
        #: Number of least-lax jobs allowed kernels in flight at once.
        self._window = window
        self._started: Set[int] = set()
        self._awaiting_release: Set[int] = set()
        self._selected: Set[int] = set()

    def _on_accepted(self, job: Job) -> None:
        self._control_loop()

    def _control_loop(self) -> None:
        self._late_reject_pass()
        now = self.ctx.now
        profiler = self.ctx.profiler
        jobs = sorted(
            self._accepted.values(),
            key=lambda j: (laxity_priority(j, profiler, now),
                           j.arrival, j.job_id))
        self._selected = {j.job_id for j in jobs[:self._window]}
        for job in jobs[:self._window]:
            if job.job_id not in self._started:
                self._started.add(job.job_id)
                self.ctx.host.submit_job(job, release=1)
            elif job.job_id in self._awaiting_release:
                self._awaiting_release.discard(job.job_id)
                self.ctx.host.release_next_kernel(job)

    def host_on_kernel_complete(self, kernel: KernelInstance) -> None:
        job = kernel.job
        if job.is_done or kernel.index + 1 >= job.num_kernels:
            return
        if job.job_id in self._selected:
            self.ctx.host.release_next_kernel(job)
        else:
            self._awaiting_release.add(job.job_id)

    def host_on_job_complete(self, job: Job) -> None:
        super().host_on_job_complete(job)
        self._forget(job)
        self._control_loop()

    def on_job_rejected(self, job: Job) -> None:
        super().on_job_rejected(job)
        self._forget(job)

    def _forget(self, job: Job) -> None:
        self._started.discard(job.job_id)
        self._awaiting_release.discard(job.job_id)
        self._selected.discard(job.job_id)


class LaxCpuScheduler(_LaxityHostBase):
    """LAX-CPU: laxity priorities written through a user-level API."""

    name = "LAX-CPU"

    def _on_accepted(self, job: Job) -> None:
        # Whole stream released at once; the device chains kernels.
        self.ctx.host.submit_job(job, release=job.num_kernels)

    def _control_loop(self) -> None:
        self._late_reject_pass()
        now = self.ctx.now
        profiler = self.ctx.profiler
        for job in self._accepted.values():
            self.ctx.host.set_priority(
                job, laxity_priority(job, profiler, now))
