"""BAT: BatchMaker-style dynamic batching (Gao et al., EuroSys 2018).

BatchMaker batches RNN inference requests at cell granularity: requests
that arrive together execute their common kernels as one batch, in
lock-step.  The model here preserves per-job identity — a batch is a set
of jobs whose kernel *step i* launches only when every member has finished
step ``i - 1`` — while charging host communication once per batch step
rather than once per member, which is exactly batching's efficiency win.

The paper's criticisms emerge naturally: members wait for the whole batch
at every step (lock-step latency), jobs arriving while a batch of their
kind is in flight wait for the *next* batch, and nothing consults
deadlines.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...sim.job import Job
from ...sim.kernel import KernelInstance
from .base import HostSchedulerPolicy


def batch_key(job: Job) -> str:
    """Jobs batch together when they run the same model.

    The tag's model prefix (e.g. ``"lstm-128"`` in ``"lstm-128:seq=12"``)
    separates the two model families inside HYBRID; plain benchmarks batch
    by name.
    """
    if job.tag and ":" in job.tag:
        return job.tag.split(":", 1)[0]
    return job.benchmark


class _Batch:
    """One in-flight lock-step batch."""

    __slots__ = ("members", "step", "outstanding")

    def __init__(self, members: List[Job]) -> None:
        self.members = members
        self.step = 0
        #: Members whose current-step kernel has not completed yet.
        self.outstanding = 0


class BatchMakerScheduler(HostSchedulerPolicy):
    """Dynamic batching with lock-step execution (deadline-blind)."""

    name = "BAT"

    def __init__(self, max_batch: int = 16) -> None:
        super().__init__()
        self._max_batch = max_batch
        self._open: Dict[str, List[Job]] = {}
        self._inflight: Dict[str, _Batch] = {}
        self._batch_of: Dict[int, _Batch] = {}
        #: Batches dispatched (diagnostics).
        self.batches_dispatched = 0

    # ------------------------------------------------------------------
    # Arrival: join the open batch; dispatch if the lane is idle
    # ------------------------------------------------------------------

    def host_on_job_arrival(self, job: Job) -> None:
        key = batch_key(job)
        self._open.setdefault(key, []).append(job)
        if key not in self._inflight:
            self._dispatch(key)

    def _dispatch(self, key: str) -> None:
        waiting = self._open.get(key)
        if not waiting:
            return
        members = waiting[:self._max_batch]
        self._open[key] = waiting[len(members):]
        batch = _Batch(members)
        self._inflight[key] = batch
        self.batches_dispatched += 1
        for job in members:
            self._batch_of[job.job_id] = batch
        self._launch_step(batch)

    # ------------------------------------------------------------------
    # Lock-step advance
    # ------------------------------------------------------------------

    def _launch_step(self, batch: _Batch) -> None:
        """Send the current step's kernel for every member that has one."""
        active = [job for job in batch.members
                  if not job.is_done and batch.step < job.num_kernels]
        batch.outstanding = len(active)
        for job in active:
            if batch.step == 0:
                self.ctx.host.submit_job(job, release=1)
            else:
                self.ctx.host.release_next_kernel(job)

    def host_on_kernel_complete(self, kernel: KernelInstance) -> None:
        batch = self._batch_of.get(kernel.job.job_id)
        if batch is None or kernel.index != batch.step:
            return
        batch.outstanding -= 1
        if batch.outstanding == 0:
            batch.step += 1
            self._advance(batch)

    def _advance(self, batch: _Batch) -> None:
        if all(job.is_done or batch.step >= job.num_kernels
               for job in batch.members):
            self._retire(batch)
        else:
            self._launch_step(batch)

    def _retire(self, batch: _Batch) -> None:
        key = batch_key(batch.members[0])
        for job in batch.members:
            self._batch_of.pop(job.job_id, None)
        if self._inflight.get(key) is batch:
            del self._inflight[key]
        self._dispatch(key)

    def host_on_job_complete(self, job: Job) -> None:
        # Lock-step bookkeeping is driven by kernel completions; nothing to
        # do here (the member simply stops being launched).
        return
