"""Scheduler registry: name -> factory for all eleven policies (Table 3)."""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import ConfigError
from .base import SchedulerPolicy
from .cpu_side.bat import BatchMakerScheduler
from .cpu_side.bay import BaymaxScheduler
from .cpu_side.lax_host import LaxCpuScheduler, LaxSoftwareScheduler
from .cpu_side.pro import ProphetScheduler
from .hybrid import LaxityPremaHybridScheduler
from .lax import LaxityScheduler
from .mlfq import MultiLevelFeedbackQueueScheduler
from .prema import PremaScheduler
from .rr import RoundRobinScheduler
from .srf import ShortestRemainingFirstScheduler
from .static_priority import (EarliestDeadlineFirstScheduler,
                              LongestJobFirstScheduler,
                              ShortestJobFirstScheduler)

_FACTORIES: Dict[str, Callable[[], SchedulerPolicy]] = {
    "RR": RoundRobinScheduler,
    "MLFQ": MultiLevelFeedbackQueueScheduler,
    "EDF": EarliestDeadlineFirstScheduler,
    "SJF": ShortestJobFirstScheduler,
    "SRF": ShortestRemainingFirstScheduler,
    "LJF": LongestJobFirstScheduler,
    "PREMA": PremaScheduler,
    "BAT": BatchMakerScheduler,
    "BAY": BaymaxScheduler,
    "PRO": ProphetScheduler,
    "LAX": LaxityScheduler,
    "LAX-SW": LaxSoftwareScheduler,
    "LAX-CPU": LaxCpuScheduler,
    # Extension beyond the paper: the Section 6.1.2 future-work hybrid.
    "LAX-PREMA": LaxityPremaHybridScheduler,
}

#: Grouping used throughout the paper's evaluation section.
CPU_SIDE_SCHEDULERS = ("BAT", "BAY", "PRO")
CP_SCHEDULERS = ("MLFQ", "EDF", "SJF", "SRF", "LJF", "PREMA")
LAX_VARIANTS = ("LAX-SW", "LAX-CPU", "LAX")
#: Schedulers beyond the paper's Table 3 (extensions built on its ideas).
EXTENSION_SCHEDULERS = ("LAX-PREMA",)
#: The paper's original eleven (Table 3).
PAPER_SCHEDULERS = tuple(name for name in _FACTORIES
                         if name not in EXTENSION_SCHEDULERS)
ALL_SCHEDULERS = tuple(_FACTORIES)


def scheduler_names() -> List[str]:
    """All registered scheduler names."""
    return list(_FACTORIES)


def make_scheduler(name: str, **kwargs: object) -> SchedulerPolicy:
    """Instantiate a scheduler by registry name.

    ``kwargs`` are forwarded to the policy constructor (e.g.
    ``make_scheduler("LAX", enable_admission=False)`` for the ablation).
    """
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ConfigError(
            f"unknown scheduler {name!r}; known: {', '.join(_FACTORIES)}")
    return factory(**kwargs)
