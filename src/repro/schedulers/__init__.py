"""All scheduling policies from Table 3 of the paper.

Three families:

* **CPU-side** (host software, 4 us/kernel communication): BAT, BAY, PRO;
* **command-processor** (device-integrated): RR (contemporary baseline),
  MLFQ, EDF, SJF, SRF, LJF, PREMA;
* **laxity-aware**: LAX (full CP integration), LAX-CPU (user-level
  priority API), LAX-SW (software-only release control).
"""

from .base import DeviceContext, SchedulerPolicy, default_issue_key
from .cpu_side.base import HostSchedulerPolicy
from .cpu_side.bat import BatchMakerScheduler
from .cpu_side.bay import BaymaxScheduler
from .cpu_side.lax_host import LaxCpuScheduler, LaxSoftwareScheduler
from .cpu_side.pro import ProphetScheduler
from .hybrid import LaxityPremaHybridScheduler
from .lax import LaxityScheduler
from .mlfq import MultiLevelFeedbackQueueScheduler
from .prema import PremaScheduler
from .registry import (ALL_SCHEDULERS, CP_SCHEDULERS, CPU_SIDE_SCHEDULERS,
                       EXTENSION_SCHEDULERS, LAX_VARIANTS, PAPER_SCHEDULERS,
                       make_scheduler, scheduler_names)
from .rr import RoundRobinScheduler
from .srf import ShortestRemainingFirstScheduler
from .static_priority import (EarliestDeadlineFirstScheduler,
                              LongestJobFirstScheduler,
                              ShortestJobFirstScheduler)

__all__ = [
    "ALL_SCHEDULERS",
    "BatchMakerScheduler",
    "BaymaxScheduler",
    "CP_SCHEDULERS",
    "CPU_SIDE_SCHEDULERS",
    "DeviceContext",
    "EXTENSION_SCHEDULERS",
    "EarliestDeadlineFirstScheduler",
    "HostSchedulerPolicy",
    "LAX_VARIANTS",
    "LaxityPremaHybridScheduler",
    "PAPER_SCHEDULERS",
    "LaxCpuScheduler",
    "LaxSoftwareScheduler",
    "LaxityScheduler",
    "LongestJobFirstScheduler",
    "MultiLevelFeedbackQueueScheduler",
    "PremaScheduler",
    "ProphetScheduler",
    "RoundRobinScheduler",
    "SchedulerPolicy",
    "ShortestJobFirstScheduler",
    "ShortestRemainingFirstScheduler",
    "default_issue_key",
    "make_scheduler",
    "scheduler_names",
]
