"""PREMA: predictive multi-task scheduling with preemption (Choi & Rhu,
HPCA 2020), as adapted by the paper (Section 5.1).

PREMA combines user-defined priorities with *slowdown* feedback: a token
per job grows with how much longer the job has been in the system than its
profiled isolated runtime, so delayed (especially short) jobs climb the
ranking — reactive aging rather than LAX's predictive laxity.  Every 250 us
PREMA recomputes tokens and, if the top job's kernel cannot get WG slots,
preempts resident WGs of lower-token jobs.  Preempted WGs lose their
progress and their context save costs both time (resources stay held while
``context_bytes`` drain at the interconnect bandwidth) and energy.

Per the paper, our PREMA is extended to run multiple jobs concurrently
(the workloads underfill the GPU) and to reuse LAX's frequent update
cadence for its calculations.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..sim.engine import PeriodicTask
from ..sim.job import Job, JobState
from ..sim.kernel import KernelInstance
from .base import SchedulerPolicy


class PremaScheduler(SchedulerPolicy):
    """Token-based preemptive multi-task scheduler."""

    name = "PREMA"
    filtering_issue = True

    def __init__(self, max_preemptions_per_epoch: int = 8) -> None:
        super().__init__()
        self._max_preemptions = max_preemptions_per_epoch
        self._tokens: Dict[int, float] = {}
        self._isolated: Dict[int, float] = {}
        self._epoch_task: Optional[PeriodicTask] = None
        #: Jobs scheduled this epoch; empty set means "no filter yet".
        self._selected: set = set()
        #: Total preemption operations performed (diagnostics).
        self.preemption_events = 0

    def start(self) -> None:
        self._epoch_task = PeriodicTask(
            self.ctx.sim, self.ctx.config.overheads.prema_interval,
            self._epoch, self._any_live_jobs)

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------

    def on_job_admitted(self, job: Job) -> None:
        isolated = float(job.isolated_time(self.ctx.config.gpu))
        self._isolated[job.job_id] = max(1.0, isolated)
        self._tokens[job.job_id] = self._token(job)
        job.priority = -self._tokens[job.job_id]
        self._epoch_task.ensure_running()

    def on_job_complete(self, job: Job) -> None:
        self._tokens.pop(job.job_id, None)
        self._isolated.pop(job.job_id, None)
        if job.job_id in self._selected:
            # Backfill the freed capacity without waiting a whole epoch:
            # extend the selection (no preemption outside epoch ticks).
            self._selected.discard(job.job_id)
            live = [j for j in self.ctx.live_jobs()
                    if j.state is not JobState.INIT]
            if live:
                self._select_jobs(live)
                self.ctx.dispatcher.request_pump()

    def issue_order(self, kernels):
        if self._selected:
            kernels = [k for k in kernels
                       if k.job.job_id in self._selected]
        return super().issue_order(kernels)

    # ------------------------------------------------------------------
    # Token model
    # ------------------------------------------------------------------

    def _token(self, job: Job) -> float:
        """User priority x slowdown, where slowdown is time-in-system over
        profiled isolated runtime (>= 1).

        PREMA is deadline-aware (paper Table 6): a job already past its
        SLA stops accumulating scheduling credit and falls to the bottom
        of the token order, so the device is not dedicated to work that
        can no longer meet its target.
        """
        elapsed = job.elapsed(self.ctx.now)
        if job.deadline is not None and elapsed > job.deadline:
            return 0.0
        user = max(1, job.user_priority + 1)
        isolated = self._isolated.get(job.job_id, 1.0)
        slowdown = max(1.0, elapsed / isolated)
        return user * slowdown

    # ------------------------------------------------------------------
    # 250 us epoch: retoken, then preempt to serve the leader
    # ------------------------------------------------------------------

    def _epoch(self) -> None:
        live = [job for job in self.ctx.live_jobs()
                if job.state is not JobState.INIT]
        if not live:
            return
        for job in live:
            token = self._token(job)
            self._tokens[job.job_id] = token
            job.priority = -token
        self._time_multiplex(live)
        self.ctx.dispatcher.request_pump()

    def _time_multiplex(self, live) -> None:
        """Dedicate the device to the highest-token jobs this epoch.

        PREMA's defining behaviour: rather than letting every resident WG
        share the device, it checkpoints (preempts) lower-token jobs so
        the leaders run at full rate and finish quickly.  The selected set
        is the token-ordered prefix that fills the device's full-rate
        capacity; everything else with resident WGs is evicted.
        """
        self._selected = set()  # epoch boundary: reselect from scratch
        self._select_jobs(live)
        preempted = 0
        for kernel in list(self.ctx.dispatcher.active_kernels):
            if kernel.job.job_id in self._selected:
                continue
            if preempted >= self._max_preemptions:
                break
            if self.ctx.dispatcher.resident_wgs(kernel) == 0:
                continue
            evicted = self.ctx.dispatcher.preempt_kernel(
                kernel, self._hold_time(kernel))
            if evicted:
                preempted += 1
                self.preemption_events += 1
                if self.ctx.energy is not None:
                    self.ctx.energy.add_context_traffic(
                        kernel.descriptor.context_bytes)

    def _select_jobs(self, live) -> None:
        """Token-ordered prefix of jobs filling the device's capacity."""
        gpu = self.ctx.config.gpu
        ordered = sorted(live, key=lambda j: (-self._tokens.get(j.job_id, 0.0),
                                              j.arrival, j.job_id))
        selected = set(self._selected)
        budget = gpu.num_cus * gpu.simd_per_cu
        for job in ordered:
            if job.job_id in selected:
                kernel = job.next_kernel()
                if kernel is not None:
                    budget -= min(kernel.wgs_remaining,
                                  gpu.num_cus * kernel.descriptor.cu_concurrency)
        for job in ordered:
            if budget <= 0:
                break
            if job.job_id in selected:
                continue
            kernel = job.next_kernel()
            if kernel is None:
                continue
            demand = min(kernel.wgs_remaining,
                         gpu.num_cus * kernel.descriptor.cu_concurrency)
            selected.add(job.job_id)
            budget -= demand
        self._selected = selected

    def _hold_time(self, kernel: KernelInstance) -> int:
        """Context save latency: context bytes over interconnect bandwidth."""
        bw = self.ctx.config.gpu.context_bw_bytes_per_ns
        return max(1, math.ceil(kernel.descriptor.context_bytes / bw))
