"""Shortest Remaining-time job First (SRF).

SRF is the paper's strongest non-laxity CP scheduler: it borrows LAX's
dynamic remaining-execution-time estimator (WGList / per-kernel completion
rates) but ranks jobs purely by estimated remaining time — no laxity, no
deadline, no queuing-delay model.  Priorities refresh on the same 100 us
cadence LAX uses.
"""

from __future__ import annotations

from typing import Optional

from ..core.laxity import estimate_remaining_time
from ..sim.engine import PeriodicTask
from ..sim.job import Job
from .base import SchedulerPolicy


class ShortestRemainingFirstScheduler(SchedulerPolicy):
    """Dynamic shortest-remaining-time-first using LAX's estimator."""

    name = "SRF"

    def __init__(self) -> None:
        super().__init__()
        self._updater: Optional[PeriodicTask] = None

    def start(self) -> None:
        self._updater = PeriodicTask(
            self.ctx.sim, self.ctx.config.overheads.lax_update_period,
            self._update_priorities, self._any_live_jobs)

    def on_job_admitted(self, job: Job) -> None:
        job.priority = self._estimate(job)
        self._updater.ensure_running()

    def on_job_complete(self, job: Job) -> None:
        self._updater.ensure_running()

    def _estimate(self, job: Job) -> float:
        now = self.ctx.now
        estimate = estimate_remaining_time(job, self.ctx.profiler, now)
        if estimate <= 0.0:
            # No rate information yet; fall back to the offline profile so
            # the ranking is defined from the first dispatch.
            estimate = float(job.isolated_time(self.ctx.config.gpu))
        return estimate

    def _update_priorities(self) -> None:
        for job in self.ctx.live_jobs():
            job.priority = self._estimate(job)
        # The dispatcher's standing issue order is keyed by priorities.
        self.ctx.dispatcher.invalidate_order()
