"""LAX+PREMA hybrid: the future-work scheduler Section 6.1.2 sketches.

"LAX outperforms all other schedulers except on STEM, indicating that a
hybrid solution which combines elements of LAX and PREMA could be
interesting future work."  This policy is that hybrid:

* **from LAX** — stream inspection, the Little's-Law admission test with
  late rejection, and laxity-driven priorities refreshed every 100 us;
* **from PREMA** — checkpoint-based preemption on its 250 us epochs: when
  the least-lax jobs cannot get WG slots because resident work with far
  more laxity occupies them, the laxity-richest residents are evicted
  (paying context-save time and energy) so urgent work runs closer to
  full rate.

Preemption is gated on a laxity gap (victim laxity must exceed the
urgent job's by the victim's own re-execution cost) so short-deadline
workloads get PREMA's responsiveness without LAX's many-kernel wins
drowning in checkpoint traffic.
"""

from __future__ import annotations

import math
from typing import Optional

from ..core.laxity import laxity_time
from ..sim.engine import PeriodicTask
from ..sim.job import Job
from ..sim.kernel import KernelInstance
from .lax import LaxityScheduler


class LaxityPremaHybridScheduler(LaxityScheduler):
    """LAX's estimates and admission + PREMA's epoch preemption."""

    name = "LAX-PREMA"

    #: Never arm event-core tick elision: the PREMA epoch scan compares
    #: priority *values* (``_most_urgent_blocked_kernel``), so frozen
    #: published priorities would be observable between ticks.
    _tick_elidable = False

    def __init__(self, max_preemptions_per_epoch: int = 8,
                 **lax_kwargs: object) -> None:
        super().__init__(**lax_kwargs)
        self._max_preemptions = max_preemptions_per_epoch
        self._epoch_task: Optional[PeriodicTask] = None
        #: Preemption operations performed (diagnostics).
        self.preemption_events = 0

    def start(self) -> None:
        super().start()
        self._epoch_task = PeriodicTask(
            self.ctx.sim, self.ctx.config.overheads.prema_interval,
            self._epoch, self._any_live_jobs)

    def on_job_admitted(self, job: Job) -> None:
        super().on_job_admitted(job)
        self._epoch_task.ensure_running()

    # ------------------------------------------------------------------
    # Preemption-aware admission
    # ------------------------------------------------------------------

    def _outstanding_time(self, now: int, exclude: Job) -> None:
        """Scalar fallback always: hybrid admission sums a laxity-filtered
        subset of the live jobs (see :meth:`admit`), which the rank SoA's
        whole-table sum cannot express."""
        return None

    def admit(self, job: Job) -> bool:
        """Algorithm 1, but slack-rich work does not block the candidate.

        LAX's queuing-delay model assumes everything ahead must drain
        first; with PREMA-style preemption available, a resident job whose
        laxity exceeds the candidate's whole deadline can be checkpointed
        out of the way and still finish, so it contributes no queuing
        delay to this decision.
        """
        if not self._enable_admission:
            if self.decisions_enabled:
                self.emit_decision("admission_verdict", job_id=job.job_id,
                                   accepted=True, reason="policy_default")
            return True
        if job.deadline is None:
            if self.decisions_enabled:
                self.emit_decision("admission_verdict", job_id=job.job_id,
                                   accepted=True, reason="no_deadline")
            return True
        now = self.ctx.now
        profiler = self.ctx.profiler
        blocking = [
            other for other in self.ctx.live_jobs()
            if laxity_time(other, profiler, now) <= job.deadline
        ]
        verdict = self._admission.evaluate(
            job, blocking, now, cus=self.ctx.dispatcher.cus,
            reserved_wgs=self._reserved_wgs(job))
        if self.decisions_enabled:
            self._emit_admission(job)
        return verdict

    # ------------------------------------------------------------------
    # PREMA-style epoch: evict laxity-rich residents for urgent work
    # ------------------------------------------------------------------

    def _epoch(self) -> None:
        now = self.ctx.now
        profiler = self.ctx.profiler
        dispatcher = self.ctx.dispatcher
        urgent = self._most_urgent_blocked_kernel(now)
        if urgent is None:
            return
        urgent_laxity = laxity_time(urgent.job, profiler, now)
        victims = self._victims_by_laxity(urgent, now)
        preempted = 0
        for victim_laxity, victim in victims:
            if preempted >= self._max_preemptions:
                break
            if self._fits_somewhere(urgent):
                break
            # Gate: the victim must be able to afford re-executing its
            # resident WGs and still have more slack than the urgent job.
            reexecution_cost = victim.descriptor.wg_work
            if victim_laxity - reexecution_cost <= urgent_laxity:
                break
            evicted = dispatcher.preempt_kernel(
                victim, self._hold_time(victim))
            if evicted:
                preempted += 1
                self.preemption_events += 1
                if self.decisions_enabled:
                    self.emit_decision(
                        "preemption_cause", job_id=victim.job.job_id,
                        kernel=victim.name, evicted=evicted,
                        cause="epoch_laxity_gap",
                        urgent_job_id=urgent.job.job_id,
                        victim_laxity=victim_laxity,
                        urgent_laxity=urgent_laxity)
                if self.ctx.energy is not None:
                    self.ctx.energy.add_context_traffic(
                        victim.descriptor.context_bytes)
        if preempted:
            dispatcher.request_pump()

    def _most_urgent_blocked_kernel(self, now: int) -> Optional[KernelInstance]:
        """Least-laxity active kernel with pending WGs that do not fit."""
        best: Optional[KernelInstance] = None
        best_priority = math.inf
        for kernel in self.ctx.dispatcher.active_kernels:
            if kernel.wgs_pending <= 0:
                continue
            if kernel.job.priority >= best_priority:
                continue
            if self._fits_somewhere(kernel):
                continue
            best = kernel
            best_priority = kernel.job.priority
        return best

    def _fits_somewhere(self, kernel: KernelInstance) -> bool:
        return any(cu.can_accept(kernel.descriptor)
                   for cu in self.ctx.dispatcher.cus)

    def _victims_by_laxity(self, urgent: KernelInstance, now: int):
        """Resident kernels of other jobs, laxity-richest first."""
        profiler = self.ctx.profiler
        dispatcher = self.ctx.dispatcher
        candidates = []
        for kernel in dispatcher.active_kernels:
            if kernel.job is urgent.job:
                continue
            if dispatcher.resident_wgs(kernel) == 0:
                continue
            candidates.append(
                (laxity_time(kernel.job, profiler, now),
                 kernel.job.job_id, kernel))
        candidates.sort(key=lambda item: (-item[0], item[1]))
        return [(laxity, kernel) for laxity, _, kernel in candidates]

    def _hold_time(self, kernel: KernelInstance) -> int:
        bw = self.ctx.config.gpu.context_bw_bytes_per_ns
        return max(1, math.ceil(kernel.descriptor.context_bytes / bw))
