"""Scheduling-policy interface.

Every scheduler in Table 3 of the paper is a :class:`SchedulerPolicy`.  The
device gives a policy four levers:

* **admission** — accept or reject a job when its stream has been inspected
  (:meth:`admit`); only LAX variants and the QoS-model CPU schedulers use it;
* **issue order** — rank the active kernels each time the WG dispatcher
  fills free slots (:meth:`issue_order`); this is where priorities act;
* **release control** — host-side policies hold kernels on the CPU and
  release them one at a time (see :mod:`repro.sim.host`);
* **preemption** — evict resident WGs (PREMA only), via the dispatcher.

Policies observe the device through :class:`DeviceContext`, which exposes
the simulator clock, the queue pool, the profiling table and the dispatcher.
Device-side policies see events immediately; host-side policies must go
through the :class:`~repro.sim.host.Host` and pay communication latency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, List, Optional, Sequence

from ..sim.job import Job
from ..sim.kernel import KernelInstance

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..config import SimConfig
    from ..core.profiling import KernelProfilingTable
    from ..metrics.collector import MetricsCollector
    from ..sim.command_processor import CommandProcessor
    from ..sim.dispatcher import WGDispatcher
    from ..sim.engine import Simulator
    from ..sim.host import Host
    from ..sim.queues import QueuePool


class DeviceContext:
    """Everything a scheduling policy may observe and drive.

    Built by :class:`repro.sim.device.GPUSystem`; handed to the policy via
    :meth:`SchedulerPolicy.bind` before the first job arrives.
    """

    def __init__(self, sim: "Simulator", config: "SimConfig",
                 pool: "QueuePool", dispatcher: "WGDispatcher",
                 profiler: "KernelProfilingTable",
                 metrics: "MetricsCollector", energy=None) -> None:
        self.sim = sim
        self.config = config
        self.pool = pool
        self.dispatcher = dispatcher
        self.profiler = profiler
        self.metrics = metrics
        #: Energy meter (PREMA charges context-save traffic to it).
        self.energy = energy
        #: Set by the GPUSystem after the CP is constructed.
        self.cp: Optional["CommandProcessor"] = None
        #: Set by the GPUSystem for host-side policies.
        self.host: Optional["Host"] = None
        #: Optional TelemetryHub (set by the GPUSystem); policies reach it
        #: through :meth:`SchedulerPolicy.emit_decision`.
        self.telemetry = None

    @property
    def now(self) -> int:
        """Current simulated time."""
        return self.sim.now

    def live_jobs(self) -> List[Job]:
        """Jobs currently holding device queues."""
        return self.pool.live_jobs()


def default_issue_key(kernel: KernelInstance) -> tuple:
    """Canonical dispatch ordering: priority, then age, then id.

    Lower ``job.priority`` runs first (0 is the highest priority, as in the
    paper's algorithms); ties break by device enqueue time and job id so
    ordering is total and deterministic.
    """
    job = kernel.job
    start = job.start_time if job.start_time is not None else job.arrival
    return (job.priority, start, job.job_id, kernel.index)


class SchedulerPolicy:
    """Base policy: priority-ordered dispatch with no admission control.

    Subclasses override the hooks they need.  The default behaviour — every
    job accepted, dispatch ordered by the ``priority`` field which nobody
    updates — degenerates to FCFS and is only useful as a building block.
    """

    #: Registry name ("RR", "LAX", ...).
    name: ClassVar[str] = "base"
    #: True for CPU-side schedulers that route jobs through the Host.
    host_side: ClassVar[bool] = False
    #: True when :meth:`issue_order` may *drop* kernels rather than just
    #: rank them (PREMA's token winner does).  The dispatcher's counted
    #: fast path skips the ranking call for single-kernel pumps — a pure
    #: sort of one element is the identity — which is only sound when the
    #: policy never filters.
    filtering_issue: ClassVar[bool] = False

    def __init__(self) -> None:
        self.ctx: Optional[DeviceContext] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def bind(self, ctx: DeviceContext) -> None:
        """Attach the policy to a device; called once before any arrival."""
        self.ctx = ctx

    def start(self) -> None:
        """Called once at simulation start; set up periodic tasks here."""

    # ------------------------------------------------------------------
    # Job path
    # ------------------------------------------------------------------

    def on_job_arrival(self, job: Job) -> None:
        """Entry point for a new job.

        Device-side policies submit straight to the CP with the whole
        stream visible; host-side policies override this to hold the job on
        the host.
        """
        job.released_kernels = job.num_kernels
        self.ctx.cp.submit_job(job)

    def admit(self, job: Job) -> bool:
        """Admission decision, made after stream inspection."""
        return True

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def issue_order(self, kernels: Sequence[KernelInstance]) -> List[KernelInstance]:
        """Rank active kernels for WG issue; first gets free slots first."""
        return sorted(kernels, key=default_issue_key)

    def on_kernels_served(self, kernels: Sequence[KernelInstance]) -> None:
        """Dispatcher feedback after a pump issued WGs (RR uses this)."""

    # ------------------------------------------------------------------
    # Event notifications (device-immediate)
    # ------------------------------------------------------------------

    def on_job_admitted(self, job: Job) -> None:
        """Job accepted and bound to a queue."""

    def on_job_rejected(self, job: Job) -> None:
        """Job refused by admission control."""

    def on_wg_complete(self, kernel: KernelInstance) -> None:
        """One WG of ``kernel`` finished."""

    def on_kernel_complete(self, kernel: KernelInstance) -> None:
        """All WGs of ``kernel`` finished."""

    def on_job_complete(self, job: Job) -> None:
        """Job's last kernel finished."""

    def on_job_extended(self, job: Job) -> None:
        """More kernels were appended to a live job's stream (footnote 1).

        Fired by ``CommandProcessor.append_work`` after the WGList has
        grown: any scheduler state derived from the job's remaining work
        (cached laxity estimates, rank epochs) must be refreshed."""

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    @property
    def decisions_enabled(self) -> bool:
        """Whether a decision log is attached and recording.

        Emission sites that must compute extra inputs (e.g. laxities for a
        preemption-cause event) should guard on this so disabled telemetry
        costs one attribute chain and nothing else.
        """
        ctx = self.ctx
        return (ctx is not None and ctx.telemetry is not None
                and ctx.telemetry.decisions is not None)

    def emit_decision(self, kind: str, **fields) -> None:
        """Record one scheduler decision on the attached telemetry hub.

        No-op when no hub (or no decision log) is attached, so policies can
        call it unconditionally from cheap sites.  ``fields`` must satisfy
        the schema for ``kind`` (see :mod:`repro.telemetry.events`).
        """
        ctx = self.ctx
        if ctx is None or ctx.telemetry is None:
            return
        decisions = ctx.telemetry.decisions
        if decisions is None:
            return
        decisions.emit(ctx.sim.now, kind, self.name, **fields)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _any_live_jobs(self) -> bool:
        """Whether periodic work still has something to act on."""
        return self.ctx.pool.num_bound > 0 or bool(self.ctx.pool.backlog)
