"""LAX: the laxity-aware CP scheduler (Section 4, the paper's contribution).

The pieces, all device-resident:

* **Stream inspection** builds each job's WGList when it is submitted
  (latency modelled by the CP's parser bank).
* The **Job Table** tracks per-queue state; the **Kernel Profiling Table**
  tracks per-kernel-type WG completion rates over 100 us windows.
* **Admission** (Algorithm 1) rejects jobs whose Little's-Law queuing
  delay plus own estimate would overrun the deadline.
* Every 100 us, **Algorithm 2** reassigns each live job's priority from
  its laxity (Equation 1): smallest laxity first, predicted-missers behind
  everyone with positive laxity, past-deadline jobs last.
* New jobs start at the **highest** priority — the empirically best choice
  per the paper's footnote 2; ``init_priority`` exposes the two
  alternatives the footnote compares for the ablation bench.
"""

from __future__ import annotations

import math
from operator import attrgetter
from typing import Optional

from ..core import laxity as laxity_math
from ..core import rank_soa
from ..core.admission import QueuingDelayAdmission, steady_state_pass
from ..core.job_table import JobTable
from ..core.laxity import (INFINITE_PRIORITY, RemainingTimeCache,
                           estimate_remaining_time, laxity_priority,
                           priority_with_estimates)
from ..core.rank_soa import RankSoA

try:  # pragma: no cover - exercised implicitly on numpy-less hosts
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None
from ..errors import ConfigError
from ..metrics.tracking import PredictionTracker
from ..sim.engine import PeriodicTask
from ..sim.job import Job, JobState
from .base import SchedulerPolicy

#: Valid ``init_priority`` modes (paper footnote 2).
INIT_PRIORITY_MODES = ("highest", "lowest", "estimate")

#: Tabled-job count below which the scalar tick and admission sum beat
#: the SoA path (numpy's fixed per-op cost dominates tiny arrays) — the
#: rank-level analogue of ``compute_unit._VEC_MIN_RESIDENTS``.  The
#: SUSTAINED streaming cells retire jobs and hold ~50 live, so they stay
#: on the PR-5 scalar fast path; the 1280-job fleet cell crosses over as
#: soon as its backlog builds.  Both sides are bit-identical, so the
#: gate is purely a cost model.
_VEC_MIN_JOBS = 64

#: Priority order used by the prediction sampler: precomputed attrgetter
#: instead of a per-tick lambda (same tuples, no closure dispatch).
_PRIORITY_KEY = attrgetter("priority", "arrival", "job_id")


class TickStats:
    """Accounting of the epoch-gated Algorithm 2 tick (gated mode only).

    A tick is *elided* when every live job's remaining-time estimate came
    out of the :class:`~repro.core.laxity.RemainingTimeCache` — the rank
    epoch stood still, so the tick ran without a single WGList walk or
    profiling-table read.  *Incremental* ticks recomputed only the
    epoch-dirty jobs.  Either way the O(live) priority refresh still runs:
    laxity drifts with the clock, so the published values must track
    ``now`` even when the ordering inputs are unchanged.
    """

    __slots__ = ("ticks", "ticks_elided", "ticks_incremental",
                 "walks_recomputed", "walks_reused", "jobs_ranked")

    def __init__(self) -> None:
        self.ticks = 0
        self.ticks_elided = 0
        self.ticks_incremental = 0
        self.walks_recomputed = 0
        self.walks_reused = 0
        self.jobs_ranked = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class LaxityScheduler(SchedulerPolicy):
    """The integrated laxity-aware scheduler (LAX)."""

    name = "LAX"

    #: Whether the event-core tick-elision gate may arm on this policy.
    #: True only for plain LAX: the hybrid subclass *reads* priority
    #: values (not just their order) in its preemption scan, so frozen
    #: values are observable there and it keeps running every tick body.
    _tick_elidable = True

    def __init__(self, init_priority: str = "highest",
                 enable_admission: bool = True,
                 tracker: Optional[PredictionTracker] = None,
                 warm_rates: Optional[dict] = None) -> None:
        super().__init__()
        if init_priority not in INIT_PRIORITY_MODES:
            raise ConfigError(
                f"init_priority must be one of {INIT_PRIORITY_MODES}")
        self._init_priority = init_priority
        self._enable_admission = enable_admission
        self._tracker = tracker
        #: Offline-profiled per-kernel rates seeded into the profiling
        #: table at start (see :mod:`repro.core.calibration`).
        self._warm_rates = dict(warm_rates) if warm_rates else None
        self._admission: Optional[QueuingDelayAdmission] = None
        self._updater: Optional[PeriodicTask] = None
        self.job_table: Optional[JobTable] = None
        #: Rank epoch: bumped whenever a remaining-time input or the live
        #: set changes (WG completion, admission, rejection, completion,
        #: stream append).  Together with the profiling table's own
        #: ``rank_epoch`` it tells the gated tick whether any WGList walk
        #: can possibly produce a new value.
        self.rank_epoch = 0
        self._remaining_cache: Optional[RemainingTimeCache] = None
        #: Struct-of-arrays rank state (``vectorized_mode``); ``None``
        #: when the flag or numpy is absent at :meth:`start` time.
        self._rank_soa: Optional[RankSoA] = None
        #: Gated-tick accounting (stays at zero in seed mode).
        self.tick_stats = TickStats()
        #: Event-core O(1) admission reserve: sum of first-kernel WG
        #: counts over READY jobs, maintained incrementally by the
        #: lifecycle hooks (admit adds, first serve / late reject
        #: subtracts the same amount, recorded on the job).  Consulted by
        #: :meth:`_reserved_wgs` only under ``EVENT_CORE``; the seed scan
        #: stays the oracle in A/B runs.
        self._ready_reserve = 0
        #: Event-core tick elision: the epoch key the gate compares
        #: against (``None`` = disarmed) and the tick horizon (inclusive)
        #: up to which the published priority order provably drifts
        #: without re-ranking.  See :meth:`_arm_tick_elision`.
        self._elide_key: Optional[tuple] = None
        self._elide_until: float = 0.0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def start(self) -> None:
        self._remaining_cache = RemainingTimeCache(self.ctx.profiler)
        # The SoA mirror is built only when the vectorized flag is up at
        # construction time: a system built in gated/seed mode must not
        # pay the (small) event-hook cost of maintaining arrays it will
        # never read — that would flatter the vectorized A/B baseline.
        # Once built it is maintained regardless of later flag flips, so
        # toggling ``vectorized_mode`` around an existing system stays
        # correct (the tick just falls back to the scalar path).
        if (laxity_math.VECTORIZED and rank_soa.HAVE_NUMPY
                and not self.host_side):
            self._rank_soa = RankSoA(self._remaining_cache)
        self._admission = QueuingDelayAdmission(
            self.ctx.profiler, estimate=self._cached_estimate,
            outstanding=self._outstanding_time)
        self.job_table = JobTable(self.ctx.config.gpu.num_queues)
        if self._warm_rates:
            from ..core.calibration import warm_table
            warm_table(self.ctx.profiler, self._warm_rates)
        self._updater = PeriodicTask(
            self.ctx.sim, self.ctx.config.overheads.lax_update_period,
            self._update_priorities, self._any_live_jobs)
        self._updater.gate = self._tick_gate

    @property
    def admission(self) -> Optional[QueuingDelayAdmission]:
        """Admission statistics (None before :meth:`start`)."""
        return self._admission

    def _cached_estimate(self, job: Job, table, now: int) -> float:
        """``estimate_remaining_time`` through the rank-epoch cache.

        Signature-compatible with the free function so Algorithm 1's
        helpers accept it unchanged.  In seed mode it falls through to the
        verbatim per-call WGList walk, keeping the differential comparison
        honest.
        """
        if not laxity_math.EPOCH_GATED:
            return estimate_remaining_time(job, table, now)
        return self._remaining_cache.remaining(job, now)

    # ------------------------------------------------------------------
    # Admission (Algorithm 1)
    # ------------------------------------------------------------------

    def admit(self, job: Job) -> bool:
        if not self._enable_admission:
            if self.decisions_enabled:
                self.emit_decision("admission_verdict", job_id=job.job_id,
                                   accepted=True, reason="policy_default")
            return True
        verdict = self._admission.evaluate(
            job, self.ctx.live_jobs(), self.ctx.now,
            cus=self.ctx.dispatcher.cus,
            reserved_wgs=self._reserved_wgs(job))
        if self.decisions_enabled:
            self._emit_admission(job)
        return verdict

    def _emit_admission(self, job: Job) -> None:
        """Mirror the admission verdict (with its Little's-Law inputs)
        into the decision log."""
        decision = self._admission.last_decision
        self.emit_decision(
            "admission_verdict", job_id=job.job_id,
            accepted=decision.accepted, reason=decision.reason,
            tot_rem_time=decision.tot_rem_time,
            hold_time=decision.hold_time, dur_time=decision.dur_time,
            deadline=decision.deadline)

    def _outstanding_time(self, now: int, exclude: Job) -> Optional[float]:
        """Vectorized ``totRemTime`` over the rank SoA, or None (scalar).

        The SoA tracks exactly the live past-*init* jobs Algorithm 1
        sums, and :meth:`RankSoA.outstanding_time` permutes its slots into
        the scalar loop's queue-id iteration order — see its docstring for
        the bit-identity argument.
        """
        soa = self._rank_soa
        if (soa is not None and laxity_math.VECTORIZED
                and len(soa) >= _VEC_MIN_JOBS):
            return soa.outstanding_time(now, exclude)
        # Event-core scalar fast path: the flattened one-loop sum over
        # the rank-epoch cache (bit-identity argued on the method).
        # Requires the epoch-gated cache — with gating off the scalar
        # helper must run the seed's per-call estimator verbatim.
        if (laxity_math.EVENT_CORE and laxity_math.EPOCH_GATED
                and self._remaining_cache is not None):
            return self._remaining_cache.outstanding_sum(
                self.ctx.live_jobs(), now, exclude)
        return None

    def _reserved_wgs(self, candidate: Job) -> int:
        """WGs promised to admitted jobs whose work is not yet resident."""
        if laxity_math.EVENT_CORE:
            # O(1) incremental counter (see ``_ready_reserve``).  The
            # candidate is still *init* and never counted; READY jobs
            # have issued nothing, so each counted amount equals the
            # live ``wgs_pending`` the seed scan would read.
            return self._ready_reserve
        soa = self._rank_soa
        if (soa is not None and laxity_math.VECTORIZED
                and len(soa) >= _VEC_MIN_JOBS):
            # Integer sum (order-free) over the SoA's READY slots — the
            # same set the scalar scan selects: admission inserts jobs
            # READY, the serve hook flips them RUNNING, and the candidate
            # itself is still *init*, never tabled.  Below the SoA size
            # floor the scalar scan wins (same threshold as the tick).
            reserved = 0
            for slot in soa.ready_slots().tolist():
                job = soa.job_at(slot)
                if job is candidate:
                    continue
                kernel = job.next_kernel()
                if kernel is not None:
                    reserved += kernel.wgs_pending
            return reserved
        reserved = 0
        for job in self.ctx.live_jobs():
            if job is candidate or job.state is not JobState.READY:
                continue
            kernel = job.next_kernel()
            if kernel is not None:
                reserved += kernel.wgs_pending
        return reserved

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------

    def on_job_admitted(self, job: Job) -> None:
        self.rank_epoch += 1
        kernel = job.next_kernel()
        if kernel is not None:
            # Job is READY here (the CP marks it before this hook) and
            # nothing has issued yet, so ``wgs_pending`` equals the first
            # kernel's full WG count.  Record the amount on the job so
            # the serve/reject hooks subtract exactly what was added.
            job.reserve_counted = kernel.wgs_pending
            self._ready_reserve += kernel.wgs_pending
        job.priority = self._initial_priority(job)
        self.job_table.insert(job)
        if self._rank_soa is not None:
            self._rank_soa.add(job)
        self._updater.ensure_running()

    def on_job_complete(self, job: Job) -> None:
        self.rank_epoch += 1
        if job.reserve_counted:
            # Defensive: a job cannot complete without issuing, so the
            # serve hook normally cleared this already.
            self._ready_reserve -= job.reserve_counted
            job.reserve_counted = 0
        if self._remaining_cache is not None:
            self._remaining_cache.forget(job)
        if self._rank_soa is not None:
            self._rank_soa.remove(job)
        self.job_table.remove(job)
        if self._tracker is not None:
            self._tracker.finalize_job(job)

    def on_job_rejected(self, job: Job) -> None:
        self.rank_epoch += 1
        if job.reserve_counted:
            # Late (steady-state sweep) rejection of a still-READY job;
            # arrival-time rejects were never counted.
            self._ready_reserve -= job.reserve_counted
            job.reserve_counted = 0
        if self._remaining_cache is not None:
            # Arrival-time candidates are cached by the admission
            # estimator, so even never-tabled jobs must be pruned.
            self._remaining_cache.forget(job)
        if self._rank_soa is not None:
            # No-op for never-tabled (arrival-time) rejects: they were
            # never assigned a slot.
            self._rank_soa.remove(job)
        # Arrival-time rejections never reached the table; late rejections
        # (steady-state sweep) did and must leave it.
        if self.job_table is None or job.queue_id is None:
            return
        entry = self.job_table.get(job.queue_id)
        if entry is not None and entry.job is job:
            self.job_table.remove(job)

    def on_wg_complete(self, kernel) -> None:
        # The kernel already bumped its job's rank_version; this records
        # that *some* remaining-time input moved since the last tick.
        self.rank_epoch += 1
        if self._rank_soa is not None:
            self._rank_soa.mark_stale(kernel.job)

    def on_job_extended(self, job: Job) -> None:
        self.rank_epoch += 1
        if self._rank_soa is not None:
            self._rank_soa.reindex(job)

    def on_kernels_served(self, kernels) -> None:
        # The dispatcher marked these kernels' jobs running; mirror the
        # READY -> RUNNING edge into the slot arrays (the sweep treats
        # running jobs differently — they are never estimate-rejected).
        soa = self._rank_soa
        if soa is not None:
            for kernel in kernels:
                soa.mark_running(kernel.job)
        for kernel in kernels:
            job = kernel.job
            counted = job.reserve_counted
            if counted:
                # READY -> RUNNING edge: the job's promised WGs are now
                # (partly) resident, so the admission scan stops counting
                # it — drop the amount recorded at admission.
                self._ready_reserve -= counted
                job.reserve_counted = 0

    def _initial_priority(self, job: Job) -> float:
        if not job.is_latency_sensitive:
            # Best-effort work backfills from the start (Section 5.2).
            return INFINITE_PRIORITY
        if self._init_priority == "highest":
            return 0.0
        if self._init_priority == "lowest":
            return INFINITE_PRIORITY
        return laxity_priority(job, self.ctx.profiler, self.ctx.now)

    # ------------------------------------------------------------------
    # Algorithm 2: the 100 us priority update
    # ------------------------------------------------------------------

    def _update_priorities(self) -> None:
        try:
            if not laxity_math.EPOCH_GATED:
                self._update_priorities_seed()
                return
            # The vectorized tick rides on the epoch-gated one (same
            # cache, same standing order); it bows out whenever per-job
            # side channels are active — decision logging and the
            # prediction tracker want the scalar loop's per-job
            # interleaving — and below the ``_VEC_MIN_JOBS`` population
            # where array setup costs more than the scalar sweep.
            if (laxity_math.VECTORIZED and self._rank_soa is not None
                    and len(self._rank_soa) >= _VEC_MIN_JOBS
                    and self._tracker is None and not self.decisions_enabled):
                self._update_priorities_vectorized()
            else:
                self._update_priorities_gated()
            # Event-core: decide how long the tick body may be skipped
            # outright.  Armed only when no per-tick side channel is
            # active (the elided body emits no decisions, feeds no
            # tracker, and the invariant checker audits by observing
            # published values at event times).
            if (laxity_math.EVENT_CORE and self._tick_elidable
                    and self._tracker is None and not self.decisions_enabled
                    and self.ctx.sim.validator is None):
                self._arm_tick_elision(self.ctx.now)
            else:
                self._elide_key = None
        finally:
            # Every variant (and its steady-state sweep) rewrites live
            # priorities; the dispatcher's standing issue order is keyed
            # by them.
            self.ctx.dispatcher.invalidate_order()

    def _update_priorities_seed(self) -> None:
        """The seed tick, verbatim: full table walk + fresh estimates.

        Kept runnable behind ``laxity.EPOCH_GATED`` so the differential
        suite can assert the gated tick is bit-identical to it."""
        now = self.ctx.now
        profiler = self.ctx.profiler
        if self._enable_admission:
            self._steady_state_rejects(now)
        live = self.ctx.live_jobs()
        emit = self.decisions_enabled
        for job in live:
            previous = job.priority
            if not emit or job.deadline is None:
                job.priority = laxity_priority(job, profiler, now)
                continue
            # One WGList walk yields the priority and the Equation 1
            # inputs the decision log wants.  Changed priorities only:
            # every live job gets re-ranked each 100 us tick, and the
            # unchanged ones carry no information.
            priority, laxity, remaining = priority_with_estimates(
                job, profiler, now)
            job.priority = priority
            if priority != previous:
                self.emit_decision(
                    "priority_update", job_id=job.job_id,
                    priority=priority, previous=previous, laxity=laxity,
                    remaining_estimate=remaining)
        if self._tracker is not None:
            self._record_predictions(live, now)

    def _update_priorities_gated(self) -> None:
        """The epoch-gated tick: Algorithm 2 without redundant walks.

        Bit-identical to :meth:`_update_priorities_seed` by construction:

        * remaining-time estimates come from the
          :class:`~repro.core.laxity.RemainingTimeCache`, which returns
          exactly the float a fresh WGList walk would (same inputs, same
          arithmetic) and recomputes when any input's version moved;
        * the cache is consulted at *exactly* the seed's
          ``estimate_remaining_time`` call sites, so the profiling window
          rolls at the same timestamps (a cache miss reads the table; a
          hit skips reads the seed would repeat with identical results);
        * the priority arithmetic below mirrors :func:`laxity_priority` /
          :func:`priority_with_estimates` operation-for-operation;
        * the steady-state sweep walks the Job Table's standing
          ``(start_time, job_id)`` order instead of re-sorting — the same
          sequence, because the key is frozen per job at bind time and
          *init* jobs (the only live jobs not tabled) are skipped by the
          sweep in either mode.

        The O(live) arithmetic refresh is *not* skipped on a quiet epoch:
        laxity shifts with ``now`` and a make-it job crossing into
        predicted-miss re-ranks with no input changing, so published
        priority values must track the clock every tick.  What the epoch
        gates is the expensive part — WGList walks and table reads.
        """
        now = self.ctx.now
        cache = self._remaining_cache
        stats = self.tick_stats
        recomputed_before = cache.recomputed
        reused_before = cache.reused
        if self._enable_admission:
            self._steady_state_rejects_gated(now)
        live = self.ctx.live_jobs()
        emit = self.decisions_enabled
        for job in live:
            deadline = job.deadline
            if not emit or deadline is None:
                # laxity_priority, with the walk replaced by the cache.
                if deadline is None:
                    job.priority = INFINITE_PRIORITY
                    continue
                elapsed = job.elapsed(now)
                if elapsed > deadline:
                    job.priority = INFINITE_PRIORITY
                    continue
                completion = cache.remaining(job, now) + elapsed
                job.priority = (deadline - completion
                                if deadline > completion else completion)
                continue
            # priority_with_estimates, with the walk replaced likewise.
            previous = job.priority
            remaining = cache.remaining(job, now)
            elapsed = job.elapsed(now)
            laxity = deadline - (elapsed + remaining)
            if elapsed > deadline:
                priority = INFINITE_PRIORITY
            else:
                completion = remaining + elapsed
                priority = (deadline - completion
                            if deadline > completion else completion)
            job.priority = priority
            if priority != previous:
                self.emit_decision(
                    "priority_update", job_id=job.job_id,
                    priority=priority, previous=previous, laxity=laxity,
                    remaining_estimate=remaining)
        if self._tracker is not None:
            self._record_predictions_gated(live, now)
        walked = cache.recomputed - recomputed_before
        stats.ticks += 1
        stats.walks_recomputed += walked
        stats.walks_reused += cache.reused - reused_before
        stats.jobs_ranked += len(live)
        if walked:
            stats.ticks_incremental += 1
        else:
            stats.ticks_elided += 1

    def _update_priorities_vectorized(self) -> None:
        """The struct-of-arrays tick: Algorithm 2 as masked array math.

        Bit-identical to :meth:`_update_priorities_gated` by construction
        (the full argument lives in ``docs/performance.md``):

        * estimates still come from the :class:`RemainingTimeCache` —
          the slot arrays only *mirror* its floats, refreshed through
          :meth:`RemainingTimeCache.remaining` for exactly the slots
          whose dict entry is (or would be) stale, so every consumed
          value is the cached float the scalar tick would read;
        * the elementwise priority arithmetic (``rem + elapsed``,
          ``deadline - completion``, the ``deadline > completion``
          select) maps one IEEE-754 float64 operation onto each scalar
          operation of the gated loop — elementwise ops have no
          reduction order to perturb;
        * ``cache.sync(now)`` runs up front iff at least one job needs
          an estimate this tick — the same timestamps at which the
          gated tick's first ``remaining()`` call would roll the
          profiling window;
        * *init* jobs (bound to a queue, admission pending) are not
          tabled and carry no slot; they take the scalar per-job branch
          below, verbatim from the gated loop.

        Exact float64 equality between the numpy and scalar arithmetic
        additionally assumes tick counts stay below 2**53 (about 104
        days of simulated nanoseconds) so int64 -> float64 conversions
        are lossless; the invariant checker's clock never gets close.
        """
        now = self.ctx.now
        cache = self._remaining_cache
        soa = self._rank_soa
        stats = self.tick_stats
        recomputed_before = cache.recomputed
        reused_before = cache.reused
        if self._enable_admission:
            self._steady_state_rejects_vectorized(now)
        slots = soa.live_slots()
        ranked = int(slots.size)
        refreshed = 0
        eligible_count = 0
        if ranked:
            deadline = soa.deadline[slots]
            elapsed = _np.maximum(now - soa.arrival[slots], 0)
            # NaN deadlines (latency-insensitive) compare False here and
            # fall into the INFINITE_PRIORITY fill below, like the
            # ``deadline is None`` / ``elapsed > deadline`` branches.
            eligible = elapsed <= deadline
            eligible_count = int(_np.count_nonzero(eligible))
            if eligible_count:
                cache.sync(now)
                # Read staleness only after the sync: its invalidation
                # callback may have marked additional slots stale.
                stale = soa.stale[slots] & eligible
                if stale.any():
                    refreshed = soa.refresh(slots[stale].tolist(), now)
                rem = soa.remaining[slots]
                completion = rem + elapsed
                priority = _np.where(deadline > completion,
                                     deadline - completion, completion)
                priority[~eligible] = INFINITE_PRIORITY
            else:
                priority = _np.full(ranked, INFINITE_PRIORITY)
            jobs = soa._jobs
            for slot, value in zip(slots.tolist(), priority.tolist()):
                jobs[slot].priority = value
        # Live jobs without a slot: *init* jobs whose admission decision
        # is still in flight.  Scalar branch, verbatim from the gated
        # tick (they are few and short-lived).
        extras = 0
        if self.ctx.pool.num_bound != ranked:
            for job in self.ctx.live_jobs():
                if job in soa:
                    continue
                extras += 1
                deadline = job.deadline
                if deadline is None:
                    job.priority = INFINITE_PRIORITY
                    continue
                elapsed = job.elapsed(now)
                if elapsed > deadline:
                    job.priority = INFINITE_PRIORITY
                    continue
                completion = cache.remaining(job, now) + elapsed
                job.priority = (deadline - completion
                                if deadline > completion else completion)
        walked = cache.recomputed - recomputed_before
        stats.ticks += 1
        stats.walks_recomputed += walked
        # Slots consumed without touching the dict cache are reuses too:
        # the mirror held the exact cached float.
        stats.walks_reused += (cache.reused - reused_before
                               + max(0, eligible_count - refreshed))
        stats.jobs_ranked += ranked + extras
        if walked:
            stats.ticks_incremental += 1
        else:
            stats.ticks_elided += 1

    def _steady_state_rejects_vectorized(self, now: int) -> None:
        """:func:`steady_state_pass` over the slot arrays.

        Walks the same standing ``(start_time, job_id)`` order with the
        same sequential ``totRemTime`` prefix — ``np.add.accumulate`` is
        a left-to-right sum, and skipped jobs contribute exact 0.0 terms
        (``x + 0.0 == x`` for the non-negative estimates involved), so
        every candidate sees bit-for-bit the seed's prefix.  Rejects are
        discovered first-to-last: each discovery removes that job's
        contribution and rescans only positions after it, mirroring the
        scalar pass where a rejected job never enters the prefix.  The
        whole pass decides before any ``cancel_job`` runs, exactly like
        the scalar sweep (``steady_state_pass`` returns a list).
        """
        soa = self._rank_soa
        cache = self._remaining_cache
        order = soa.order_slots()
        if order.size == 0:
            return
        deadline = soa.deadline[order]
        elapsed = _np.maximum(now - soa.arrival[order], 0)
        past = elapsed > deadline  # NaN deadline -> False: never past
        need = ~_np.isnan(deadline) & ~past
        if need.any():
            cache.sync(now)
            stale = soa.stale[order] & need
            if stale.any():
                soa.refresh(order[stale].tolist(), now)
        rem = soa.remaining[order]
        contrib = need & (rem > 0.0)
        cand = contrib & (soa.state[order] != rank_soa.RUNNING)
        rejected = past.copy()
        if cand.any():
            vals = _np.where(contrib, rem, 0.0)
            start = 0
            while True:
                cum = _np.add.accumulate(vals)
                tot_excl = _np.empty_like(cum)
                tot_excl[0] = 0.0
                tot_excl[1:] = cum[:-1]
                # Seed association order: (tot + remaining) + dur.
                cond = cand & ((tot_excl + rem) + elapsed >= deadline)
                hits = _np.nonzero(cond[start:])[0]
                if hits.size == 0:
                    break
                first = start + int(hits[0])
                rejected[first] = True
                cand[first] = False
                vals[first] = 0.0
                start = first + 1
        if not rejected.any():
            return
        rejects = [soa.job_at(slot) for slot in order[rejected].tolist()]
        cp = self.ctx.cp
        for job in rejects:
            self._admission.late_rejected += 1
            cp.cancel_job(job)

    def _record_predictions(self, live, now: int) -> None:
        """Sample Figure 10's predicted completion time per tracked job.

        The prediction is prefix-aware, mirroring Algorithm 1's queue
        walk: a job's completion estimate is its elapsed time plus the
        drain time of every job ahead of it in the current priority order
        plus its own remaining estimate — consistent with the service
        order the laxity priorities themselves induce.
        """
        profiler = self.ctx.profiler
        ordered = sorted(live, key=lambda j: (j.priority, j.arrival, j.job_id))
        prefix = 0.0
        for job in ordered:
            remaining = estimate_remaining_time(job, profiler, now)
            prefix += remaining
            if self._tracker.tracks(job):
                predicted = job.elapsed(now) + prefix
                self._tracker.record(job, now, predicted, job.priority)

    def _record_predictions_gated(self, live, now: int) -> None:
        """:meth:`_record_predictions` on cached estimates.

        Same sort key via a precomputed attrgetter, same prefix
        accumulation order, cache-identical remaining values."""
        cache = self._remaining_cache
        ordered = sorted(live, key=_PRIORITY_KEY)
        prefix = 0.0
        for job in ordered:
            remaining = cache.remaining(job, now)
            prefix += remaining
            if self._tracker.tracks(job):
                predicted = job.elapsed(now) + prefix
                self._tracker.record(job, now, predicted, job.priority)

    def _steady_state_rejects(self, now: int) -> None:
        """Algorithm 1's continuous sweep: evict jobs that can no longer
        make their deadlines so their work stops wasting the device."""
        ordered = sorted(self.ctx.live_jobs(),
                         key=lambda j: (j.start_time or j.arrival, j.job_id))
        for job in steady_state_pass(ordered, self.ctx.profiler, now):
            self._admission.late_rejected += 1
            if self.decisions_enabled:
                elapsed = job.elapsed(now)
                reason = ("past_deadline" if elapsed > job.deadline
                          else "queuing_delay")
                self.emit_decision(
                    "late_reject", job_id=job.job_id, reason=reason,
                    elapsed=elapsed, deadline=job.deadline,
                    tot_rem_time=estimate_remaining_time(
                        job, self.ctx.profiler, now))
            self.ctx.cp.cancel_job(job)

    def _steady_state_rejects_gated(self, now: int) -> None:
        """:meth:`_steady_state_rejects` on the standing enqueue order.

        ``jobs_by_start()`` is the seed's sorted snapshot minus *init*
        jobs, which the sweep skips anyway; estimates flow through the
        rank-epoch cache at the seed's exact call sites."""
        ordered = self.job_table.jobs_by_start()
        estimate = self._cached_estimate
        profiler = self.ctx.profiler
        for job in steady_state_pass(ordered, profiler, now,
                                     estimate=estimate):
            self._admission.late_rejected += 1
            if self.decisions_enabled:
                elapsed = job.elapsed(now)
                reason = ("past_deadline" if elapsed > job.deadline
                          else "queuing_delay")
                self.emit_decision(
                    "late_reject", job_id=job.job_id, reason=reason,
                    elapsed=elapsed, deadline=job.deadline,
                    tot_rem_time=estimate(job, profiler, now))
            self.ctx.cp.cancel_job(job)

    # ------------------------------------------------------------------
    # Event-core tick elision
    # ------------------------------------------------------------------

    def _arm_tick_elision(self, now: int) -> None:
        """Compute how many future ticks this tick's results cover.

        Runs at the end of a full tick.  While the rank epochs stand
        still, every input to the tick is frozen except the clock: each
        live job's priority drifts linearly (make-it laxities fall at
        rate 1, predicted-miss completion times rise at rate 1) and the
        sweep's rejection inequalities tighten at rate 1.  The margins
        below bound the first tick offset at which *any* published
        ordering or sweep decision could differ from simply keeping this
        tick's values; until then the gated timer re-arms without
        running the body (:attr:`repro.sim.engine.PeriodicTask.gate`).
        The epoch key guards everything non-clock: any admission,
        rejection, completion, WG issue/completion/preemption or window
        publication bumps one of its three counters and disarms.

        Two profiling-table states are *not* covered by the counters and
        block arming outright: unpublished ("volatile") types, whose
        live estimate moves with the clock, and carryover completions,
        whose eventual publication depends on when the next roll runs
        (the elided body skips its tick-time roll).
        """
        table = self.ctx.profiler
        if table.unpublished or table.carryover_pending():
            self._elide_key = None
            return
        cache = self._remaining_cache
        margin = math.inf
        max_makeit = None
        min_miss = None
        for job in self.ctx.live_jobs():
            deadline = job.deadline
            if deadline is None:
                continue  # best-effort: INFINITE at every tick
            if job.state is JobState.INIT:
                continue  # re-ranked at admission; the epoch key covers
            elapsed = job.elapsed(now)
            if elapsed > deadline:
                continue  # past-deadline: INFINITE at every tick
            completion = cache.remaining(job, now) + elapsed
            if deadline > completion:
                # Make-it: priority = deadline - completion, falling at
                # rate 1; flips into the predicted-miss branch when
                # completion reaches the deadline.
                priority = deadline - completion
                if priority < margin:
                    margin = priority
                if max_makeit is None or priority > max_makeit:
                    max_makeit = priority
            else:
                # Predicted miss: priority = completion, rising at rate
                # 1; flips to INFINITE when elapsed passes the deadline.
                flip = deadline - elapsed
                if flip < margin:
                    margin = flip
                if min_miss is None or completion < min_miss:
                    min_miss = completion
        if max_makeit is not None and min_miss is not None:
            # Make-it and miss priorities converge at rate 2.  Pairs
            # already ordered miss-below-make-it would cross; any such
            # pair forbids elision (gap <= 0), otherwise the smallest
            # possible gap bounds the first crossing.
            gap = min_miss - max_makeit
            margin = 0.0 if gap <= 0.0 else min(margin, gap / 2.0)
        if self._enable_admission and margin > 0.0:
            sweep = self._sweep_margin(now)
            if sweep < margin:
                margin = sweep
        if margin <= 1.0:
            self._elide_key = None
            return
        horizon = (math.inf if math.isinf(margin)
                   else int(margin) - 1)  # conservative: strict, floored
        self._elide_key = (self.rank_epoch, table.rank_epoch,
                          table.mutations)
        self._elide_until = now + horizon

    def _sweep_margin(self, now: int) -> float:
        """First tick offset at which the steady-state sweep could act.

        Replays :func:`repro.core.admission.steady_state_pass` over the
        post-sweep table (this tick's rejects are already gone) with the
        frozen cached estimates, extracting per-candidate slack instead
        of verdicts: the past-deadline rule arms when elapsed outgrows
        the deadline, the Little's-Law rule when the frozen prefix plus
        the growing elapsed term reaches it.  The prefix accumulates in
        the sweep's exact order, so each slack bounds that candidate's
        true rejection time under unchanged epochs.
        """
        margin = math.inf
        tot = 0.0
        cache = self._remaining_cache
        for job in self.job_table.jobs_by_start():
            state = job.state
            if state is not JobState.READY and state is not JobState.RUNNING:
                continue
            deadline = job.deadline
            if deadline is None:
                continue
            dur = job.elapsed(now)
            slack = deadline - dur
            if slack < margin:
                margin = slack
            remaining = cache.remaining(job, now)
            if remaining <= 0.0:
                continue  # no rate info: only the past-deadline rule
            if state == "running":
                tot += remaining
                continue
            slack = deadline - (tot + remaining + dur)
            if slack < margin:
                margin = slack
            tot += remaining
        return margin

    def _tick_gate(self) -> bool:
        """Whether the next periodic tick may skip its body (event-core).

        Installed as the updater's :attr:`~repro.sim.engine.PeriodicTask.
        gate`; True re-arms the timer without running Algorithm 2.  The
        timer event itself still fires, so the committed event sequence
        (and ``events_fired``) is identical to the ungated run.
        """
        if not laxity_math.EVENT_CORE or not laxity_math.EPOCH_GATED:
            return False
        key = self._elide_key
        if key is None:
            return False
        table = self.ctx.profiler
        if (key[0] != self.rank_epoch or key[1] != table.rank_epoch
                or key[2] != table.mutations):
            return False
        return self.ctx.now <= self._elide_until
