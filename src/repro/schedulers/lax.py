"""LAX: the laxity-aware CP scheduler (Section 4, the paper's contribution).

The pieces, all device-resident:

* **Stream inspection** builds each job's WGList when it is submitted
  (latency modelled by the CP's parser bank).
* The **Job Table** tracks per-queue state; the **Kernel Profiling Table**
  tracks per-kernel-type WG completion rates over 100 us windows.
* **Admission** (Algorithm 1) rejects jobs whose Little's-Law queuing
  delay plus own estimate would overrun the deadline.
* Every 100 us, **Algorithm 2** reassigns each live job's priority from
  its laxity (Equation 1): smallest laxity first, predicted-missers behind
  everyone with positive laxity, past-deadline jobs last.
* New jobs start at the **highest** priority — the empirically best choice
  per the paper's footnote 2; ``init_priority`` exposes the two
  alternatives the footnote compares for the ablation bench.
"""

from __future__ import annotations

from typing import Optional

from ..core.admission import QueuingDelayAdmission, steady_state_pass
from ..core.job_table import JobTable
from ..core.laxity import (INFINITE_PRIORITY, estimate_remaining_time,
                           laxity_priority, priority_with_estimates)
from ..errors import ConfigError
from ..metrics.tracking import PredictionTracker
from ..sim.engine import PeriodicTask
from ..sim.job import Job
from .base import SchedulerPolicy

#: Valid ``init_priority`` modes (paper footnote 2).
INIT_PRIORITY_MODES = ("highest", "lowest", "estimate")


class LaxityScheduler(SchedulerPolicy):
    """The integrated laxity-aware scheduler (LAX)."""

    name = "LAX"

    def __init__(self, init_priority: str = "highest",
                 enable_admission: bool = True,
                 tracker: Optional[PredictionTracker] = None,
                 warm_rates: Optional[dict] = None) -> None:
        super().__init__()
        if init_priority not in INIT_PRIORITY_MODES:
            raise ConfigError(
                f"init_priority must be one of {INIT_PRIORITY_MODES}")
        self._init_priority = init_priority
        self._enable_admission = enable_admission
        self._tracker = tracker
        #: Offline-profiled per-kernel rates seeded into the profiling
        #: table at start (see :mod:`repro.core.calibration`).
        self._warm_rates = dict(warm_rates) if warm_rates else None
        self._admission: Optional[QueuingDelayAdmission] = None
        self._updater: Optional[PeriodicTask] = None
        self.job_table: Optional[JobTable] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def start(self) -> None:
        self._admission = QueuingDelayAdmission(self.ctx.profiler)
        self.job_table = JobTable(self.ctx.config.gpu.num_queues)
        if self._warm_rates:
            from ..core.calibration import warm_table
            warm_table(self.ctx.profiler, self._warm_rates)
        self._updater = PeriodicTask(
            self.ctx.sim, self.ctx.config.overheads.lax_update_period,
            self._update_priorities, self._any_live_jobs)

    @property
    def admission(self) -> Optional[QueuingDelayAdmission]:
        """Admission statistics (None before :meth:`start`)."""
        return self._admission

    # ------------------------------------------------------------------
    # Admission (Algorithm 1)
    # ------------------------------------------------------------------

    def admit(self, job: Job) -> bool:
        if not self._enable_admission:
            if self.decisions_enabled:
                self.emit_decision("admission_verdict", job_id=job.job_id,
                                   accepted=True, reason="policy_default")
            return True
        verdict = self._admission.evaluate(
            job, self.ctx.live_jobs(), self.ctx.now,
            cus=self.ctx.dispatcher.cus,
            reserved_wgs=self._reserved_wgs(job))
        if self.decisions_enabled:
            self._emit_admission(job)
        return verdict

    def _emit_admission(self, job: Job) -> None:
        """Mirror the admission verdict (with its Little's-Law inputs)
        into the decision log."""
        decision = self._admission.last_decision
        self.emit_decision(
            "admission_verdict", job_id=job.job_id,
            accepted=decision.accepted, reason=decision.reason,
            tot_rem_time=decision.tot_rem_time,
            hold_time=decision.hold_time, dur_time=decision.dur_time,
            deadline=decision.deadline)

    def _reserved_wgs(self, candidate: Job) -> int:
        """WGs promised to admitted jobs whose work is not yet resident."""
        reserved = 0
        for job in self.ctx.live_jobs():
            if job is candidate or job.state.value != "ready":
                continue
            kernel = job.next_kernel()
            if kernel is not None:
                reserved += kernel.wgs_pending
        return reserved

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------

    def on_job_admitted(self, job: Job) -> None:
        job.priority = self._initial_priority(job)
        self.job_table.insert(job)
        self._updater.ensure_running()

    def on_job_complete(self, job: Job) -> None:
        self.job_table.remove(job)
        if self._tracker is not None:
            self._tracker.finalize_job(job)

    def on_job_rejected(self, job: Job) -> None:
        # Arrival-time rejections never reached the table; late rejections
        # (steady-state sweep) did and must leave it.
        if self.job_table is None or job.queue_id is None:
            return
        entry = self.job_table.get(job.queue_id)
        if entry is not None and entry.job is job:
            self.job_table.remove(job)

    def _initial_priority(self, job: Job) -> float:
        if not job.is_latency_sensitive:
            # Best-effort work backfills from the start (Section 5.2).
            return INFINITE_PRIORITY
        if self._init_priority == "highest":
            return 0.0
        if self._init_priority == "lowest":
            return INFINITE_PRIORITY
        return laxity_priority(job, self.ctx.profiler, self.ctx.now)

    # ------------------------------------------------------------------
    # Algorithm 2: the 100 us priority update
    # ------------------------------------------------------------------

    def _update_priorities(self) -> None:
        now = self.ctx.now
        profiler = self.ctx.profiler
        if self._enable_admission:
            self._steady_state_rejects(now)
        live = self.ctx.live_jobs()
        emit = self.decisions_enabled
        for job in live:
            previous = job.priority
            if not emit or job.deadline is None:
                job.priority = laxity_priority(job, profiler, now)
                continue
            # One WGList walk yields the priority and the Equation 1
            # inputs the decision log wants.  Changed priorities only:
            # every live job gets re-ranked each 100 us tick, and the
            # unchanged ones carry no information.
            priority, laxity, remaining = priority_with_estimates(
                job, profiler, now)
            job.priority = priority
            if priority != previous:
                self.emit_decision(
                    "priority_update", job_id=job.job_id,
                    priority=priority, previous=previous, laxity=laxity,
                    remaining_estimate=remaining)
        if self._tracker is not None:
            self._record_predictions(live, now)

    def _record_predictions(self, live, now: int) -> None:
        """Sample Figure 10's predicted completion time per tracked job.

        The prediction is prefix-aware, mirroring Algorithm 1's queue
        walk: a job's completion estimate is its elapsed time plus the
        drain time of every job ahead of it in the current priority order
        plus its own remaining estimate — consistent with the service
        order the laxity priorities themselves induce.
        """
        profiler = self.ctx.profiler
        ordered = sorted(live, key=lambda j: (j.priority, j.arrival, j.job_id))
        prefix = 0.0
        for job in ordered:
            remaining = estimate_remaining_time(job, profiler, now)
            prefix += remaining
            if self._tracker.tracks(job):
                predicted = job.elapsed(now) + prefix
                self._tracker.record(job, now, predicted, job.priority)

    def _steady_state_rejects(self, now: int) -> None:
        """Algorithm 1's continuous sweep: evict jobs that can no longer
        make their deadlines so their work stops wasting the device."""
        ordered = sorted(self.ctx.live_jobs(),
                         key=lambda j: (j.start_time or j.arrival, j.job_id))
        for job in steady_state_pass(ordered, self.ctx.profiler, now):
            self._admission.late_rejected += 1
            if self.decisions_enabled:
                elapsed = job.elapsed(now)
                reason = ("past_deadline" if elapsed > job.deadline
                          else "queuing_delay")
                self.emit_decision(
                    "late_reject", job_id=job.job_id, reason=reason,
                    elapsed=elapsed, deadline=job.deadline,
                    tot_rem_time=estimate_remaining_time(
                        job, self.ctx.profiler, now))
            self.ctx.cp.cancel_job(job)
