"""LAX: the laxity-aware CP scheduler (Section 4, the paper's contribution).

The pieces, all device-resident:

* **Stream inspection** builds each job's WGList when it is submitted
  (latency modelled by the CP's parser bank).
* The **Job Table** tracks per-queue state; the **Kernel Profiling Table**
  tracks per-kernel-type WG completion rates over 100 us windows.
* **Admission** (Algorithm 1) rejects jobs whose Little's-Law queuing
  delay plus own estimate would overrun the deadline.
* Every 100 us, **Algorithm 2** reassigns each live job's priority from
  its laxity (Equation 1): smallest laxity first, predicted-missers behind
  everyone with positive laxity, past-deadline jobs last.
* New jobs start at the **highest** priority — the empirically best choice
  per the paper's footnote 2; ``init_priority`` exposes the two
  alternatives the footnote compares for the ablation bench.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Optional

from ..core import laxity as laxity_math
from ..core.admission import QueuingDelayAdmission, steady_state_pass
from ..core.job_table import JobTable
from ..core.laxity import (INFINITE_PRIORITY, RemainingTimeCache,
                           estimate_remaining_time, laxity_priority,
                           priority_with_estimates)
from ..errors import ConfigError
from ..metrics.tracking import PredictionTracker
from ..sim.engine import PeriodicTask
from ..sim.job import Job
from .base import SchedulerPolicy

#: Valid ``init_priority`` modes (paper footnote 2).
INIT_PRIORITY_MODES = ("highest", "lowest", "estimate")

#: Priority order used by the prediction sampler: precomputed attrgetter
#: instead of a per-tick lambda (same tuples, no closure dispatch).
_PRIORITY_KEY = attrgetter("priority", "arrival", "job_id")


class TickStats:
    """Accounting of the epoch-gated Algorithm 2 tick (gated mode only).

    A tick is *elided* when every live job's remaining-time estimate came
    out of the :class:`~repro.core.laxity.RemainingTimeCache` — the rank
    epoch stood still, so the tick ran without a single WGList walk or
    profiling-table read.  *Incremental* ticks recomputed only the
    epoch-dirty jobs.  Either way the O(live) priority refresh still runs:
    laxity drifts with the clock, so the published values must track
    ``now`` even when the ordering inputs are unchanged.
    """

    __slots__ = ("ticks", "ticks_elided", "ticks_incremental",
                 "walks_recomputed", "walks_reused", "jobs_ranked")

    def __init__(self) -> None:
        self.ticks = 0
        self.ticks_elided = 0
        self.ticks_incremental = 0
        self.walks_recomputed = 0
        self.walks_reused = 0
        self.jobs_ranked = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class LaxityScheduler(SchedulerPolicy):
    """The integrated laxity-aware scheduler (LAX)."""

    name = "LAX"

    def __init__(self, init_priority: str = "highest",
                 enable_admission: bool = True,
                 tracker: Optional[PredictionTracker] = None,
                 warm_rates: Optional[dict] = None) -> None:
        super().__init__()
        if init_priority not in INIT_PRIORITY_MODES:
            raise ConfigError(
                f"init_priority must be one of {INIT_PRIORITY_MODES}")
        self._init_priority = init_priority
        self._enable_admission = enable_admission
        self._tracker = tracker
        #: Offline-profiled per-kernel rates seeded into the profiling
        #: table at start (see :mod:`repro.core.calibration`).
        self._warm_rates = dict(warm_rates) if warm_rates else None
        self._admission: Optional[QueuingDelayAdmission] = None
        self._updater: Optional[PeriodicTask] = None
        self.job_table: Optional[JobTable] = None
        #: Rank epoch: bumped whenever a remaining-time input or the live
        #: set changes (WG completion, admission, rejection, completion,
        #: stream append).  Together with the profiling table's own
        #: ``rank_epoch`` it tells the gated tick whether any WGList walk
        #: can possibly produce a new value.
        self.rank_epoch = 0
        self._remaining_cache: Optional[RemainingTimeCache] = None
        #: Gated-tick accounting (stays at zero in seed mode).
        self.tick_stats = TickStats()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def start(self) -> None:
        self._remaining_cache = RemainingTimeCache(self.ctx.profiler)
        self._admission = QueuingDelayAdmission(
            self.ctx.profiler, estimate=self._cached_estimate)
        self.job_table = JobTable(self.ctx.config.gpu.num_queues)
        if self._warm_rates:
            from ..core.calibration import warm_table
            warm_table(self.ctx.profiler, self._warm_rates)
        self._updater = PeriodicTask(
            self.ctx.sim, self.ctx.config.overheads.lax_update_period,
            self._update_priorities, self._any_live_jobs)

    @property
    def admission(self) -> Optional[QueuingDelayAdmission]:
        """Admission statistics (None before :meth:`start`)."""
        return self._admission

    def _cached_estimate(self, job: Job, table, now: int) -> float:
        """``estimate_remaining_time`` through the rank-epoch cache.

        Signature-compatible with the free function so Algorithm 1's
        helpers accept it unchanged.  In seed mode it falls through to the
        verbatim per-call WGList walk, keeping the differential comparison
        honest.
        """
        if not laxity_math.EPOCH_GATED:
            return estimate_remaining_time(job, table, now)
        return self._remaining_cache.remaining(job, now)

    # ------------------------------------------------------------------
    # Admission (Algorithm 1)
    # ------------------------------------------------------------------

    def admit(self, job: Job) -> bool:
        if not self._enable_admission:
            if self.decisions_enabled:
                self.emit_decision("admission_verdict", job_id=job.job_id,
                                   accepted=True, reason="policy_default")
            return True
        verdict = self._admission.evaluate(
            job, self.ctx.live_jobs(), self.ctx.now,
            cus=self.ctx.dispatcher.cus,
            reserved_wgs=self._reserved_wgs(job))
        if self.decisions_enabled:
            self._emit_admission(job)
        return verdict

    def _emit_admission(self, job: Job) -> None:
        """Mirror the admission verdict (with its Little's-Law inputs)
        into the decision log."""
        decision = self._admission.last_decision
        self.emit_decision(
            "admission_verdict", job_id=job.job_id,
            accepted=decision.accepted, reason=decision.reason,
            tot_rem_time=decision.tot_rem_time,
            hold_time=decision.hold_time, dur_time=decision.dur_time,
            deadline=decision.deadline)

    def _reserved_wgs(self, candidate: Job) -> int:
        """WGs promised to admitted jobs whose work is not yet resident."""
        reserved = 0
        for job in self.ctx.live_jobs():
            if job is candidate or job.state.value != "ready":
                continue
            kernel = job.next_kernel()
            if kernel is not None:
                reserved += kernel.wgs_pending
        return reserved

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------

    def on_job_admitted(self, job: Job) -> None:
        self.rank_epoch += 1
        job.priority = self._initial_priority(job)
        self.job_table.insert(job)
        self._updater.ensure_running()

    def on_job_complete(self, job: Job) -> None:
        self.rank_epoch += 1
        if self._remaining_cache is not None:
            self._remaining_cache.forget(job)
        self.job_table.remove(job)
        if self._tracker is not None:
            self._tracker.finalize_job(job)

    def on_job_rejected(self, job: Job) -> None:
        self.rank_epoch += 1
        if self._remaining_cache is not None:
            # Arrival-time candidates are cached by the admission
            # estimator, so even never-tabled jobs must be pruned.
            self._remaining_cache.forget(job)
        # Arrival-time rejections never reached the table; late rejections
        # (steady-state sweep) did and must leave it.
        if self.job_table is None or job.queue_id is None:
            return
        entry = self.job_table.get(job.queue_id)
        if entry is not None and entry.job is job:
            self.job_table.remove(job)

    def on_wg_complete(self, kernel) -> None:
        # The kernel already bumped its job's rank_version; this records
        # that *some* remaining-time input moved since the last tick.
        self.rank_epoch += 1

    def on_job_extended(self, job: Job) -> None:
        self.rank_epoch += 1

    def _initial_priority(self, job: Job) -> float:
        if not job.is_latency_sensitive:
            # Best-effort work backfills from the start (Section 5.2).
            return INFINITE_PRIORITY
        if self._init_priority == "highest":
            return 0.0
        if self._init_priority == "lowest":
            return INFINITE_PRIORITY
        return laxity_priority(job, self.ctx.profiler, self.ctx.now)

    # ------------------------------------------------------------------
    # Algorithm 2: the 100 us priority update
    # ------------------------------------------------------------------

    def _update_priorities(self) -> None:
        if not laxity_math.EPOCH_GATED:
            self._update_priorities_seed()
            return
        self._update_priorities_gated()

    def _update_priorities_seed(self) -> None:
        """The seed tick, verbatim: full table walk + fresh estimates.

        Kept runnable behind ``laxity.EPOCH_GATED`` so the differential
        suite can assert the gated tick is bit-identical to it."""
        now = self.ctx.now
        profiler = self.ctx.profiler
        if self._enable_admission:
            self._steady_state_rejects(now)
        live = self.ctx.live_jobs()
        emit = self.decisions_enabled
        for job in live:
            previous = job.priority
            if not emit or job.deadline is None:
                job.priority = laxity_priority(job, profiler, now)
                continue
            # One WGList walk yields the priority and the Equation 1
            # inputs the decision log wants.  Changed priorities only:
            # every live job gets re-ranked each 100 us tick, and the
            # unchanged ones carry no information.
            priority, laxity, remaining = priority_with_estimates(
                job, profiler, now)
            job.priority = priority
            if priority != previous:
                self.emit_decision(
                    "priority_update", job_id=job.job_id,
                    priority=priority, previous=previous, laxity=laxity,
                    remaining_estimate=remaining)
        if self._tracker is not None:
            self._record_predictions(live, now)

    def _update_priorities_gated(self) -> None:
        """The epoch-gated tick: Algorithm 2 without redundant walks.

        Bit-identical to :meth:`_update_priorities_seed` by construction:

        * remaining-time estimates come from the
          :class:`~repro.core.laxity.RemainingTimeCache`, which returns
          exactly the float a fresh WGList walk would (same inputs, same
          arithmetic) and recomputes when any input's version moved;
        * the cache is consulted at *exactly* the seed's
          ``estimate_remaining_time`` call sites, so the profiling window
          rolls at the same timestamps (a cache miss reads the table; a
          hit skips reads the seed would repeat with identical results);
        * the priority arithmetic below mirrors :func:`laxity_priority` /
          :func:`priority_with_estimates` operation-for-operation;
        * the steady-state sweep walks the Job Table's standing
          ``(start_time, job_id)`` order instead of re-sorting — the same
          sequence, because the key is frozen per job at bind time and
          *init* jobs (the only live jobs not tabled) are skipped by the
          sweep in either mode.

        The O(live) arithmetic refresh is *not* skipped on a quiet epoch:
        laxity shifts with ``now`` and a make-it job crossing into
        predicted-miss re-ranks with no input changing, so published
        priority values must track the clock every tick.  What the epoch
        gates is the expensive part — WGList walks and table reads.
        """
        now = self.ctx.now
        cache = self._remaining_cache
        stats = self.tick_stats
        recomputed_before = cache.recomputed
        reused_before = cache.reused
        if self._enable_admission:
            self._steady_state_rejects_gated(now)
        live = self.ctx.live_jobs()
        emit = self.decisions_enabled
        for job in live:
            deadline = job.deadline
            if not emit or deadline is None:
                # laxity_priority, with the walk replaced by the cache.
                if deadline is None:
                    job.priority = INFINITE_PRIORITY
                    continue
                elapsed = job.elapsed(now)
                if elapsed > deadline:
                    job.priority = INFINITE_PRIORITY
                    continue
                completion = cache.remaining(job, now) + elapsed
                job.priority = (deadline - completion
                                if deadline > completion else completion)
                continue
            # priority_with_estimates, with the walk replaced likewise.
            previous = job.priority
            remaining = cache.remaining(job, now)
            elapsed = job.elapsed(now)
            laxity = deadline - (elapsed + remaining)
            if elapsed > deadline:
                priority = INFINITE_PRIORITY
            else:
                completion = remaining + elapsed
                priority = (deadline - completion
                            if deadline > completion else completion)
            job.priority = priority
            if priority != previous:
                self.emit_decision(
                    "priority_update", job_id=job.job_id,
                    priority=priority, previous=previous, laxity=laxity,
                    remaining_estimate=remaining)
        if self._tracker is not None:
            self._record_predictions_gated(live, now)
        walked = cache.recomputed - recomputed_before
        stats.ticks += 1
        stats.walks_recomputed += walked
        stats.walks_reused += cache.reused - reused_before
        stats.jobs_ranked += len(live)
        if walked:
            stats.ticks_incremental += 1
        else:
            stats.ticks_elided += 1

    def _record_predictions(self, live, now: int) -> None:
        """Sample Figure 10's predicted completion time per tracked job.

        The prediction is prefix-aware, mirroring Algorithm 1's queue
        walk: a job's completion estimate is its elapsed time plus the
        drain time of every job ahead of it in the current priority order
        plus its own remaining estimate — consistent with the service
        order the laxity priorities themselves induce.
        """
        profiler = self.ctx.profiler
        ordered = sorted(live, key=lambda j: (j.priority, j.arrival, j.job_id))
        prefix = 0.0
        for job in ordered:
            remaining = estimate_remaining_time(job, profiler, now)
            prefix += remaining
            if self._tracker.tracks(job):
                predicted = job.elapsed(now) + prefix
                self._tracker.record(job, now, predicted, job.priority)

    def _record_predictions_gated(self, live, now: int) -> None:
        """:meth:`_record_predictions` on cached estimates.

        Same sort key via a precomputed attrgetter, same prefix
        accumulation order, cache-identical remaining values."""
        cache = self._remaining_cache
        ordered = sorted(live, key=_PRIORITY_KEY)
        prefix = 0.0
        for job in ordered:
            remaining = cache.remaining(job, now)
            prefix += remaining
            if self._tracker.tracks(job):
                predicted = job.elapsed(now) + prefix
                self._tracker.record(job, now, predicted, job.priority)

    def _steady_state_rejects(self, now: int) -> None:
        """Algorithm 1's continuous sweep: evict jobs that can no longer
        make their deadlines so their work stops wasting the device."""
        ordered = sorted(self.ctx.live_jobs(),
                         key=lambda j: (j.start_time or j.arrival, j.job_id))
        for job in steady_state_pass(ordered, self.ctx.profiler, now):
            self._admission.late_rejected += 1
            if self.decisions_enabled:
                elapsed = job.elapsed(now)
                reason = ("past_deadline" if elapsed > job.deadline
                          else "queuing_delay")
                self.emit_decision(
                    "late_reject", job_id=job.job_id, reason=reason,
                    elapsed=elapsed, deadline=job.deadline,
                    tot_rem_time=estimate_remaining_time(
                        job, self.ctx.profiler, now))
            self.ctx.cp.cancel_job(job)

    def _steady_state_rejects_gated(self, now: int) -> None:
        """:meth:`_steady_state_rejects` on the standing enqueue order.

        ``jobs_by_start()`` is the seed's sorted snapshot minus *init*
        jobs, which the sweep skips anyway; estimates flow through the
        rank-epoch cache at the seed's exact call sites."""
        ordered = self.job_table.jobs_by_start()
        estimate = self._cached_estimate
        profiler = self.ctx.profiler
        for job in steady_state_pass(ordered, profiler, now,
                                     estimate=estimate):
            self._admission.late_rejected += 1
            if self.decisions_enabled:
                elapsed = job.elapsed(now)
                reason = ("past_deadline" if elapsed > job.deadline
                          else "queuing_delay")
                self.emit_decision(
                    "late_reject", job_id=job.job_id, reason=reason,
                    elapsed=elapsed, deadline=job.deadline,
                    tot_rem_time=estimate(job, profiler, now))
            self.ctx.cp.cancel_job(job)
