"""Multi-Level Feedback Queue (MLFQ) with the paper's tuning (Section 5.1).

Two priority levels, RR service within the high level.  A job is *demoted*
to the low level once its runtime exceeds one third of its deadline and
*promoted* back once its runtime exceeds two thirds of its deadline — the
configuration the authors found to perform best.  The pathology the paper
reports (long-running jobs bouncing back to high priority and squatting on
resources past their deadline) emerges directly from these rules.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..sim.engine import PeriodicTask
from ..sim.job import Job
from ..sim.kernel import KernelInstance
from .base import SchedulerPolicy

#: Priority values for the two levels; lower value = served first.
HIGH_LEVEL = 0.0
LOW_LEVEL = 1.0


class MultiLevelFeedbackQueueScheduler(SchedulerPolicy):
    """Two-level MLFQ with runtime-fraction demotion/promotion."""

    name = "MLFQ"

    def __init__(self, demote_fraction: float = 1.0 / 3.0,
                 promote_fraction: float = 2.0 / 3.0) -> None:
        super().__init__()
        self._demote_fraction = demote_fraction
        self._promote_fraction = promote_fraction
        self._pointer = 0
        self._updater: Optional[PeriodicTask] = None

    def start(self) -> None:
        self._updater = PeriodicTask(
            self.ctx.sim, self.ctx.config.overheads.lax_update_period,
            self._update_levels, self._any_live_jobs)

    def on_job_admitted(self, job: Job) -> None:
        # Deadline-less background work starts (and stays) low priority.
        job.priority = HIGH_LEVEL if job.is_latency_sensitive else LOW_LEVEL
        self._updater.ensure_running()

    def _update_levels(self) -> None:
        now = self.ctx.now
        emit = self.decisions_enabled
        for job in self.ctx.live_jobs():
            if job.deadline is None:
                continue
            runtime = job.elapsed(now)
            previous = job.priority
            if runtime > self._promote_fraction * job.deadline:
                job.priority = HIGH_LEVEL
            elif runtime > self._demote_fraction * job.deadline:
                job.priority = LOW_LEVEL
            if emit and job.priority != previous:
                self.emit_decision("priority_update", job_id=job.job_id,
                                   priority=job.priority, previous=previous)

    # RR within a level: rank by (level, rotating queue distance).
    def _distance(self, kernel: KernelInstance) -> int:
        num_queues = self.ctx.config.gpu.num_queues
        queue_id = kernel.job.queue_id
        if queue_id is None:
            return num_queues
        return (queue_id - self._pointer) % num_queues

    def issue_order(self, kernels: Sequence[KernelInstance]) -> List[KernelInstance]:
        return sorted(kernels,
                      key=lambda k: (k.job.priority, self._distance(k),
                                     k.job.job_id))

    def on_kernels_served(self, kernels: Sequence[KernelInstance]) -> None:
        served = [k for k in kernels if k.job.queue_id is not None]
        if not served:
            return
        num_queues = self.ctx.config.gpu.num_queues
        farthest = max(self._distance(k) for k in served)
        previous = self._pointer
        self._pointer = (self._pointer + farthest + 1) % num_queues
        if self.decisions_enabled:
            self.emit_decision("queue_rotation", pointer=self._pointer,
                               previous=previous, served=len(served))
