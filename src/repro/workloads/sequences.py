"""RNN sequence-length sampling.

The paper drives its RNN benchmarks with the WMT '15 language-translation
trace, "which has an average sequence length of 16" (Section 5.2), and the
variability of sequence lengths is exactly what gives LAX/SJF/SRF traction
over RR (jobs differ in size).  We do not have the trace, so sequence
lengths are drawn from a shifted negative-binomial distribution with mean
16, clipped to a realistic sentence-length range — matching the trace's
mean and qualitative spread.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import WorkloadError

#: Distribution parameters: 4 + NB(r=4, p=0.25) has mean 4 + 12 = 16.
_SHIFT = 4
_NB_R = 4
_NB_P = 0.25
#: Clip range of plausible sentence lengths.
MIN_SEQUENCE = 4
MAX_SEQUENCE = 48
#: Target mean, for documentation and tests.
MEAN_SEQUENCE = 16


def sample_sequence_lengths(num_jobs: int,
                            rng: np.random.Generator) -> List[int]:
    """Draw ``num_jobs`` sequence lengths with mean ~16."""
    if num_jobs <= 0:
        raise WorkloadError("num_jobs must be positive")
    draws = _SHIFT + rng.negative_binomial(_NB_R, _NB_P, size=num_jobs)
    return [int(np.clip(value, MIN_SEQUENCE, MAX_SEQUENCE))
            for value in draws]
