"""Few-kernel network packet-processing workloads: IPV6 and CUCKOO.

Both are single-kernel jobs whose input size is set by line rate — 8192
packets per batch, i.e. the packets arriving per 100 us on a 40 Gbps link
(Section 3.1.2).  IPV6 performs longest-prefix matching with a stringent
40 us deadline; CUCKOO performs cuckoo hash-table lookups within 600 us.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..config import GPUConfig
from ..sim.job import Job
from ..units import US
from .arrivals import exponential_arrivals
from .kernels import CUCKOO_KERNEL, IPV6_KERNEL, KernelSpec

#: Deadlines from prior networking work (Table 4).
IPV6_DEADLINE = 40 * US
CUCKOO_DEADLINE = 600 * US


def _build_single_kernel_jobs(benchmark: str, spec: KernelSpec,
                              deadline: int, num_jobs: int,
                              rate_jobs_per_s: float, seed: int,
                              gpu: GPUConfig) -> List[Job]:
    rng = np.random.default_rng(seed)
    arrivals = exponential_arrivals(num_jobs, rate_jobs_per_s, rng)
    descriptor = spec.descriptor(gpu)
    return [Job(job_id=job_id, benchmark=benchmark,
                descriptors=[descriptor], arrival=arrivals[job_id],
                deadline=deadline)
            for job_id in range(num_jobs)]


def build_ipv6_jobs(num_jobs: int, rate_jobs_per_s: float, seed: int,
                    gpu: GPUConfig) -> List[Job]:
    """IPV6 longest-prefix-matching jobs (40 us deadline)."""
    return _build_single_kernel_jobs("IPV6", IPV6_KERNEL, IPV6_DEADLINE,
                                     num_jobs, rate_jobs_per_s, seed, gpu)


def build_cuckoo_jobs(num_jobs: int, rate_jobs_per_s: float, seed: int,
                      gpu: GPUConfig) -> List[Job]:
    """Cuckoo hash-table lookup jobs (600 us deadline)."""
    return _build_single_kernel_jobs("CUCKOO", CUCKOO_KERNEL,
                                     CUCKOO_DEADLINE, num_jobs,
                                     rate_jobs_per_s, seed, gpu)
