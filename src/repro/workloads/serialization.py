"""Workload serialisation: save and load job sets as JSON.

Lets users capture a generated workload (or hand-author one from their
own production traces) and replay it bit-for-bit later or on another
machine — the moral equivalent of the paper's recorded job-arrival traces.

Format (``repro-workload-v1``)::

    {
      "format": "repro-workload-v1",
      "kernels": {
        "<name>": {"num_wgs": ..., "threads_per_wg": ..., "wg_work": ...,
                    "vgpr_bytes_per_wg": ..., "lds_bytes_per_wg": ...,
                    "context_bytes": ..., "cu_concurrency": ...,
                    "bytes_per_wg": ...}
      },
      "jobs": [
        {"job_id": ..., "benchmark": ..., "arrival": ...,
         "deadline": ... | null, "tag": ... | null, "user_priority": ...,
         "kernels": ["<name>", ...],
         "dependencies": {"<index>": [<index>, ...]} | null}
      ]
    }

Kernel *types* are deduplicated by name; all times are integer
nanoseconds.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from ..errors import WorkloadError
from ..sim.job import Job
from ..sim.kernel import KernelDescriptor

FORMAT_TAG = "repro-workload-v1"

_DESCRIPTOR_FIELDS = ("num_wgs", "threads_per_wg", "wg_work",
                      "vgpr_bytes_per_wg", "lds_bytes_per_wg",
                      "context_bytes", "cu_concurrency", "bytes_per_wg")


def workload_to_dict(jobs: Iterable[Job]) -> Dict:
    """Serialise jobs (and their kernel types) to a plain dict."""
    job_list = list(jobs)
    if not job_list:
        raise WorkloadError("nothing to serialise")
    kernels: Dict[str, Dict] = {}
    serialized_jobs: List[Dict] = []
    for job in job_list:
        names = []
        for kernel in job.kernels:
            desc = kernel.descriptor
            entry = {field: getattr(desc, field)
                     for field in _DESCRIPTOR_FIELDS}
            existing = kernels.get(desc.name)
            if existing is not None and existing != entry:
                raise WorkloadError(
                    f"kernel name {desc.name!r} used with two different "
                    "shapes; serialisation requires unique names per shape")
            kernels[desc.name] = entry
            names.append(desc.name)
        dependencies = None
        if job.dependencies is not None:
            dependencies = {str(index): list(deps)
                            for index, deps in job.dependencies.items()}
        serialized_jobs.append({
            "job_id": job.job_id,
            "benchmark": job.benchmark,
            "arrival": job.arrival,
            "deadline": job.deadline,
            "tag": job.tag,
            "user_priority": job.user_priority,
            "kernels": names,
            "dependencies": dependencies,
        })
    return {"format": FORMAT_TAG, "kernels": kernels,
            "jobs": serialized_jobs}


def workload_from_dict(data: Dict) -> List[Job]:
    """Rebuild a job list from :func:`workload_to_dict` output."""
    if data.get("format") != FORMAT_TAG:
        raise WorkloadError(
            f"unsupported workload format {data.get('format')!r}; "
            f"expected {FORMAT_TAG!r}")
    descriptors = {
        name: KernelDescriptor(name=name, **fields)
        for name, fields in data.get("kernels", {}).items()
    }
    jobs: List[Job] = []
    for entry in data.get("jobs", []):
        try:
            chain = [descriptors[name] for name in entry["kernels"]]
        except KeyError as missing:
            raise WorkloadError(f"job references unknown kernel {missing}")
        dependencies = entry.get("dependencies")
        if dependencies is not None:
            dependencies = {int(index): tuple(deps)
                            for index, deps in dependencies.items()}
        jobs.append(Job(
            job_id=entry["job_id"], benchmark=entry["benchmark"],
            descriptors=chain, arrival=entry["arrival"],
            deadline=entry["deadline"], tag=entry.get("tag"),
            user_priority=entry.get("user_priority", 0),
            dependencies=dependencies))
    if not jobs:
        raise WorkloadError("workload file contains no jobs")
    return jobs


def save_workload(jobs: Iterable[Job], path: str) -> int:
    """Write a workload JSON file; returns the job count."""
    data = workload_to_dict(jobs)
    with open(path, "w", encoding="utf-8") as sink:
        json.dump(data, sink, indent=1)
    return len(data["jobs"])


def load_workload(path: str) -> List[Job]:
    """Load a workload JSON file."""
    with open(path, encoding="utf-8") as source:
        return workload_from_dict(json.load(source))
