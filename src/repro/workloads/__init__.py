"""The eight latency-sensitive benchmarks of Table 4, plus generators."""

from .arrivals import exponential_arrivals, uniform_arrivals
from .background import (BACKGROUND_KERNEL, build_background_jobs,
                         merge_workloads)
from .batching import member_response_times, merge_into_batches
from .fleet import (FLEET_NUM_JOBS, FLEET_NUM_SERVICES, build_fleet_jobs,
                    fleet_config, fleet_kernel_specs, fleet_warm_rates,
                    peak_concurrent_jobs)
from .ipa import GMM_DEADLINE, STEM_DEADLINE, build_gmm_jobs, build_stem_jobs
from .kernels import (ACTIVATION_KERNEL_5, CUCKOO_KERNEL, GEMM_KERNEL,
                      GMM_KERNEL, IPV6_KERNEL, KernelSpec, LSTM_KERNELS,
                      STEM_KERNEL, TABLE1_SPECS, TENSOR_KERNEL_1,
                      TENSOR_KERNEL_2, TENSOR_KERNEL_3, TENSOR_KERNEL_4)
from .networking import (CUCKOO_DEADLINE, IPV6_DEADLINE, build_cuckoo_jobs,
                         build_ipv6_jobs)
from .registry import (BENCHMARK_ORDER, BENCHMARKS, FEW_KERNEL_BENCHMARKS,
                       MANY_KERNEL_BENCHMARKS, RATE_LEVELS, BenchmarkSpec,
                       benchmark_spec, build_workload,
                       parse_rate_multiplier, validate_rate_level)
from .rnn import (GATE_RATIO, RNN_DEADLINE, build_rnn_jobs,
                  rnn_job_descriptors, rnn_kernel_specs)
from .streaming import (SUSTAINED_DEADLINE, SUSTAINED_RATES, SUSTAINED_SEED,
                        SUSTAINED_WEIGHTS, ArrivalSource, DiurnalSource,
                        JobTemplate, OnOffSource, PoissonSource,
                        build_sustained_jobs, sustained_fleet_source,
                        sustained_source, sustained_templates)
from .serialization import (load_workload, save_workload,
                            workload_from_dict, workload_to_dict)
from .sequences import (MAX_SEQUENCE, MEAN_SEQUENCE, MIN_SEQUENCE,
                        sample_sequence_lengths)

__all__ = [
    "ArrivalSource",
    "BACKGROUND_KERNEL",
    "BENCHMARKS",
    "BENCHMARK_ORDER",
    "BenchmarkSpec",
    "DiurnalSource",
    "JobTemplate",
    "OnOffSource",
    "PoissonSource",
    "SUSTAINED_DEADLINE",
    "SUSTAINED_RATES",
    "SUSTAINED_SEED",
    "SUSTAINED_WEIGHTS",
    "FEW_KERNEL_BENCHMARKS",
    "FLEET_NUM_JOBS",
    "FLEET_NUM_SERVICES",
    "KernelSpec",
    "LSTM_KERNELS",
    "MANY_KERNEL_BENCHMARKS",
    "RATE_LEVELS",
    "RNN_DEADLINE",
    "TABLE1_SPECS",
    "benchmark_spec",
    "build_background_jobs",
    "build_workload",
    "build_cuckoo_jobs",
    "build_fleet_jobs",
    "fleet_config",
    "fleet_kernel_specs",
    "fleet_warm_rates",
    "peak_concurrent_jobs",
    "build_gmm_jobs",
    "build_ipv6_jobs",
    "build_rnn_jobs",
    "build_stem_jobs",
    "build_sustained_jobs",
    "exponential_arrivals",
    "parse_rate_multiplier",
    "load_workload",
    "member_response_times",
    "merge_into_batches",
    "merge_workloads",
    "rnn_job_descriptors",
    "rnn_kernel_specs",
    "sample_sequence_lengths",
    "save_workload",
    "sustained_fleet_source",
    "sustained_source",
    "sustained_templates",
    "uniform_arrivals",
    "validate_rate_level",
    "workload_from_dict",
    "workload_to_dict",
]
