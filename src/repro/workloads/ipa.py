"""Few-kernel intelligent-personal-assistant workloads: GMM and STEM.

GMM (Gaussian mixture model scoring) and STEM (word stemming) are the two
dominant single-kernel stages of the Sirius/Lucida ASR pipeline
(Section 3.1.3).  Deadlines follow the authors' methodology: run in
isolation, then double the worst-case latency — 3 ms for GMM, 300 us for
STEM (Table 4).
"""

from __future__ import annotations

from typing import List

from ..config import GPUConfig
from ..sim.job import Job
from ..units import MS, US
from .kernels import GMM_KERNEL, STEM_KERNEL
from .networking import _build_single_kernel_jobs

#: Deadlines per the isolation-x2 methodology (Table 4).
GMM_DEADLINE = 3 * MS
STEM_DEADLINE = 300 * US


def build_gmm_jobs(num_jobs: int, rate_jobs_per_s: float, seed: int,
                   gpu: GPUConfig) -> List[Job]:
    """GMM feature-scoring jobs (3 ms deadline)."""
    return _build_single_kernel_jobs("GMM", GMM_KERNEL, GMM_DEADLINE,
                                     num_jobs, rate_jobs_per_s, seed, gpu)


def build_stem_jobs(num_jobs: int, rate_jobs_per_s: float, seed: int,
                    gpu: GPUConfig) -> List[Job]:
    """Stemmer jobs (300 us deadline)."""
    return _build_single_kernel_jobs("STEM", STEM_KERNEL, STEM_DEADLINE,
                                     num_jobs, rate_jobs_per_s, seed, gpu)
