"""Streaming workloads: open-loop arrival sources for sustained traffic.

Finite workloads (``build_workload``) materialize every job up front,
which caps run length at whatever fits in memory.  The sources here are
**lazy**: :meth:`ArrivalSource.jobs` is a generator that materializes one
:class:`~repro.sim.job.Job` per arrival, so a
:meth:`~repro.sim.device.GPUSystem.submit_stream` run holds only the
in-flight jobs (plus the feeder's look-ahead window) no matter how many
flow through.  Combined with job retirement
(:mod:`repro.sim.modes`) this is the O(live) memory model ROADMAP item 1
calls for — the substrate for million-job soak runs.

Three arrival curves, all integer-tick and seed-deterministic:

* :class:`PoissonSource` — stationary Poisson process; exponential
  inter-arrival gaps at a fixed rate, exactly the process
  :func:`~repro.workloads.arrivals.exponential_arrivals` uses (including
  the one-tick nudge that keeps arrivals strictly increasing).
* :class:`DiurnalSource` — sinusoidally modulated rate
  ``rate(t) = base * (1 + amplitude * sin(2*pi*t / period))``, sampled by
  Lewis–Shedler thinning against the peak rate, the standard exact method
  for non-homogeneous Poisson processes.
* :class:`OnOffSource` — a two-state Markov-modulated Poisson process
  (MMPP-2): exponential dwell times in a bursty *on* state and a quiet
  *off* state, each with its own Poisson rate.  The classic bursty
  datacenter-traffic model.

Each source draws jobs from a palette of :class:`JobTemplate` shapes
(kernel chains from the Table 1 families).  Re-calling :meth:`jobs`
rebuilds the generator from the stored seed, so two iterations of the
same source yield identical job sequences — the property the
prefix-identity tests pin.

The **SUSTAINED** cell (registered in ``BENCHMARKS`` but, like the fleet
cell, deliberately kept out of the eight-benchmark Table 4 order) mixes
three cheap single-chain shapes scaled from the STEM / IPV6 / LSTM
families, calibrated so the knee of the load-vs-SLO curve sits inside the
``x0.5 .. x2.5`` rate-multiplier sweep ``benchmarks/bench_streaming_scale.py``
runs.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..config import GPUConfig
from ..errors import WorkloadError
from ..sim import job_pool
from ..sim.job import Job
from ..sim.kernel import KernelDescriptor
from ..units import SEC, US
from .kernels import IPV6_KERNEL, STEM_KERNEL, TENSOR_KERNEL_4

#: Offset separating the template-choice RNG stream from the arrival
#: stream, so adding a template never perturbs arrival times.
_TEMPLATE_SEED_OFFSET = 0x5EED


@dataclass(frozen=True)
class JobTemplate:
    """Reusable shape a source stamps jobs from.

    Holds fully built descriptors (not specs) so materializing a job is
    one :class:`~repro.sim.job.Job` construction — no per-job descriptor
    math on the arrival path.
    """

    benchmark: str
    descriptors: Tuple[KernelDescriptor, ...]
    #: Relative deadline in ticks; None for latency-insensitive work.
    deadline: Optional[int]
    tag: Optional[str] = None
    user_priority: int = 0

    def build(self, job_id: int, arrival: int) -> Job:
        """Materialize one job of this shape.

        Routed through :mod:`repro.sim.job_pool` so event-core runs with
        retirement reuse parked Job/KernelInstance objects; with the pool
        disabled this is exactly the seed ``Job(...)`` construction.
        """
        return job_pool.build_job(
            job_id, self.benchmark, list(self.descriptors), arrival,
            self.deadline, self.user_priority, self.tag)


class ArrivalSource:
    """Base class: an open-loop job stream over a template palette.

    Subclasses implement :meth:`_arrivals`, a generator of strictly
    increasing absolute arrival ticks.  Template choice uses an RNG
    stream derived from (but independent of) the arrival stream, so the
    same seed always yields the same (arrival, shape) sequence —
    :meth:`jobs` is replayable and :meth:`materialize` is its prefix.
    """

    def __init__(self, templates: Sequence[JobTemplate],
                 weights: Optional[Sequence[float]] = None,
                 seed: int = 1, start: int = 0) -> None:
        if not templates:
            raise WorkloadError("arrival source needs at least one template")
        if weights is not None:
            if len(weights) != len(templates):
                raise WorkloadError(
                    f"{len(weights)} weights for {len(templates)} templates")
            if any(w <= 0 for w in weights):
                raise WorkloadError("template weights must be positive")
        if start < 0:
            raise WorkloadError("stream start must be >= 0")
        self.templates = tuple(templates)
        total = float(sum(weights)) if weights is not None \
            else float(len(templates))
        raw = weights if weights is not None else [1.0] * len(templates)
        #: Cumulative template-choice thresholds in [0, 1].
        self._cumulative = tuple(
            itertools.accumulate(w / total for w in raw))
        self.seed = seed
        self.start = start

    # -- to be provided by subclasses -----------------------------------

    def _arrivals(self, rng: np.random.Generator) -> Iterator[int]:
        """Yield strictly increasing absolute arrival ticks, forever."""
        raise NotImplementedError

    def rate_at(self, tick: int) -> float:
        """Instantaneous arrival rate (jobs/s) at an absolute tick."""
        raise NotImplementedError

    # -- the stream ------------------------------------------------------

    def _pick(self, rng: np.random.Generator) -> JobTemplate:
        draw = rng.random()
        for template, threshold in zip(self.templates, self._cumulative):
            if draw < threshold:
                return template
        return self.templates[-1]

    def jobs(self, first_job_id: int = 0) -> Iterator[Job]:
        """Lazy, unbounded job stream; deterministic in the source seed."""
        arrival_rng = np.random.default_rng(self.seed)
        template_rng = np.random.default_rng(
            self.seed + _TEMPLATE_SEED_OFFSET)
        job_id = first_job_id
        for arrival in self._arrivals(arrival_rng):
            yield self._pick(template_rng).build(job_id, arrival)
            job_id += 1

    def materialize(self, num_jobs: int) -> List[Job]:
        """The first ``num_jobs`` jobs of the stream as a finite list."""
        if num_jobs <= 0:
            raise WorkloadError("num_jobs must be positive")
        return list(itertools.islice(self.jobs(), num_jobs))


class PoissonSource(ArrivalSource):
    """Stationary Poisson arrivals at a fixed jobs/s rate."""

    def __init__(self, templates: Sequence[JobTemplate],
                 rate_jobs_per_s: float,
                 weights: Optional[Sequence[float]] = None,
                 seed: int = 1, start: int = 0) -> None:
        if rate_jobs_per_s <= 0:
            raise WorkloadError("arrival rate must be positive")
        super().__init__(templates, weights, seed, start)
        self.rate_jobs_per_s = float(rate_jobs_per_s)

    def rate_at(self, tick: int) -> float:
        return self.rate_jobs_per_s

    def _arrivals(self, rng: np.random.Generator) -> Iterator[int]:
        mean_gap = SEC / self.rate_jobs_per_s
        current = self.start
        while True:
            # Same draw + one-tick nudge as exponential_arrivals, so the
            # stream stays strictly increasing and integer-valued.
            current += max(1, int(round(rng.exponential(mean_gap))))
            yield current


class DiurnalSource(ArrivalSource):
    """Sinusoidal (diurnal) rate curve, sampled by thinning.

    ``rate(t) = base * (1 + amplitude * sin(2*pi*(t - start)/period))``;
    ``amplitude`` in [0, 1) keeps the rate strictly positive.  Candidate
    arrivals are drawn at the peak rate and accepted with probability
    ``rate(t)/peak`` (Lewis & Shedler 1979), which samples the exact
    non-homogeneous process.
    """

    def __init__(self, templates: Sequence[JobTemplate],
                 base_rate_jobs_per_s: float, amplitude: float,
                 period_ticks: int,
                 weights: Optional[Sequence[float]] = None,
                 seed: int = 1, start: int = 0) -> None:
        if base_rate_jobs_per_s <= 0:
            raise WorkloadError("base arrival rate must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise WorkloadError("amplitude must be in [0, 1)")
        if period_ticks <= 0:
            raise WorkloadError("period must be positive")
        super().__init__(templates, weights, seed, start)
        self.base_rate_jobs_per_s = float(base_rate_jobs_per_s)
        self.amplitude = float(amplitude)
        self.period_ticks = int(period_ticks)

    def rate_at(self, tick: int) -> float:
        phase = 2.0 * math.pi * (tick - self.start) / self.period_ticks
        return self.base_rate_jobs_per_s * (
            1.0 + self.amplitude * math.sin(phase))

    def _arrivals(self, rng: np.random.Generator) -> Iterator[int]:
        peak = self.base_rate_jobs_per_s * (1.0 + self.amplitude)
        mean_gap = SEC / peak
        current = self.start
        while True:
            current += max(1, int(round(rng.exponential(mean_gap))))
            if rng.random() * peak < self.rate_at(current):
                yield current


class OnOffSource(ArrivalSource):
    """Bursty MMPP-2 arrivals: exponential on/off dwells, per-state rates.

    While *on*, arrivals are Poisson at ``on_rate``; while *off*, at
    ``off_rate`` (0 silences the off state entirely).  Dwell times are
    exponential with the given means, giving the standard two-state
    Markov-modulated Poisson process.
    """

    def __init__(self, templates: Sequence[JobTemplate],
                 on_rate_jobs_per_s: float, off_rate_jobs_per_s: float,
                 mean_on_ticks: float, mean_off_ticks: float,
                 weights: Optional[Sequence[float]] = None,
                 seed: int = 1, start: int = 0) -> None:
        if on_rate_jobs_per_s <= 0:
            raise WorkloadError("on-state arrival rate must be positive")
        if off_rate_jobs_per_s < 0:
            raise WorkloadError("off-state arrival rate must be >= 0")
        if mean_on_ticks <= 0 or mean_off_ticks <= 0:
            raise WorkloadError("dwell-time means must be positive")
        super().__init__(templates, weights, seed, start)
        self.on_rate_jobs_per_s = float(on_rate_jobs_per_s)
        self.off_rate_jobs_per_s = float(off_rate_jobs_per_s)
        self.mean_on_ticks = float(mean_on_ticks)
        self.mean_off_ticks = float(mean_off_ticks)

    def mean_rate_jobs_per_s(self) -> float:
        """Long-run average rate (dwell-weighted mix of the two states)."""
        total = self.mean_on_ticks + self.mean_off_ticks
        return (self.on_rate_jobs_per_s * self.mean_on_ticks
                + self.off_rate_jobs_per_s * self.mean_off_ticks) / total

    def rate_at(self, tick: int) -> float:  # pragma: no cover - advisory
        # The modulating state is random, not a function of time; report
        # the long-run mean (what the empirical-rate property checks).
        return self.mean_rate_jobs_per_s()

    def _arrivals(self, rng: np.random.Generator) -> Iterator[int]:
        current = float(self.start)
        on = True
        state_end = current + rng.exponential(self.mean_on_ticks)
        last_emitted = self.start
        while True:
            rate = self.on_rate_jobs_per_s if on else self.off_rate_jobs_per_s
            if rate <= 0.0:
                current = state_end
            else:
                gap = rng.exponential(SEC / rate)
                if current + gap < state_end:
                    current += gap
                    arrival = max(last_emitted + 1, int(round(current)))
                    last_emitted = arrival
                    yield arrival
                    continue
                current = state_end
            on = not on
            mean = self.mean_on_ticks if on else self.mean_off_ticks
            state_end = current + rng.exponential(mean)


# ----------------------------------------------------------------------
# The SUSTAINED cell
# ----------------------------------------------------------------------

#: Deadline of the sustained cell's latency-sensitive jobs (ticks).
SUSTAINED_DEADLINE = 300 * US

#: Default seed of the sustained stream (matches build_workload's).
SUSTAINED_SEED = 1

#: jobs/s at the named rate levels.  Calibrated so the "high" level runs
#: the device around half its lane capacity — comfortably inside SLO —
#: and the knee of the load-vs-SLO curve appears between x1 and x2.5 of
#: it (see benchmarks/bench_streaming_scale.py).
SUSTAINED_RATES = {"high": 600000.0, "medium": 300000.0, "low": 150000.0}

#: Small kernels scaled down from the Table 1 families: one-WG and
#: two-WG launches keep the event count per job low enough for
#: million-job soak runs while exercising the same calibration math.
SUSTAINED_TINY_KERNEL = TENSOR_KERNEL_4.scaled("sustained.tiny")
SUSTAINED_LOOKUP_KERNEL = IPV6_KERNEL.scaled(
    "sustained.lookup", thread_factor=1.0 / 16.0)
SUSTAINED_QUERY_KERNEL = STEM_KERNEL.scaled(
    "sustained.query", thread_factor=1.0 / 16.0)


def sustained_templates(gpu: GPUConfig = GPUConfig()) -> List[JobTemplate]:
    """The sustained cell's job shapes (descriptors built for ``gpu``)."""
    return [
        JobTemplate("SUSTAINED",
                    (SUSTAINED_TINY_KERNEL.descriptor(gpu),),
                    SUSTAINED_DEADLINE, tag="tiny"),
        JobTemplate("SUSTAINED",
                    (SUSTAINED_LOOKUP_KERNEL.descriptor(gpu),),
                    SUSTAINED_DEADLINE, tag="lookup"),
        JobTemplate("SUSTAINED",
                    (SUSTAINED_QUERY_KERNEL.descriptor(gpu),),
                    SUSTAINED_DEADLINE, tag="query"),
    ]

#: Template mix of the sustained cell: mostly tiny/lookup traffic with a
#: heavier query tail.
SUSTAINED_WEIGHTS = (0.4, 0.4, 0.2)


def sustained_source(rate_jobs_per_s: float, seed: int = SUSTAINED_SEED,
                     gpu: GPUConfig = GPUConfig()) -> PoissonSource:
    """The sustained cell's arrival source at an explicit rate."""
    return PoissonSource(sustained_templates(gpu), rate_jobs_per_s,
                         weights=SUSTAINED_WEIGHTS, seed=seed)


def sustained_fleet_source(num_devices: int,
                           rate_jobs_per_s: float = SUSTAINED_RATES["high"],
                           seed: int = SUSTAINED_SEED,
                           gpu: GPUConfig = GPUConfig()) -> PoissonSource:
    """The sustained stream scaled to a fleet: one front door, N devices.

    ``rate_jobs_per_s`` is the *per-device* rate; the source offers
    ``num_devices`` times that, so a perfectly balanced router loads
    each device exactly like the single-device sustained cell at the
    same level.  This is the cluster knee sweep's traffic generator
    (see ``benchmarks/bench_cluster_router.py``).
    """
    if num_devices < 1:
        raise WorkloadError(
            f"fleet needs at least one device, got {num_devices}")
    return sustained_source(num_devices * rate_jobs_per_s, seed, gpu)


def build_sustained_jobs(num_jobs: int, rate_jobs_per_s: float, seed: int,
                         gpu: GPUConfig) -> List[Job]:
    """Finite prefix of the sustained stream (the registry builder).

    Identical, job for job, to truncating :func:`sustained_source`'s lazy
    stream at ``num_jobs`` — the equivalence the prefix-identity tests
    and the bench ``--check`` mode assert.
    """
    return sustained_source(rate_jobs_per_s, seed, gpu).materialize(num_jobs)
