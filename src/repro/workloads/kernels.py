"""Kernel library calibrated to Table 1 of the paper.

Each :class:`KernelSpec` carries the paper's measured characteristics of a
kernel type — isolated execution time, thread count, context size — and
derives the simulator's :class:`~repro.sim.kernel.KernelDescriptor` from
them.  Calibration identity: a kernel with N workgroups has isolated wall
time ``wg_work * max(1, ceil(N / full_rate_lanes))`` on the simulated
device, so ``wg_work`` is the isolated time divided by the wave count.
Resource footprints follow the paper's context sizes: the per-WG vector
register footprint is the context size spread over the WGs (this is what
makes the RNN GEMM, at ~140 KB per WG, register-bound — one WG per CU).

``scale(...)`` produces derived specs for other hidden-layer sizes (the
HYBRID benchmark's 256-wide GRU): threads and elementwise work scale
linearly with the hidden size, GEMM work quadratically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from functools import lru_cache

from ..config import GPUConfig
from ..errors import WorkloadError
from ..sim.kernel import KernelDescriptor
from ..units import US


@dataclass(frozen=True)
class KernelSpec:
    """Paper-facing description of one kernel type (Table 1 row)."""

    #: Profiling-table key; unique per (model, hidden size, kernel).
    name: str
    #: Isolated execution time of one launch, microseconds (Table 1).
    isolated_us: float
    #: Total threads in one launch (Table 1).
    threads: int
    #: Workgroup size in threads.
    threads_per_wg: int
    #: Aggregate context size, kilobytes (Table 1).
    context_kb: float
    #: LDS per workgroup, kilobytes.
    lds_kb_per_wg: float = 1.0
    #: WGs of this kernel one CU runs at full rate (4 = compute-bound, one
    #: per SIMD unit; latency-bound kernels hide memory latency and scale
    #: toward the 10-wavefront occupancy limit).
    cu_concurrency: int = 4

    def __post_init__(self) -> None:
        if self.isolated_us <= 0 or self.threads <= 0:
            raise WorkloadError(f"{self.name}: bad timing/thread spec")
        if self.threads_per_wg <= 0 or self.threads_per_wg > 1024:
            raise WorkloadError(f"{self.name}: bad workgroup size")

    @property
    def num_wgs(self) -> int:
        """Workgroups in one launch."""
        return math.ceil(self.threads / self.threads_per_wg)

    def descriptor(self, gpu: GPUConfig) -> KernelDescriptor:
        """Simulator descriptor calibrated so the isolated time matches."""
        return _descriptor_cached(self, gpu)

    def scaled(self, name: str, work_factor: float = 1.0,
               thread_factor: float = 1.0) -> "KernelSpec":
        """Derived spec with scaled work and thread count."""
        threads = max(self.threads_per_wg,
                      int(round(self.threads * thread_factor)))
        return replace(self, name=name,
                       isolated_us=self.isolated_us * work_factor,
                       threads=threads,
                       context_kb=self.context_kb * thread_factor)


@lru_cache(maxsize=None)
def _descriptor_cached(spec: KernelSpec, gpu: GPUConfig) -> KernelDescriptor:
    num_wgs = spec.num_wgs
    per_cu = math.ceil(num_wgs / gpu.num_cus)
    slowdown = max(1.0, per_cu / spec.cu_concurrency)
    wg_work = max(1, round(spec.isolated_us * US / slowdown))
    context_bytes = int(spec.context_kb * 1024)
    # Table 1's context size is the *preemption* footprint (registers +
    # LDS + control state at the launch's full occupancy); the live VGPR
    # allocation limiting residency is a fraction of it — Section 3.2
    # reports the LSTM GEMM using ~1.3% of device registers while its
    # context is 562 KB.  A quarter of the per-WG context matches that.
    vgpr_per_wg = min(gpu.vgpr_bytes_per_cu,
                      max(256, context_bytes // num_wgs // 4))
    lds_per_wg = min(gpu.lds_bytes_per_cu,
                     max(256, int(spec.lds_kb_per_wg * 1024)))
    return KernelDescriptor(
        name=spec.name,
        num_wgs=num_wgs,
        threads_per_wg=spec.threads_per_wg,
        wg_work=wg_work,
        vgpr_bytes_per_wg=vgpr_per_wg,
        lds_bytes_per_wg=lds_per_wg,
        context_bytes=context_bytes,
        cu_concurrency=spec.cu_concurrency,
    )


# ---------------------------------------------------------------------------
# Table 1: LSTM kernels at hidden size 128, batch 1.
# ---------------------------------------------------------------------------

# The tensor/activation kernels are small elementwise operators —
# bandwidth-bound, so they keep scaling with occupancy (cu_concurrency 8);
# the rocBLAS GEMM is compute-bound on the SIMD units (cu_concurrency 4).
TENSOR_KERNEL_1 = KernelSpec("lstm128.TensorKernel1", 3.96, 16384, 256, 397.0,
                             cu_concurrency=8)
TENSOR_KERNEL_2 = KernelSpec("lstm128.TensorKernel2", 1.79, 128, 64, 3.1,
                             cu_concurrency=8)
TENSOR_KERNEL_3 = KernelSpec("lstm128.TensorKernel3", 4.45, 2048, 256, 106.8,
                             cu_concurrency=8)
TENSOR_KERNEL_4 = KernelSpec("lstm128.TensorKernel4", 4.74, 64, 64, 9.1,
                             cu_concurrency=8)
ACTIVATION_KERNEL_5 = KernelSpec("lstm128.ActivationKernel5", 8.87, 128, 64,
                                 11.1, cu_concurrency=8)
GEMM_KERNEL = KernelSpec("lstm128.rocBLASGEMMKernel1", 127.48, 1024, 256,
                         562.4, lds_kb_per_wg=8.0)

#: The LSTM kernel family keyed by short name (Table 1 order).
LSTM_KERNELS = {
    "TK1": TENSOR_KERNEL_1,
    "TK2": TENSOR_KERNEL_2,
    "TK3": TENSOR_KERNEL_3,
    "TK4": TENSOR_KERNEL_4,
    "AK5": ACTIVATION_KERNEL_5,
    "GEMM": GEMM_KERNEL,
}

# ---------------------------------------------------------------------------
# Table 1: few-kernel benchmarks (networking and IPA).
# ---------------------------------------------------------------------------

IPV6_KERNEL = KernelSpec("ipv6.IPV6Kernel", 25.0, 8192, 256, 329.0)
CUCKOO_KERNEL = KernelSpec("cuckoo.cuckooKernel", 300.0, 8192, 256, 566.0)
# GMM scoring streams large model tables and is dominated by memory
# latency (Section 3.1.3), so its WGs keep scaling with occupancy well
# past the SIMD count — without this, no admission policy could discover
# that several GMM jobs share the device for free, which the paper's
# results for GMM clearly require.
GMM_KERNEL = KernelSpec("gmm.GMMKernel", 1500.0, 2048, 256, 195.5,
                        cu_concurrency=8)
# Stemming is pointer-chasing over dictionary tables: latency-bound with
# moderate occupancy scaling.
STEM_KERNEL = KernelSpec("stem.STEMKernel", 150.0, 4096, 256, 317.0,
                         cu_concurrency=6)

#: Every Table 1 row, for the characterisation bench.
TABLE1_SPECS = (
    TENSOR_KERNEL_1, TENSOR_KERNEL_2, TENSOR_KERNEL_3, TENSOR_KERNEL_4,
    ACTIVATION_KERNEL_5, GEMM_KERNEL, IPV6_KERNEL, CUCKOO_KERNEL,
    GMM_KERNEL, STEM_KERNEL,
)
