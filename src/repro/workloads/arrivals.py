"""Job arrival processes.

Section 5.3: "For each arrival rate, we randomly generate specific job
arrival times based on an exponential distribution."  Arrivals here are a
seeded Poisson process — exponential inter-arrival gaps at the Table 4
rate, accumulated to absolute tick timestamps.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import WorkloadError
from ..units import SEC


def exponential_arrivals(num_jobs: int, rate_jobs_per_s: float,
                         rng: np.random.Generator,
                         start: int = 0) -> List[int]:
    """Absolute arrival times (ticks) of a Poisson process.

    ``rate_jobs_per_s`` is the mean arrival rate; the first job arrives one
    gap after ``start``.  Times are strictly ordered (equal draws are
    nudged by one tick) so event ordering stays deterministic.
    """
    if num_jobs <= 0:
        raise WorkloadError("num_jobs must be positive")
    if rate_jobs_per_s <= 0:
        raise WorkloadError("arrival rate must be positive")
    mean_gap_ticks = SEC / rate_jobs_per_s
    gaps = rng.exponential(mean_gap_ticks, size=num_jobs)
    arrivals: List[int] = []
    current = start
    for gap in gaps:
        current += max(1, int(round(gap)))
        arrivals.append(current)
    return arrivals


def uniform_arrivals(num_jobs: int, gap_ticks: int,
                     start: int = 0) -> List[int]:
    """Deterministic fixed-gap arrivals (used by tests and ablations)."""
    if num_jobs <= 0:
        raise WorkloadError("num_jobs must be positive")
    if gap_ticks <= 0:
        raise WorkloadError("gap must be positive")
    return [start + gap_ticks * (index + 1) for index in range(num_jobs)]
