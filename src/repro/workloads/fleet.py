"""Large-fleet inference cell: ~a thousand concurrent deadline jobs.

The Table-4 benchmarks stress the *timing model* — a few dozen jobs with
paper-calibrated kernels.  This module stresses the *scheduler tick*: a
fleet of small inference services (each with a private kernel family, as
a multi-tenant cluster would see) all resident at once, so the LAX
priority update and admission walks dominate wall-clock.  It is the cell
``benchmarks/bench_scheduler_tick.py`` times and is deliberately **not**
registered in the Table-4 benchmark registry — it models scale, not any
paper figure.

Shape (defaults):

* :data:`FLEET_NUM_JOBS` jobs across :data:`FLEET_NUM_SERVICES` services;
  each service owns :data:`FLEET_TYPES_PER_SERVICE` private kernel types
  (``svc012.k1`` ...), so the profiling table carries ~300 type rows and
  no estimate can be shared across services;
* 8-12 kernels per job, two wide WGs each, per-WG work 400-720 us by
  type — WG completions (and therefore rank-epoch bumps) happen on a
  per-tick cadence, jobs live for many ticks, and the WG count stays
  low so dispatcher pumping (an engine cost, shape-memoized in this PR
  and identical across scheduler modes) does not drown the
  scheduler-tick signal this cell exists to measure.  Tick count scales
  with per-WG work while pump count scales with total WGs, so wide WGs
  keep the tick path the dominant term;
* every arrival lands inside the first 100 us (one scheduler period), so
  effectively the whole fleet is live simultaneously — peak concurrency
  is the admitted-job count (see :func:`peak_concurrent_jobs`);
* most deadlines are drawn very wide (120 s - 360 s) and one job in
  sixteen gets a tight 1 - 8 ms deadline, so admission keeps >= 1024
  jobs live for the whole run while both rejection paths (arrival-time
  Little's-law and the steady-state late reject) still fire.

Two scale-specific calibration notes, both tuned empirically:

* **Deadlines look absurd next to the ~0.1 s makespan, deliberately.**
  Under 1000-way contention the measured per-type completion rates are
  orders of magnitude below isolated rates, so Algorithm 2's remaining
  estimates transiently sum to tens of seconds across the fleet.  LAX
  sheds any job whose deadline the estimates cannot cover — the paper's
  intended behaviour — so a cell that wants >= 1024 *co-resident* jobs
  must hand out deadlines above that transient, not above the makespan.
* **The profiling table must be pre-warmed** (:func:`fleet_warm_rates`).
  A cold candidate on a busy device is rejected outright by Algorithm 1
  (its hold estimate falls back to its whole deadline), and with private
  per-service kernels a service rejected once never gets profiled — the
  fleet would collapse to whichever services won the first cold-probe
  window.  Seeding every type's isolated rate (the offline profile a
  production fleet would have) removes the cold-start artefact.

:func:`fleet_config` widens the queue pool past the fleet size so no job
is backlog-serialised behind a bound queue.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from ..config import GPUConfig, SimConfig
from ..errors import WorkloadError
from ..sim.job import Job
from ..units import MS, US
from .kernels import KernelSpec

#: Fleet-cell defaults (the bench's >= 1024-concurrent-jobs floor needs
#: headroom for the handful of rejections admission produces).
FLEET_NUM_JOBS = 1280
FLEET_NUM_SERVICES = 96
FLEET_TYPES_PER_SERVICE = 3
#: Arrival window: one LAX update period, so the fleet is co-resident.
FLEET_ARRIVAL_WINDOW = 100 * US
#: Deadline band for the generous majority — above the fleet's transient
#: contention estimates (tens of seconds), not just above the makespan.
FLEET_DEADLINE_MIN = 120_000 * MS
FLEET_DEADLINE_MAX = 360_000 * MS
#: One job in this many draws a tight deadline instead, keeping the
#: arrival-time and steady-state rejection paths exercised at scale.
FLEET_TIGHT_EVERY = 16
FLEET_TIGHT_MIN = 1 * MS
FLEET_TIGHT_MAX = 8 * MS


def fleet_kernel_specs(num_services: int = FLEET_NUM_SERVICES,
                       types_per_service: int = FLEET_TYPES_PER_SERVICE
                       ) -> List[List[KernelSpec]]:
    """Per-service private kernel families (``svc012.k1`` ...).

    Per-WG work is spread deterministically over 400-720 us by global
    type index; 512 threads at 256/WG gives two WGs per launch, so a
    launch running alone finishes in exactly its per-WG work.
    """
    if num_services <= 0 or types_per_service <= 0:
        raise WorkloadError("fleet needs at least one service and type")
    families: List[List[KernelSpec]] = []
    for service in range(num_services):
        family = []
        for knum in range(types_per_service):
            type_index = service * types_per_service + knum
            isolated_us = 400.0 + (type_index * 116) % 324
            family.append(KernelSpec(
                name=f"svc{service:03d}.k{knum + 1}",
                isolated_us=isolated_us,
                threads=512,
                threads_per_wg=256,
                context_kb=48.0 + (type_index % 5) * 16.0,
                cu_concurrency=8,
            ))
        families.append(family)
    return families


def build_fleet_jobs(num_jobs: int = FLEET_NUM_JOBS, seed: int = 7,
                     gpu: GPUConfig = None,
                     num_services: int = FLEET_NUM_SERVICES,
                     types_per_service: int = FLEET_TYPES_PER_SERVICE
                     ) -> List[Job]:
    """The large-fleet cell: ``num_jobs`` co-resident inference requests."""
    if num_jobs <= 0:
        raise WorkloadError("num_jobs must be positive")
    if gpu is None:
        gpu = fleet_config().gpu
    rng = np.random.default_rng(seed)
    families = fleet_kernel_specs(num_services, types_per_service)
    descriptors = [[spec.descriptor(gpu) for spec in family]
                   for family in families]
    arrivals = np.sort(rng.integers(0, FLEET_ARRIVAL_WINDOW, size=num_jobs))
    jobs = []
    for index in range(num_jobs):
        service = int(rng.integers(0, num_services))
        num_kernels = int(rng.integers(8, 13))
        stream = [descriptors[service][int(k)]
                  for k in rng.integers(0, types_per_service,
                                        size=num_kernels)]
        if index % FLEET_TIGHT_EVERY == FLEET_TIGHT_EVERY - 1:
            deadline = int(rng.integers(FLEET_TIGHT_MIN, FLEET_TIGHT_MAX + 1))
        else:
            deadline = int(rng.integers(FLEET_DEADLINE_MIN,
                                        FLEET_DEADLINE_MAX + 1))
        jobs.append(Job(job_id=index, benchmark="FLEET",
                        tag=f"svc{service:03d}",
                        descriptors=stream,
                        arrival=int(arrivals[index]),
                        deadline=deadline))
    return jobs


def fleet_warm_rates(gpu: GPUConfig = None,
                     num_services: int = FLEET_NUM_SERVICES,
                     types_per_service: int = FLEET_TYPES_PER_SERVICE
                     ) -> dict:
    """Isolated completion rate (WGs per tick) of every fleet type.

    Fed to :func:`repro.core.calibration.warm_table` before the run —
    the stand-in for the offline profile a production fleet would ship
    (see the module docstring for why the cell needs it).
    """
    if gpu is None:
        gpu = fleet_config().gpu
    rates = {}
    for family in fleet_kernel_specs(num_services, types_per_service):
        for spec in family:
            descriptor = spec.descriptor(gpu)
            rates[spec.name] = (descriptor.num_wgs
                                / descriptor.isolated_time(gpu))
    return rates


def fleet_config() -> SimConfig:
    """Table-2 device with the queue pool widened past the fleet size.

    1536 hardware queues (vs the paper's 128) so queue binding never
    serialises the fleet through the backlog — the cell measures
    scheduler-tick cost at scale, not queue starvation.
    """
    base = SimConfig()
    return base.replace(gpu=dataclasses.replace(base.gpu, num_queues=1536))


def peak_concurrent_jobs(outcomes: Sequence) -> int:
    """Max jobs simultaneously on-device, from outcome intervals.

    A job occupies the device from its arrival until its completion (or,
    for rejected work, effectively not at all — rejections happen within
    one parse latency of arrival and are excluded).  Standard sweep over
    interval endpoints; end ties count before start ties so a back-to-back
    handoff at the same tick is not counted as overlap (the conservative
    reading — the bench's >= 1024 floor must hold even under it).
    """
    events = []
    for outcome in outcomes:
        if outcome.completion is None:
            continue
        events.append((outcome.arrival, 1))
        events.append((outcome.completion, -1))
    events.sort()
    live = peak = 0
    for _, delta in events:
        live += delta
        if live > peak:
            peak = live
    return peak
