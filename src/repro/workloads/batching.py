"""Batched execution model for the Figure 4 study.

Figure 4 contrasts two ways of raising GPU utilisation for small jobs:
**batching** (merge B requests into one launch — higher utilisation, but
every member waits for the B-th arrival and for the whole batch to finish)
and **streams** (launch each request on its own queue as it arrives).

A batched workload replaces every B consecutive jobs with one merged job:

* arrival = the B-th member's arrival (the batch must be full),
* each kernel's WG count is scaled by B (batched tensor ops),
* for variable-length RNNs the longest member is the template and shorter
  members are padded to it, exactly as the paper pads batches,
* a member's response time = merged-job completion - member arrival.

:func:`member_response_times` recovers the per-member responses from a
finished run.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from ..errors import WorkloadError
from ..metrics.collector import RunMetrics
from ..sim.job import Job
from ..sim.kernel import KernelDescriptor


def merge_into_batches(jobs: Sequence[Job],
                       batch_size: int) -> Tuple[List[Job], Dict[int, List[int]]]:
    """Merge ``jobs`` (arrival order) into batch-of-``batch_size`` jobs.

    Returns the merged job list and a map from merged job id to the member
    arrival times it covers.  A final partial batch is launched as-is.
    """
    if batch_size <= 0:
        raise WorkloadError("batch size must be positive")
    ordered = sorted(jobs, key=lambda j: (j.arrival, j.job_id))
    merged: List[Job] = []
    members: Dict[int, List[int]] = {}
    for batch_id, start in enumerate(range(0, len(ordered), batch_size)):
        group = ordered[start:start + batch_size]
        template = max(group, key=lambda j: j.total_work)
        descriptors = [_scale_descriptor(k.descriptor, len(group))
                       for k in template.kernels]
        job = Job(job_id=batch_id, benchmark=template.benchmark,
                  descriptors=descriptors,
                  arrival=max(member.arrival for member in group),
                  deadline=template.deadline,
                  tag=f"batch={len(group)}")
        merged.append(job)
        members[batch_id] = [member.arrival for member in group]
    return merged, members


def _scale_descriptor(descriptor: KernelDescriptor,
                      batch: int) -> KernelDescriptor:
    """One launch covering ``batch`` members: B x WGs, B x context."""
    return dataclasses.replace(
        descriptor,
        num_wgs=descriptor.num_wgs * batch,
        context_bytes=descriptor.context_bytes * batch)


def member_response_times(metrics: RunMetrics,
                          members: Dict[int, List[int]]) -> List[int]:
    """Per-member response times (ticks) of a finished batched run."""
    responses: List[int] = []
    for outcome in metrics.outcomes:
        if outcome.completion is None:
            continue
        for arrival in members.get(outcome.job_id, []):
            responses.append(outcome.completion - arrival)
    return responses
