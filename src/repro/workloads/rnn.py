"""Many-kernel RNN inference workloads: LSTM, GRU, Vanilla and Hybrid.

One job is one inference request: a prologue of tensor-setup kernels
followed by a per-time-step loop of GEMM + elementwise kernels, with the
loop count equal to the request's sequence length (Section 3.1.1).  The
LSTM structure reproduces Table 1 exactly at sequence length 13 (3 / 5 /
2 / 40 / 39 / 13 calls of the six kernels); GRU and Vanilla use the same
kernel family with fewer gates, hence fewer per-step kernels and lighter
GEMMs.

Hidden-size scaling (for HYBRID's 256-wide GRU): elementwise kernels scale
linearly in work and threads, the GEMM quadratically in work and linearly
in threads.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Sequence

import numpy as np

from ..config import GPUConfig
from ..errors import WorkloadError
from ..sim.job import Job
from ..sim.kernel import KernelDescriptor
from ..units import MS
from .arrivals import exponential_arrivals
from .kernels import (ACTIVATION_KERNEL_5, GEMM_KERNEL, KernelSpec,
                      TENSOR_KERNEL_1, TENSOR_KERNEL_2, TENSOR_KERNEL_3,
                      TENSOR_KERNEL_4)
from .sequences import sample_sequence_lengths

#: Real-time deadline for all RNN inference jobs (Table 4).
RNN_DEADLINE = 7 * MS

#: GEMM work relative to LSTM's 4-gate cell (GRU: 3 gates, Vanilla: 1).
GATE_RATIO = {"lstm": 1.0, "gru": 0.75, "van": 0.3}

#: Prologue kernel calls per model: (TK1, TK2, TK3).
_PROLOGUE = {"lstm": (3, 5, 2), "gru": (3, 4, 2), "van": (2, 3, 1)}

#: Elementwise (TK4, AK5) pairs per time step; LSTM=3 gives Table 1's
#: TK4 = 3L + 1 and AK5 = 3L at L = 13 (40 and 39 calls).
_PAIRS_PER_STEP = {"lstm": 3, "gru": 2, "van": 1}


@lru_cache(maxsize=None)
def rnn_kernel_specs(model: str, hidden: int) -> Dict[str, KernelSpec]:
    """The six-kernel family of one (model, hidden-size) configuration."""
    if model not in GATE_RATIO:
        raise WorkloadError(f"unknown RNN model {model!r}")
    if hidden <= 0:
        raise WorkloadError("hidden size must be positive")
    factor = hidden / 128.0
    gate = GATE_RATIO[model]
    prefix = f"{model}{hidden}"
    return {
        "TK1": TENSOR_KERNEL_1.scaled(f"{prefix}.TensorKernel1",
                                      work_factor=factor, thread_factor=factor),
        "TK2": TENSOR_KERNEL_2.scaled(f"{prefix}.TensorKernel2",
                                      work_factor=factor, thread_factor=factor),
        "TK3": TENSOR_KERNEL_3.scaled(f"{prefix}.TensorKernel3",
                                      work_factor=factor, thread_factor=factor),
        "TK4": TENSOR_KERNEL_4.scaled(f"{prefix}.TensorKernel4",
                                      work_factor=factor, thread_factor=factor),
        "AK5": ACTIVATION_KERNEL_5.scaled(f"{prefix}.ActivationKernel5",
                                          work_factor=factor, thread_factor=factor),
        "GEMM": GEMM_KERNEL.scaled(f"{prefix}.rocBLASGEMMKernel1",
                                   work_factor=factor * factor * gate,
                                   thread_factor=factor),
    }


def rnn_job_descriptors(model: str, hidden: int, seq_len: int,
                        gpu: GPUConfig) -> List[KernelDescriptor]:
    """Kernel chain of one inference request, in launch order."""
    if seq_len <= 0:
        raise WorkloadError("sequence length must be positive")
    specs = rnn_kernel_specs(model, hidden)
    tk1, tk2, tk3 = (specs["TK1"], specs["TK2"], specs["TK3"])
    tk4, ak5, gemm = (specs["TK4"], specs["AK5"], specs["GEMM"])
    n1, n2, n3 = _PROLOGUE[model]
    chain: List[KernelDescriptor] = []
    chain.extend(tk1.descriptor(gpu) for _ in range(n1))
    chain.extend(tk2.descriptor(gpu) for _ in range(n2))
    chain.extend(tk3.descriptor(gpu) for _ in range(n3))
    pairs = _PAIRS_PER_STEP[model]
    for _ in range(seq_len):
        chain.append(gemm.descriptor(gpu))
        for _ in range(pairs):
            chain.append(tk4.descriptor(gpu))
            chain.append(ak5.descriptor(gpu))
    if model in ("lstm", "gru"):
        chain.append(tk4.descriptor(gpu))  # output projection epilogue
    return chain


def build_rnn_jobs(benchmark: str, variants: Sequence, num_jobs: int,
                   rate_jobs_per_s: float, seed: int,
                   gpu: GPUConfig) -> List[Job]:
    """Jobs with Poisson arrivals and trace-like sequence lengths.

    ``variants`` is a sequence of (model, hidden) pairs; each job draws one
    uniformly (one pair for the plain benchmarks, two for HYBRID).
    """
    rng = np.random.default_rng(seed)
    arrivals = exponential_arrivals(num_jobs, rate_jobs_per_s, rng)
    lengths = sample_sequence_lengths(num_jobs, rng)
    picks = rng.integers(0, len(variants), size=num_jobs)
    jobs: List[Job] = []
    for job_id in range(num_jobs):
        model, hidden = variants[picks[job_id]]
        seq_len = lengths[job_id]
        descriptors = rnn_job_descriptors(model, hidden, seq_len, gpu)
        jobs.append(Job(
            job_id=job_id, benchmark=benchmark, descriptors=descriptors,
            arrival=arrivals[job_id], deadline=RNN_DEADLINE,
            tag=f"{model}{hidden}:seq={seq_len}"))
    return jobs
