"""Benchmark registry: the eight workloads of Table 4.

Maps benchmark names to deadline, the three arrival-rate levels (jobs/s)
and a job-list builder.  ``build_workload`` is the single entry point the
harness and examples use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Tuple

from ..config import GPUConfig
from ..errors import WorkloadError
from ..sim.job import Job
from ..units import MS, US
from .ipa import build_gmm_jobs, build_stem_jobs
from .networking import build_cuckoo_jobs, build_ipv6_jobs
from .rnn import build_rnn_jobs

#: Arrival-rate level names in paper order.
RATE_LEVELS = ("high", "medium", "low")

_Builder = Callable[[int, float, int, GPUConfig], List[Job]]


def parse_rate_multiplier(level: str) -> float:
    """Parse an ``x<float>`` rate level into its multiplier.

    Load sweeps (the streaming knee bench) address rates as multiples of
    a benchmark's "high" level — ``x0.5``, ``x1.25``, ``x2`` — rather
    than by name.  Returns the positive multiplier, or raises
    :class:`WorkloadError` for anything that is not a valid multiplier
    level.
    """
    if not isinstance(level, str) or not level.startswith("x"):
        raise WorkloadError(f"not a rate multiplier level: {level!r}")
    try:
        multiplier = float(level[1:])
    except ValueError:
        raise WorkloadError(f"bad rate multiplier {level!r}")
    if multiplier <= 0 or not multiplier == multiplier:  # NaN guard
        raise WorkloadError(f"rate multiplier must be positive: {level!r}")
    return multiplier


def validate_rate_level(level: str) -> None:
    """Accept a named level or an ``x<float>`` multiplier; raise otherwise.

    The shared validation the harness specs and the CLI use, so every
    entry point agrees on what a rate level may look like.
    """
    if level in RATE_LEVELS:
        return
    try:
        parse_rate_multiplier(level)
    except WorkloadError:
        raise WorkloadError(
            f"unknown rate level {level!r}; known: {RATE_LEVELS} "
            "or an 'x<multiplier>' of the high rate (e.g. 'x1.5')")


@dataclass(frozen=True)
class BenchmarkSpec:
    """Static description of one Table 4 benchmark."""

    name: str
    #: Relative deadline in ticks.
    deadline: int
    #: jobs/s at each rate level (Table 4 columns).
    rates: Mapping[str, float]
    #: "many-kernel" or "few-kernel" (Figure 1's split).
    kind: str
    builder: _Builder

    def rate(self, level: str) -> float:
        """Arrival rate for a level name or an ``x<float>`` multiplier.

        Multiplier levels scale the benchmark's "high" rate: ``x1`` is
        the high rate itself, ``x2`` doubles it.  Used by load sweeps
        that chart SLO attainment against offered load.
        """
        if level in self.rates:
            return self.rates[level]
        if isinstance(level, str) and level.startswith("x"):
            return parse_rate_multiplier(level) * self.rates["high"]
        raise WorkloadError(
            f"unknown rate level {level!r}; known: {RATE_LEVELS} "
            "or an 'x<multiplier>' of the high rate (e.g. 'x1.5')")


def _rnn_builder(variants: Tuple[Tuple[str, int], ...],
                 benchmark: str) -> _Builder:
    def build(num_jobs: int, rate: float, seed: int,
              gpu: GPUConfig) -> List[Job]:
        return build_rnn_jobs(benchmark, variants, num_jobs, rate, seed, gpu)
    return build


BENCHMARKS: Dict[str, BenchmarkSpec] = {
    "LSTM": BenchmarkSpec(
        "LSTM", 7 * MS, {"high": 8000, "medium": 5000, "low": 3000},
        "many-kernel", _rnn_builder((("lstm", 128),), "LSTM")),
    "GRU": BenchmarkSpec(
        "GRU", 7 * MS, {"high": 8000, "medium": 5000, "low": 3000},
        "many-kernel", _rnn_builder((("gru", 128),), "GRU")),
    "VAN": BenchmarkSpec(
        "VAN", 7 * MS, {"high": 8000, "medium": 5000, "low": 3000},
        "many-kernel", _rnn_builder((("van", 256),), "VAN")),
    "HYBRID": BenchmarkSpec(
        "HYBRID", 7 * MS, {"high": 8000, "medium": 5000, "low": 3000},
        "many-kernel",
        _rnn_builder((("lstm", 128), ("gru", 256)), "HYBRID")),
    "IPV6": BenchmarkSpec(
        "IPV6", 40 * US, {"high": 64000, "medium": 32000, "low": 16000},
        "few-kernel",
        lambda n, r, s, g: build_ipv6_jobs(n, r, s, g)),
    "CUCKOO": BenchmarkSpec(
        "CUCKOO", 600 * US, {"high": 8000, "medium": 5000, "low": 3000},
        "few-kernel",
        lambda n, r, s, g: build_cuckoo_jobs(n, r, s, g)),
    "GMM": BenchmarkSpec(
        "GMM", 3 * MS, {"high": 32000, "medium": 16000, "low": 8000},
        "few-kernel",
        lambda n, r, s, g: build_gmm_jobs(n, r, s, g)),
    "STEM": BenchmarkSpec(
        "STEM", 300 * US, {"high": 64000, "medium": 32000, "low": 16000},
        "few-kernel",
        lambda n, r, s, g: build_stem_jobs(n, r, s, g)),
}


def _register_sustained() -> None:
    # Registered here (not in BENCHMARK_ORDER) like the fleet cell: the
    # sustained streaming cell is harness-addressable but is not one of
    # the paper's eight Table 4 benchmarks.  Imported lazily to keep the
    # registry import-light for the common finite path.
    from .streaming import (SUSTAINED_DEADLINE, SUSTAINED_RATES,
                            build_sustained_jobs)
    BENCHMARKS["SUSTAINED"] = BenchmarkSpec(
        "SUSTAINED", SUSTAINED_DEADLINE, dict(SUSTAINED_RATES),
        "few-kernel",
        lambda n, r, s, g: build_sustained_jobs(n, r, s, g))


_register_sustained()

#: Benchmark names in the paper's plotting order.
BENCHMARK_ORDER = ("LSTM", "GRU", "VAN", "HYBRID",
                   "IPV6", "CUCKOO", "GMM", "STEM")
MANY_KERNEL_BENCHMARKS = tuple(
    name for name in BENCHMARK_ORDER if BENCHMARKS[name].kind == "many-kernel")
FEW_KERNEL_BENCHMARKS = tuple(
    name for name in BENCHMARK_ORDER if BENCHMARKS[name].kind == "few-kernel")


def benchmark_spec(name: str) -> BenchmarkSpec:
    """Spec of one benchmark (raises on unknown names)."""
    spec = BENCHMARKS.get(name)
    if spec is None:
        raise WorkloadError(
            f"unknown benchmark {name!r}; known: {', '.join(BENCHMARK_ORDER)}")
    return spec


def build_workload(name: str, rate_level: str = "high", num_jobs: int = 128,
                   seed: int = 1, gpu: GPUConfig = GPUConfig()) -> List[Job]:
    """Build the job list of one (benchmark, rate level) cell.

    128 jobs per benchmark matches Section 5.3; the seed fixes both arrival
    times and per-job shapes (sequence lengths, model mix).
    """
    spec = benchmark_spec(name)
    return spec.builder(num_jobs, spec.rate(rate_level), seed, gpu)
