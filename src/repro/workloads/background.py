"""Latency-insensitive background work and workload mixing.

Section 5.2 notes that "LAX does not affect latency-insensitive
applications because the programmer does not provide a deadline for
them".  :func:`build_background_jobs` generates such work — long,
training-style kernels with ``deadline=None`` — so co-location studies
can mix best-effort batch jobs with the deadline benchmarks, and
:func:`merge_workloads` interleaves multiple job streams on one device
with unique ids.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..config import GPUConfig
from ..errors import WorkloadError
from ..sim.job import Job
from .arrivals import exponential_arrivals
from .kernels import KernelSpec

#: A bulky compute-bound kernel standing in for a training step.
BACKGROUND_KERNEL = KernelSpec("background.TrainingStep", 2000.0, 8192, 256,
                               512.0)


def build_background_jobs(num_jobs: int, rate_jobs_per_s: float, seed: int,
                          gpu: GPUConfig, kernels_per_job: int = 4,
                          start_id: int = 0) -> List[Job]:
    """Deadline-less batch jobs (e.g. training steps) for co-location."""
    if kernels_per_job <= 0:
        raise WorkloadError("kernels_per_job must be positive")
    rng = np.random.default_rng(seed)
    arrivals = exponential_arrivals(num_jobs, rate_jobs_per_s, rng)
    descriptor = BACKGROUND_KERNEL.descriptor(gpu)
    return [Job(job_id=start_id + index, benchmark="BACKGROUND",
                descriptors=[descriptor] * kernels_per_job,
                arrival=arrivals[index], deadline=None)
            for index in range(num_jobs)]


def merge_workloads(*streams: Sequence[Job]) -> List[Job]:
    """Interleave several job streams, remapping ids to stay unique.

    Jobs are ordered by arrival (ties broken by benchmark then original
    id) and renumbered; the original identity survives in the tag.
    """
    merged = sorted((job for stream in streams for job in stream),
                    key=lambda j: (j.arrival, j.benchmark, j.job_id))
    if not merged:
        raise WorkloadError("nothing to merge")
    for index, job in enumerate(merged):
        if job.tag is None:
            job.tag = f"{job.benchmark}#{job.job_id}"
        job.job_id = index
    return merged
