"""The Job Table: LAX's in-CP bookkeeping structure (Section 4.2).

Each entry mirrors the six fields of Figure 5 — QueueID, Priority, WGList,
Deadline, StartTime and State — for one compute queue.  In the simulator
the authoritative dynamic state lives on the :class:`~repro.sim.job.Job`
objects; the Job Table view here exists to (a) expose exactly the data the
hardware proposal would hold, and (b) account its memory footprint, which
the paper reports as **4240 bytes for a 128-compute-queue system**.

Footprint model (bytes per field, chosen to land on the paper's figure for
the default configuration):

========  =====  =========================================================
field     bytes  rationale
========  =====  =========================================================
QID           1  queue index, <= 255
State         1  init / ready / running
Priority      4  fixed-point laxity value
Deadline      8  tick count
StartTime     8  tick count
WGList        8  base pointer + length of the per-kernel WG-count array
========  =====  =========================================================

30 bytes x 128 queues = 3840 bytes, plus a 20-entry Kernel Profiling Table
at 20 bytes per entry (kernel id, rate, window counter) = 400 bytes, giving
4240 bytes total.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.job import Job

#: Per-queue entry size in bytes (see module docstring).
ENTRY_BYTES = 30
#: Kernel Profiling Table: entries x bytes.
PROFILING_ENTRIES = 20
PROFILING_ENTRY_BYTES = 20


def job_table_bytes(num_queues: int) -> int:
    """CP memory footprint of the Job Table + Kernel Profiling Table.

    ``job_table_bytes(128) == 4240``, matching Section 4.2.
    """
    return ENTRY_BYTES * num_queues + PROFILING_ENTRIES * PROFILING_ENTRY_BYTES


@dataclass
class WGListEntry:
    """One WGList element: a kernel launch and its outstanding WG count."""

    kernel_name: str
    wgs_remaining: int


class JobTableEntry:
    """Job-Table row for one occupied compute queue."""

    __slots__ = ("queue_id", "job", "priority")

    def __init__(self, queue_id: int, job: "Job") -> None:
        self.queue_id = queue_id
        self.job = job
        self.priority: float = 0.0

    @property
    def deadline(self) -> int:
        """Programmer-provided relative deadline."""
        return self.job.deadline

    @property
    def start_time(self) -> Optional[int]:
        """Device enqueue time."""
        return self.job.start_time

    @property
    def state(self) -> str:
        """Job state string (init / ready / running)."""
        return self.job.state.value

    def wg_list(self) -> List[WGListEntry]:
        """Outstanding work per kernel, in stream order."""
        return [WGListEntry(k.name, k.wgs_remaining)
                for k in self.job.kernels if k.wgs_remaining > 0]


class JobTable:
    """The CP-resident table of live jobs, keyed by queue id."""

    def __init__(self, num_queues: int) -> None:
        if num_queues <= 0:
            raise SimulationError("JobTable needs at least one queue")
        self._num_queues = num_queues
        self._entries: Dict[int, JobTableEntry] = {}
        #: Cached :meth:`entries` tuple; rebuilt after insert/remove.
        self._entries_view: Optional[Tuple[JobTableEntry, ...]] = None
        #: Standing enqueue order: ``(start_time, job_id, job)`` triples
        #: kept sorted across insert/remove so the steady-state sweep
        #: never re-sorts.  ``job_id`` is unique, so the job object itself
        #: is never compared.
        self._by_start: List[tuple] = []

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _start_key(job: "Job") -> tuple:
        # `start_time or arrival` (not an `is None` check) deliberately:
        # a job enqueued at tick 0 has start_time 0, which falls back to
        # arrival — also 0, since start >= arrival >= 0 — so the value is
        # identical and the expression matches the sweep's historic key.
        return (job.start_time or job.arrival, job.job_id)

    def insert(self, job: "Job") -> JobTableEntry:
        """Add an entry for a job newly bound to a queue."""
        if job.queue_id is None:
            raise SimulationError(f"job {job.job_id} has no queue")
        if job.queue_id in self._entries:
            raise SimulationError(f"queue {job.queue_id} already tabled")
        if len(self._entries) >= self._num_queues:
            raise SimulationError("JobTable full")
        entry = JobTableEntry(job.queue_id, job)
        self._entries[job.queue_id] = entry
        self._entries_view = None
        bisect.insort(self._by_start, self._start_key(job) + (job,))
        return entry

    def remove(self, job: "Job") -> None:
        """Drop a completed or rejected job's entry."""
        entry = self._entries.pop(job.queue_id, None)
        if entry is None:
            raise SimulationError(f"job {job.job_id} not in JobTable")
        self._entries_view = None
        key = self._start_key(job)
        index = bisect.bisect_left(self._by_start, key)
        if (index < len(self._by_start)
                and self._by_start[index][2] is job):
            del self._by_start[index]
        else:  # pragma: no cover - insert/remove always pair up
            raise SimulationError(
                f"job {job.job_id} missing from enqueue order")

    def get(self, queue_id: int) -> Optional[JobTableEntry]:
        """Entry for ``queue_id`` or None."""
        return self._entries.get(queue_id)

    def entries(self) -> Tuple[JobTableEntry, ...]:
        """All live entries in queue-id order (stable iteration).

        The sorted view is cached — churn happens on job admission and
        retirement, while readers (telemetry snapshots, validation sweeps)
        may call this every event.
        """
        view = self._entries_view
        if view is None:
            view = self._entries_view = tuple(
                self._entries[qid] for qid in sorted(self._entries))
        return view

    def jobs_by_start(self) -> List["Job"]:
        """Tabled jobs in ``(start_time, job_id)`` enqueue order.

        The standing order the epoch-gated steady-state sweep walks: the
        sort key is frozen per job at bind time (StartTime is written once),
        so maintaining sorted order incrementally is exact, not a heuristic.
        """
        return [triple[2] for triple in self._by_start]

    @property
    def memory_bytes(self) -> int:
        """Provisioned CP memory for this table (independent of occupancy)."""
        return job_table_bytes(self._num_queues)
