"""LAX core machinery (Section 4 of the paper).

Stream inspection, the Job Table, the Kernel Profiling Table, the laxity
estimate (Equation 1), the priority-update rule (Algorithm 2) and the
Little's-Law admission test (Algorithm 1).  Everything here is reusable by
other policies: SRF borrows the remaining-time estimator, LAX-SW/LAX-CPU
run the same algorithms from the host.
"""

from .admission import (QueuingDelayAdmission, fits_free_capacity,
                        remaining_time_or_deadline, should_admit,
                        steady_state_pass, total_outstanding_time)
from .calibration import offline_profile, profile_workload, warm_table
from .inspection import build_wg_list, outstanding_wg_list, total_outstanding_wgs
from .job_table import (ENTRY_BYTES, JobTable, JobTableEntry, WGListEntry,
                        job_table_bytes)
from .laxity import (INFINITE_PRIORITY, estimate_completion_time,
                     estimate_remaining_time, laxity_priority, laxity_time)
from .profiling import KernelProfilingTable

__all__ = [
    "ENTRY_BYTES",
    "INFINITE_PRIORITY",
    "JobTable",
    "JobTableEntry",
    "KernelProfilingTable",
    "QueuingDelayAdmission",
    "WGListEntry",
    "build_wg_list",
    "estimate_completion_time",
    "estimate_remaining_time",
    "fits_free_capacity",
    "job_table_bytes",
    "laxity_priority",
    "laxity_time",
    "offline_profile",
    "outstanding_wg_list",
    "profile_workload",
    "remaining_time_or_deadline",
    "should_admit",
    "steady_state_pass",
    "total_outstanding_time",
    "total_outstanding_wgs",
    "warm_table",
]
