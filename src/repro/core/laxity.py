"""Laxity mathematics: Equation 1 and Algorithm 2 of the paper.

Everything here is pure arithmetic over a job's WGList and the Kernel
Profiling Table; no simulator state is touched, which makes the module
directly property-testable.

Units: all times are ticks; deadlines and laxities are *relative* to the
job's Job-Table start time, exactly as in the paper's pseudo-code
(``durTime = curTick() - startTime``; ``ComplTime = RemTime + durTime``;
``laxity = deadline - ComplTime``).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ..sim.job import JobState
from .profiling import KernelProfilingTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.job import Job

#: Priority assigned to jobs past their deadline (Algorithm 2 line 18).
INFINITE_PRIORITY = math.inf

#: Engine-mode switch (see :mod:`repro.sim.modes`): ``True`` memoises
#: profiling-table reads per WGList walk, ``False`` restores the seed's
#: one-lookup-per-kernel loop.  Both produce bit-identical estimates —
#: within one walk the clock does not move, so repeated
#: ``completion_rate`` reads return the same float (and repeat only an
#: idempotent window roll).
MEMOIZED = True

#: Engine-mode switch (see :mod:`repro.sim.modes`): ``True`` routes the
#: LAX/hybrid 100 us tick (and admission's Little's-Law sums) through a
#: :class:`RemainingTimeCache` so WGList walks only re-run for jobs whose
#: remaining-time inputs actually changed; ``False`` restores the seed
#: full-table-walk tick verbatim.  Bit-identical either way — argued in
#: ``docs/performance.md``.
EPOCH_GATED = True

#: Engine-mode switch (see :mod:`repro.sim.modes`): ``True`` lets the
#: LAX/hybrid tick evaluate Algorithm 2 over the scheduler's
#: struct-of-arrays rank state (numpy, when available) instead of the
#: per-job Python loop; ``False`` restores the PR-5 epoch-gated tick.
#: Bit-identical either way — argued in ``docs/performance.md``.
VECTORIZED = True

#: Engine-mode switch (see :mod:`repro.sim.modes`): ``True`` enables the
#: event-core arrival/tick fast paths — admission's Little's-Law sum runs
#: as one flattened loop over the cache
#: (:meth:`RemainingTimeCache.outstanding_sum`) and the 100 us tick is
#: elided outright while the rank epochs stand still and every priority's
#: drift provably preserves the published order
#: (``LaxityScheduler._arm_tick_elision``); ``False`` restores the PR-9
#: behaviour.  Bit-identical either way — argued in
#: ``docs/performance.md``.
EVENT_CORE = True

#: Sentinel distinguishing "type not looked up yet" from a None rate.
_UNSEEN = object()


def estimate_remaining_time(job: "Job", table: KernelProfilingTable,
                            now: int) -> float:
    """Estimated time to finish ``job``'s outstanding WGs (Algorithm 2, l.2-7).

    Walks the WGList summing ``numWG / WGCompRate`` per kernel.  Kernel
    types without a rate estimate contribute zero — LAX "optimistically
    assumes it takes no time, to avoid rejecting work it could potentially
    complete" (Section 4.3).
    """
    remaining = 0.0
    if not MEMOIZED:
        for kernel in job.kernels:
            wgs = kernel.wgs_remaining
            if wgs <= 0:
                continue
            rate = table.completion_rate(kernel.name, now)
            if rate is not None and rate > 0.0:
                remaining += wgs / rate
        return remaining
    # One table lookup per kernel *type*: jobs repeat a handful of types
    # across long WGLists, making this the hottest scheduler-side loop.
    # Kernels before the job's completed-prefix cursor have no WGs
    # remaining and are skipped wholesale; the sum still visits kernels
    # in WGList order with per-kernel divisions, so the float result is
    # exactly the seed loop's.
    rates: dict = {}
    rates_get = rates.get
    completion_rate = table.completion_rate
    kernels = job.kernels
    for kernel in kernels[job._next_cursor:]:
        desc = kernel.descriptor
        wgs = desc.num_wgs - kernel.wgs_completed
        if wgs <= 0:
            continue
        name = desc.name
        rate = rates_get(name, _UNSEEN)
        if rate is _UNSEEN:
            rate = rates[name] = completion_rate(name, now)
        if rate is not None and rate > 0.0:
            remaining += wgs / rate
    return remaining


def estimate_completion_time(job: "Job", table: KernelProfilingTable,
                             now: int) -> float:
    """``ComplTime = RemTime + durTime`` (Algorithm 2 line 9)."""
    return estimate_remaining_time(job, table, now) + job.elapsed(now)


def laxity_time(job: "Job", table: KernelProfilingTable, now: int) -> float:
    """Equation 1: ``Laxity = Deadline - (durTime + RemTime)``.

    Positive laxity means the job is predicted to finish early; zero or
    negative means it is predicted to miss.  Latency-insensitive jobs
    (no deadline) have infinite laxity.
    """
    if job.deadline is None:
        return math.inf
    return job.deadline - estimate_completion_time(job, table, now)


def priority_with_estimates(job: "Job", table: KernelProfilingTable,
                            now: int) -> tuple:
    """Algorithm 2's priority plus the estimates it was derived from.

    Returns ``(priority, laxity, remaining)`` from a single WGList walk —
    the priority is bit-identical to :func:`laxity_priority`, with the
    Equation 1 inputs exposed for telemetry without re-walking the list.
    Requires a deadline (callers rank no-deadline jobs last without
    needing estimates).
    """
    remaining = estimate_remaining_time(job, table, now)
    elapsed = job.elapsed(now)
    laxity = job.deadline - (elapsed + remaining)
    if elapsed > job.deadline:
        return INFINITE_PRIORITY, laxity, remaining
    completion = remaining + elapsed
    if job.deadline > completion:
        return job.deadline - completion, laxity, remaining
    return completion, laxity, remaining


class RemainingTimeCache:
    """Per-job remaining-time estimates with epoch-based invalidation.

    ``estimate_remaining_time`` is a pure function of three inputs: the
    job's per-kernel outstanding WG counts, the profiling table's published
    rates, and — only for kernel types that have stats but no published
    rate yet ("volatile" types) — the wall clock.  Each input carries a
    version counter:

    * :attr:`Job.rank_version` bumps on WG completion and stream append;
    * :attr:`KernelProfilingTable.rank_epoch` bumps when a published rate
      changes (window roll or seeding);
    * volatile types are reported by ``changed_kernels_since`` on *every*
      sync, so jobs touching them are recomputed each time.

    While a job's version and the epochs of its kernel types stand still,
    the cached float is the exact value a fresh walk would return — same
    inputs through the same arithmetic — so reusing it is bit-identical.

    Parity rule: :meth:`remaining` must be called at exactly the call
    sites where the seed path calls :func:`estimate_remaining_time` (it
    rolls the profiling window on first use per timestamp, just as the
    seed's first table read would), and nowhere else.
    """

    def __init__(self, table: KernelProfilingTable) -> None:
        self._table = table
        self._seen_epoch = table.rank_epoch
        self._synced_key = None
        #: job_id -> (job.rank_version, remaining)
        self._values: dict = {}
        #: kernel name -> set of job_ids whose cached value reads it.
        self._jobs_by_type: dict = {}
        #: job_id -> (indexed kernel count, tuple of names) for re-indexing
        #: after a stream append.
        self._types_by_job: dict = {}
        #: Full WGList walks performed (cache misses).
        self.recomputed = 0
        #: Walks elided (cache hits).
        self.reused = 0
        #: Optional observer called with the changed kernel-type names on
        #: every sync that invalidates entries.  The scheduler's
        #: struct-of-arrays rank state (``repro.core.rank_soa``) hooks in
        #: here so its per-slot staleness tracks the exact same epoch
        #: counters as this dict cache — one invalidation source, two
        #: consumers.
        self.on_types_changed = None

    def sync(self, now: int) -> None:
        """Fold window publications and drop estimates they invalidated.

        O(1) when the table saw no state change since the last sync at
        this timestamp; otherwise O(types + invalidated jobs).
        """
        table = self._table
        key = (now, table.mutations)
        if key == self._synced_key:
            return
        table.roll(now)
        self._synced_key = (now, table.mutations)
        if table.rank_epoch == self._seen_epoch and not table.unpublished:
            return
        changed = table.changed_kernels_since(self._seen_epoch)
        self._seen_epoch = table.rank_epoch
        values = self._values
        jobs_by_type = self._jobs_by_type
        for name in changed:
            ids = jobs_by_type.get(name)
            if ids:
                for job_id in ids:
                    values.pop(job_id, None)
        if self.on_types_changed is not None:
            self.on_types_changed(changed)

    def remaining(self, job: "Job", now: int) -> float:
        """Cached :func:`estimate_remaining_time`, recomputed when stale."""
        # Inlined sync() fast-out: on the hot path (admission's O(n) walk,
        # the per-tick refresh) every call but the first at a timestamp
        # sees an unchanged key, and the method call would dominate.
        if (now, self._table.mutations) != self._synced_key:
            self.sync(now)
        entry = self._values.get(job.job_id)
        if entry is not None and entry[0] == job.rank_version:
            self.reused += 1
            return entry[1]
        value = estimate_remaining_time(job, self._table, now)
        self.recomputed += 1
        self._index(job)
        self._values[job.job_id] = (job.rank_version, value)
        return value

    def outstanding_sum(self, jobs, now: int, exclude: "Job" = None) -> float:
        """``totRemTime`` in one flattened loop over the cache.

        Event-core replacement for
        :func:`repro.core.admission.total_outstanding_time` driving a
        cached estimator: the generic helper pays, per job, the
        ``remaining_time_or_deadline`` call, the estimator trampoline and
        :meth:`remaining`'s per-call sync fast-out.  Admission runs it
        once per arrival over every live job, so on the sustained
        streaming cells those layers dominate the decision.  This method
        folds them into one loop — bit-identical by construction:

        * the skip tests run in the generic helper's exact order
          (``exclude``, liveness/``init`` via the state value, missing
          deadline), so the same jobs contribute in the same sequence
          and the float accumulation order is unchanged;
        * estimates come from the same dict cache with the same
          ``rank_version`` hit rule, and a miss runs the same
          :func:`estimate_remaining_time` walk and indexes the result
          exactly as :meth:`remaining` would;
        * the cold-start deadline fallback reproduces
          ``remaining_time_or_deadline``: a non-positive estimate for a
          deadline job charges ``max(0, deadline - elapsed)``;
        * one up-front :meth:`sync` replaces the per-call fast-outs —
          no event can fire mid-loop, so the ``(now, mutations)`` key
          cannot change between jobs.
        """
        if (now, self._table.mutations) != self._synced_key:
            self.sync(now)
        values = self._values
        table = self._table
        total = 0.0
        reused = 0
        recomputed = 0
        for job in jobs:
            if job is exclude:
                continue
            state = job.state
            if state is not JobState.READY and state is not JobState.RUNNING:
                continue
            deadline = job.deadline
            if deadline is None:
                continue
            entry = values.get(job.job_id)
            if entry is not None and entry[0] == job.rank_version:
                reused += 1
                value = entry[1]
            else:
                value = estimate_remaining_time(job, table, now)
                recomputed += 1
                self._index(job)
                values[job.job_id] = (job.rank_version, value)
            if value > 0.0:
                total += value
            else:
                total += max(0.0, deadline - job.elapsed(now))
        self.reused += reused
        self.recomputed += recomputed
        return total

    def forget(self, job: "Job") -> None:
        """Drop a finished/rejected job's estimate and its type index."""
        job_id = job.job_id
        self._values.pop(job_id, None)
        indexed = self._types_by_job.pop(job_id, None)
        if indexed is None:
            return
        jobs_by_type = self._jobs_by_type
        for name in indexed[1]:
            ids = jobs_by_type.get(name)
            if ids is not None:
                ids.discard(job_id)

    def _index(self, job: "Job") -> None:
        """Map the job's kernel types to it (refreshed after appends)."""
        job_id = job.job_id
        indexed = self._types_by_job.get(job_id)
        if indexed is not None and indexed[0] == len(job.kernels):
            return
        names = tuple({kernel.descriptor.name for kernel in job.kernels})
        self._types_by_job[job_id] = (len(job.kernels), names)
        jobs_by_type = self._jobs_by_type
        for name in names:
            ids = jobs_by_type.get(name)
            if ids is None:
                ids = jobs_by_type[name] = set()
            ids.add(job_id)


def laxity_priority(job: "Job", table: KernelProfilingTable,
                    now: int) -> float:
    """Algorithm 2's priority assignment for one job.

    * Predicted to make the deadline -> priority is the laxity itself
      (line 12): smaller laxity = more urgent = higher priority.
    * Predicted to miss but not yet past the deadline -> priority is the
      predicted completion time (line 14), which exceeds the deadline and
      therefore every positive laxity, pushing the job behind all jobs
      that can still make it.
    * Already past its deadline -> infinite priority value, i.e. only runs
      when nothing else wants the device (lines 17-18).

    Latency-insensitive jobs (no deadline) always rank last: they soak up
    whatever capacity deadline work leaves free.
    """
    if job.deadline is None:
        return INFINITE_PRIORITY
    elapsed = job.elapsed(now)
    if elapsed > job.deadline:
        return INFINITE_PRIORITY
    completion = estimate_remaining_time(job, table, now) + elapsed
    if job.deadline > completion:
        return job.deadline - completion
    return completion
