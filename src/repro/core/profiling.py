"""Kernel Profiling Table: per-kernel-type WG completion rates.

LAX's central performance counter (Section 4.2): the device tracks, for
each kernel *type*, the device-wide workgroup completion rate (WGs per
tick).  Dividing a kernel's remaining WG count by this rate gives the time
the device needs to chew through that kernel under **current contention**
— the quantity both the laxity estimate (Equation 1 / Algorithm 2) and the
Little's-Law queuing-delay model (Algorithm 1) consume.

Measurement model.  The counter pairs each kernel type's completion count
with the wall time during which WGs of that type were actually in flight
(*busy time*), and estimates ``rate = completions / busy_time`` per
profiling window.  Normalising by busy time rather than the whole window
matters for bursty offered load: after a congested phase drains, a
wall-clock average would be diluted by idle time and permanently
under-estimate throughput (rejecting work forever), while the busy-time
rate remains the true drain rate Little's Law needs.  The hardware cost is
one extra in-flight counter and timestamp per kernel type.

Publication model.  Per Section 4.2 the table is "periodically updated
(empirically set at 100 us) to reflect the GPU's contention conditions":
readers see a value republished from the live estimate once per window.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import ConfigError, SimulationError

#: EWMA weight of one window observation.
_WINDOW_ALPHA = 0.4


class _KernelStats:
    """Mutable per-kernel-type counter state."""

    __slots__ = ("in_flight", "last_transition", "busy_ticks",
                 "window_completed", "ewma_rate", "published_rate",
                 "total_completed", "rank_epoch")

    def __init__(self) -> None:
        self.in_flight = 0
        self.last_transition = 0
        #: Busy ticks accumulated in the open window.
        self.busy_ticks = 0
        #: Completions in the open window.
        self.window_completed = 0
        #: Smoothed busy-period throughput, WGs per tick.
        self.ewma_rate: Optional[float] = None
        #: Value readers see (republished once per window).
        self.published_rate: Optional[float] = None
        self.total_completed = 0
        #: Table-wide :attr:`KernelProfilingTable.rank_epoch` at which this
        #: type's *published* value last changed.
        self.rank_epoch = 0

    def accrue(self, now: int) -> None:
        """Fold busy time since the last in-flight transition."""
        if self.in_flight > 0:
            self.busy_ticks += now - self.last_transition
        self.last_transition = now

    def close_window(self) -> None:
        """Fold the open window's observation into the EWMA.

        A window with no completions does NOT reset the busy-time
        accumulator: a long-running kernel spans several windows busy but
        only completes in the last one, and its rate must be computed over
        the whole busy span, not just the final window's slice.  The
        symmetric guard also holds — completions with no recorded busy time
        (a completion landing exactly on a window boundary, whose busy time
        closed with the previous window) carry forward rather than produce
        a divide-by-nothing rate spike.
        """
        if self.window_completed > 0 and self.busy_ticks > 0:
            observed = self.window_completed / self.busy_ticks
            if self.ewma_rate is None:
                self.ewma_rate = observed
            else:
                self.ewma_rate = (_WINDOW_ALPHA * observed
                                  + (1.0 - _WINDOW_ALPHA) * self.ewma_rate)
            self.busy_ticks = 0
            self.window_completed = 0
        if self.ewma_rate is not None:
            self.published_rate = self.ewma_rate

    def live_estimate(self) -> Optional[float]:
        """Best estimate including the open window (cold-start reads)."""
        if self.window_completed > 0 and self.busy_ticks > 0:
            return self.window_completed / self.busy_ticks
        return self.ewma_rate


class KernelProfilingTable:
    """Per-kernel-type WG completion rates, published per 100 us window."""

    def __init__(self, window: int, smoothing: float = _WINDOW_ALPHA) -> None:
        if window <= 0:
            raise ConfigError("profiling window must be positive")
        if not 0.0 < smoothing <= 1.0:
            raise ConfigError("smoothing must be in (0, 1]")
        self._window = window
        self._stats: Dict[str, _KernelStats] = {}
        self._published_at = 0
        #: Bumped whenever a *published* rate changes (window roll or
        #: :meth:`seed_rate`).  Published values are the only table output
        #: that stays constant between rolls, so a reader that cached an
        #: estimate derived from them can reuse it while this counter (and
        #: the job's own WG counts) stand still.  See
        #: :class:`repro.core.laxity.RemainingTimeCache`.
        self.rank_epoch = 0
        #: Bumped on *every* state change (issue / completion / preemption /
        #: seed / window roll).  Types that have stats but no published rate
        #: yet expose a live partial-window estimate that moves with these
        #: events, so caches key their per-timestamp sync on this counter.
        self.mutations = 0
        #: Number of kernel types with stats but no published rate (their
        #: ``completion_rate`` is the time-varying live estimate).
        self.unpublished = 0

    @property
    def window(self) -> int:
        """Publication period in ticks (the paper's 100 us)."""
        return self._window

    def _get(self, kernel_name: str) -> _KernelStats:
        stats = self._stats.get(kernel_name)
        if stats is None:
            stats = self._stats[kernel_name] = _KernelStats()
            self.unpublished += 1
        return stats

    # ------------------------------------------------------------------
    # Device feedback
    # ------------------------------------------------------------------

    def on_wg_issued(self, kernel_name: str, now: int) -> None:
        """A WG of ``kernel_name`` started executing."""
        self.mutations += 1
        self._roll(now)
        stats = self._get(kernel_name)
        stats.accrue(now)
        stats.in_flight += 1

    def on_wgs_issued(self, kernel_name: str, count: int, now: int) -> None:
        """``count`` WGs of ``kernel_name`` started executing at ``now``.

        State-identical to ``count`` calls of :meth:`on_wg_issued` at the
        same timestamp: after the first call the window roll and busy-time
        accrual are no-ops (``now`` has not advanced), so only the
        in-flight counter keeps moving.
        """
        if count <= 0:
            return
        self.mutations += 1
        self._roll(now)
        stats = self._get(kernel_name)
        stats.accrue(now)
        stats.in_flight += count

    def record_wg_completion(self, kernel_name: str, now: int) -> None:
        """A WG of ``kernel_name`` finished."""
        self.mutations += 1
        self._roll(now)
        stats = self._get(kernel_name)
        # accrue(), inlined: one call per WG completion.
        if stats.in_flight > 0:
            stats.busy_ticks += now - stats.last_transition
        else:
            raise SimulationError(
                f"profiler in-flight underflow for {kernel_name}")
        stats.last_transition = now
        stats.in_flight -= 1
        stats.window_completed += 1
        stats.total_completed += 1

    def on_wgs_preempted(self, kernel_name: str, count: int,
                         now: int) -> None:
        """``count`` WGs of ``kernel_name`` were evicted before finishing."""
        if count <= 0:
            return
        self.mutations += 1
        self._roll(now)
        stats = self._get(kernel_name)
        stats.accrue(now)
        if stats.in_flight < count:
            raise SimulationError(
                f"profiler preemption underflow for {kernel_name}")
        stats.in_flight -= count

    def seed_rate(self, kernel_name: str, rate: float) -> None:
        """Pre-load a completion-rate estimate (offline profiling).

        Used by warm-started schedulers: an offline calibration pass (or a
        previous serving epoch) supplies per-kernel-type rates so admission
        is not blind during the first completions.  Live observations then
        update the estimate as usual.
        """
        if rate <= 0.0:
            raise ConfigError("seeded rate must be positive")
        stats = self._get(kernel_name)
        if stats.published_rate is None:
            self.unpublished -= 1
        stats.ewma_rate = rate
        if stats.published_rate != rate:
            self.mutations += 1
            self.rank_epoch += 1
            stats.rank_epoch = self.rank_epoch
        stats.published_rate = rate

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def completion_rate(self, kernel_name: str, now: int) -> Optional[float]:
        """Published rate estimate in WGs per tick, or None if unknown.

        Before the first publication the live (partial-window) estimate is
        exposed so cold-start admission is not blind for a full window.
        """
        self._roll(now)
        stats = self._stats.get(kernel_name)
        if stats is None:
            return None
        if stats.published_rate is not None:
            return stats.published_rate
        stats.accrue(now)
        return stats.live_estimate()

    def total_completed(self, kernel_name: str) -> int:
        """Lifetime WG completions of ``kernel_name``."""
        stats = self._stats.get(kernel_name)
        return stats.total_completed if stats is not None else 0

    def known_kernels(self) -> int:
        """Number of kernel types with any observation."""
        return len(self._stats)

    def carryover_pending(self) -> bool:
        """Whether any type holds completions awaiting a future roll.

        Normally a roll publishes and resets the open window's
        completions; the boundary-landing edge in :meth:`_KernelStats.
        close_window` can instead carry them forward, to be published by
        a *later* roll whose busy time depends on when it runs.  The
        event-core tick-elision gate must not skip tick-time rolls while
        such a carryover exists — publishing it earlier or later changes
        the rate — so it refuses to arm until this drains.
        """
        return any(stats.window_completed > 0
                   for stats in self._stats.values())

    # ------------------------------------------------------------------
    # Window roll
    # ------------------------------------------------------------------

    def roll(self, now: int) -> None:
        """Publish any window(s) that have closed by ``now``.

        Every read path rolls implicitly; this public form lets epoch-based
        readers fold pending publications *before* deciding which cached
        estimates survived the window boundary.  Idempotent per timestamp.
        """
        self._roll(now)

    def changed_kernels_since(self, rank_epoch: int):
        """Kernel types whose estimate may differ from ``rank_epoch``'s.

        A type qualifies when its published rate changed after the given
        epoch, or when it has no published rate yet — the live
        partial-window estimate moves with time and device feedback, so
        such *volatile* types are always reported.
        """
        return [name for name, stats in self._stats.items()
                if stats.rank_epoch > rank_epoch
                or stats.published_rate is None]

    def _roll(self, now: int) -> None:
        if now - self._published_at < self._window:
            return
        self.mutations += 1
        epoch = self.rank_epoch
        unpublished = self.unpublished
        for stats in self._stats.values():
            stats.accrue(now)
            before = stats.published_rate
            stats.close_window()
            after = stats.published_rate
            if after != before:
                epoch += 1
                stats.rank_epoch = epoch
                if before is None:
                    unpublished -= 1
        self.rank_epoch = epoch
        self.unpublished = unpublished
        self._published_at = now - (now - self._published_at) % self._window
