"""Stream inspection: deriving the WGList from a queued stream.

The paper's CP "looks ahead, parsing all the kernels in a queue to
determine their names and associated number of WGs" (Section 4.1).  In the
simulator the queue packets are the job's kernel descriptors, so inspection
reduces to reading them out; the *latency* of inspection (four streams per
2 us) is modelled by the CP's parser bank, not here.

The functions in this module are what a policy is allowed to learn from
inspection — names and WG counts only.  Estimators must consume this view
rather than reaching into timing fields the hardware could not know.
"""

from __future__ import annotations

from typing import List, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.job import Job


def build_wg_list(job: "Job") -> List[Tuple[str, int]]:
    """Parse a stream: ``[(kernel_name, num_wgs), ...]`` in launch order."""
    return [(kernel.name, kernel.num_wgs) for kernel in job.kernels]


def outstanding_wg_list(job: "Job") -> List[Tuple[str, int]]:
    """WGList after decrementing completed WGs (the live Job-Table view)."""
    return [(kernel.name, kernel.wgs_remaining) for kernel in job.kernels
            if kernel.wgs_remaining > 0]


def total_outstanding_wgs(job: "Job") -> int:
    """Total WGs the job still owes the device."""
    return sum(count for _, count in outstanding_wg_list(job))
