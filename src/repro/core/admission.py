"""Queuing-delay admission control: Algorithm 1 of the paper.

LAX uses a pull-based offload model: jobs arrive at the server and LAX
offloads only the ones it predicts will meet their deadline under current
contention.  The queuing delay of a candidate is modelled with Little's
Law: the predicted remaining times of all jobs already accepted sum to the
time the device needs to drain them, because each per-job estimate divides
its WG counts by the *device-wide* completion rate of that kernel type —
summing over jobs therefore reconstructs total drain time independent of
the arrival process.

A job ``J`` in *init* state is accepted iff::

    totRemTime + (holdJobTime + durTime) < J.deadline

where ``totRemTime`` sums the remaining-time estimates of every accepted
live job, ``holdJobTime`` is J's own estimate from its WGList, and
``durTime`` is the time J has already spent queued (e.g. stream-inspection
latency).  Kernel types without completion-rate estimates contribute zero
(the optimistic default of Section 4.3), so a cold system accepts
everything it might be able to finish.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, TYPE_CHECKING

from ..sim.job import JobState
from .laxity import estimate_remaining_time
from .profiling import KernelProfilingTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.job import Job


@dataclass(frozen=True)
class AdmissionDecision:
    """One admission verdict with the Algorithm 1 inputs that produced it.

    ``reason`` is one of ``"no_deadline"`` (latency-insensitive, always
    accepted), ``"fast_path"`` (fits free full-rate capacity),
    ``"cold_probe"`` (no rate information anywhere; probe run) or
    ``"littles_law"`` (the totRemTime + holdTime + durTime test decided).
    """

    accepted: bool
    reason: str
    tot_rem_time: float = 0.0
    hold_time: float = 0.0
    dur_time: float = 0.0
    deadline: Optional[int] = None


def remaining_time_or_deadline(job: "Job", table: KernelProfilingTable,
                               now: int,
                               estimate=estimate_remaining_time) -> float:
    """Remaining-time estimate with the cold-start deadline fallback.

    "Algorithm 1 shows the steady-state behavior; before enough WGs
    complete (line 12, Algorithm 1), we use the programmer-provided
    deadline" — a job whose kernel types have produced no completion-rate
    observations at all is charged its remaining deadline budget instead of
    an (unknowable) estimate.  Once any of its kernel types has a rate, the
    normal optimistic WGList sum applies (Section 4.3).
    """
    value = estimate(job, table, now)
    if value > 0.0 or job.deadline is None:
        return value
    return max(0.0, job.deadline - job.elapsed(now))


def total_outstanding_time(jobs: Iterable["Job"],
                           table: KernelProfilingTable, now: int,
                           exclude: "Job" = None,
                           estimate=estimate_remaining_time) -> float:
    """``totRemTime``: summed remaining-time estimates of accepted jobs.

    Mirrors Algorithm 1 lines 3-10: every live job that is past *init*
    (i.e. accepted) contributes its WGList estimate (with the cold-start
    deadline fallback for jobs whose kernels have no rates yet).
    """
    total = 0.0
    for job in jobs:
        if job is exclude or not job.is_live:
            continue
        if job.state is JobState.INIT:
            continue
        if job.deadline is None:
            # Best-effort work backfills behind every deadline job and so
            # contributes no queuing delay to Little's Law.
            continue
        total += remaining_time_or_deadline(job, table, now,
                                            estimate=estimate)
    return total


def explain_admission(candidate: "Job", live_jobs: Iterable["Job"],
                      table: KernelProfilingTable, now: int,
                      estimate=estimate_remaining_time,
                      outstanding=None) -> AdmissionDecision:
    """Algorithm 1's accept/reject decision for one *init* job.

    An entirely cold candidate (no rates for any of its kernels) on an
    otherwise idle device is always accepted: it is the probe run the
    profiling table learns from.  Latency-insensitive candidates are
    always accepted — LAX only gates work the programmer gave a deadline.

    ``outstanding`` is an optional ``(now, exclude) -> float | None``
    replacement for :func:`total_outstanding_time` (LAX installs the
    vectorized rank-SoA sum); returning ``None`` falls back to the
    scalar loop.

    Returns the verdict together with the Little's-Law inputs so telemetry
    can reconstruct *why* a job was (not) offloaded.
    """
    if candidate.deadline is None:
        return AdmissionDecision(True, "no_deadline")
    tot_rem = outstanding(now, candidate) if outstanding is not None else None
    if tot_rem is None:
        tot_rem = total_outstanding_time(live_jobs, table, now,
                                         exclude=candidate,
                                         estimate=estimate)
    hold = estimate(candidate, table, now)
    dur = candidate.elapsed(now)
    if hold <= 0.0:
        if tot_rem <= 0.0:
            return AdmissionDecision(True, "cold_probe", tot_rem, hold, dur,
                                     candidate.deadline)
        hold = float(candidate.deadline)
    accepted = tot_rem + hold + dur < candidate.deadline
    return AdmissionDecision(accepted, "littles_law", tot_rem, hold, dur,
                             candidate.deadline)


def should_admit(candidate: "Job", live_jobs: Iterable["Job"],
                 table: KernelProfilingTable, now: int) -> bool:
    """Boolean form of :func:`explain_admission`."""
    return explain_admission(candidate, live_jobs, table, now).accepted


def fits_free_capacity(job: "Job", cus, reserved_wgs: int = 0) -> bool:
    """Whether ``job`` fits in currently-free full-rate WG slots.

    The fast path of LAX's offload decision: the CP can see per-CU
    occupancy directly, and a job whose kernels all fit in slots where no
    resident WG would slow down costs the rest of the system nothing — the
    underutilisation the paper's introduction is built around.  Without
    this check, Little's-Law admission tuned by rates measured at
    concurrency 1 would serialise narrow jobs (e.g. 8-WG GMM launches on a
    32-slot device) forever.

    ``reserved_wgs`` discounts slots already promised to jobs admitted but
    not yet issued (their WGs are in flight through the CP).
    """
    checked = None
    for kernel in job.kernels:
        desc = kernel.descriptor
        if checked is None:
            # First kernel: no dedup bookkeeping — the common single-
            # kernel job never allocates the seen-set.
            checked = (id(desc),)
        elif id(desc) in checked:
            continue
        else:
            checked += (id(desc),)
        concurrency = desc.cu_concurrency
        slots = 0
        for cu in cus:
            # Inline read of the slot-cache memo (exactly what
            # free_full_rate_slots returns when the entry is warm); the
            # method fills it on a miss.  ``_slots`` stays empty with
            # ``slot_cache`` off, so this degrades to the plain call.
            cached = cu._slots.get(concurrency)
            if cached is None:
                cached = cu.free_full_rate_slots(concurrency)
            slots += cached
        if slots - reserved_wgs < desc.num_wgs:
            return False
    return True


def steady_state_pass(jobs_in_order, table: KernelProfilingTable, now: int,
                      estimate=estimate_remaining_time):
    """Full Algorithm 1 sweep over the job queue; returns jobs to reject.

    Walks the queue in enqueue order maintaining the running ``totRemTime``
    prefix.  Already-accepted jobs add their remaining estimate to the
    prefix and are **late-rejected** when ``totRemTime + durTime`` no
    longer fits their deadline ("Cannot complete job in time, tell CPU");
    a rejected job's contribution leaves the prefix since its work will be
    discarded.  Jobs whose kernel types have produced no rate information
    are never late-rejected on estimates (nothing is known about them) but
    are rejected once their elapsed time alone exceeds the deadline.
    """
    tot = 0.0
    rejects = []
    for job in jobs_in_order:
        if not job.is_live or job.state is JobState.INIT:
            continue
        if job.deadline is None:
            continue  # latency-insensitive: never rejected, yields anyway
        dur = job.elapsed(now)
        if dur > job.deadline:
            rejects.append(job)
            continue
        remaining = estimate(job, table, now)
        if remaining <= 0.0:
            continue  # no rate information; keep running
        if job.state is JobState.RUNNING:
            # A running job's issued WGs complete in waves, so its WGList
            # count over-states true remaining work right up to each wave
            # boundary; evicting on that estimate would discard nearly-done
            # work.  Running jobs only fall to the elapsed-past-deadline
            # rule above; their estimate still occupies the prefix.
            tot += remaining
            continue
        if tot + remaining + dur >= job.deadline:
            rejects.append(job)
        else:
            tot += remaining
    return rejects


class QueuingDelayAdmission:
    """Stateful wrapper binding the admission test to a device's tables.

    Counts decisions for the effectiveness metrics; the policy calls
    :meth:`evaluate` from its ``admit`` hook.
    """

    def __init__(self, table: KernelProfilingTable,
                 estimate=None, outstanding=None) -> None:
        self._table = table
        #: Remaining-time estimator with :func:`estimate_remaining_time`'s
        #: signature; ``None`` means the plain per-call WGList walk.  LAX
        #: installs a :class:`~repro.core.laxity.RemainingTimeCache`-backed
        #: one so each arrival's Little's-Law sum reuses tick-path work.
        self._estimate = estimate or estimate_remaining_time
        #: Optional vectorized ``totRemTime`` provider (see
        #: :func:`explain_admission`).
        self._outstanding = outstanding
        self.accepted = 0
        self.rejected = 0
        #: Jobs accepted through the free-capacity fast path.
        self.fast_accepted = 0
        #: Jobs evicted by the steady-state sweep after acceptance.
        self.late_rejected = 0
        #: Decision detail of the most recent :meth:`evaluate` call.
        self.last_decision: Optional[AdmissionDecision] = None

    def evaluate(self, candidate: "Job", live_jobs: Iterable["Job"],
                 now: int, cus=None, reserved_wgs: int = 0) -> bool:
        """Run the offload decision for ``candidate``; record the outcome.

        With ``cus`` provided, the free-capacity fast path is consulted
        before Algorithm 1's Little's-Law test.
        """
        if cus is not None and fits_free_capacity(candidate, cus,
                                                  reserved_wgs):
            self.accepted += 1
            self.fast_accepted += 1
            self.last_decision = AdmissionDecision(
                True, "fast_path", dur_time=candidate.elapsed(now),
                deadline=candidate.deadline)
            return True
        decision = explain_admission(candidate, live_jobs, self._table, now,
                                     estimate=self._estimate,
                                     outstanding=self._outstanding)
        self.last_decision = decision
        if decision.accepted:
            self.accepted += 1
        else:
            self.rejected += 1
        return decision.accepted

    @property
    def decisions(self) -> int:
        """Total admission decisions made."""
        return self.accepted + self.rejected
