"""Struct-of-arrays rank state for the vectorized Algorithm 2 tick.

The PR-5 epoch-gated tick already elides WGList walks via the
:class:`~repro.core.laxity.RemainingTimeCache`; what remains is O(live)
Python per tick — attribute loads, enum reads and float arithmetic for
every tabled job, every 100 us.  :class:`RankSoA` moves the rank *inputs*
(arrival, deadline, cached remaining time, run state) into growable numpy
arrays keyed by job slot, so the tick's sweep and priority refresh become
a handful of masked array operations regardless of fleet size.

Parity contract (argued in ``docs/performance.md``):

* slot values are only ever written from
  :meth:`RemainingTimeCache.remaining` — the dict cache stays the single
  source of truth for estimates, the arrays are a mirror;
* staleness is event-driven from the exact same sources that invalidate
  the dict cache: a WG completion or stream append (``Job.rank_version``
  bumps) marks the slot via the scheduler's hooks, and kernel-type
  invalidations arrive through the cache's ``on_types_changed`` observer,
  so a slot is stale whenever the dict entry is (or would be) stale;
* the standing sweep order mirrors ``JobTable``'s frozen
  ``(start_time or arrival, job_id)`` key, maintained with the same
  bisect discipline, so the vectorized sweep walks the identical job
  sequence.

The module degrades gracefully: when numpy is unavailable ``HAVE_NUMPY``
is False and the scheduler keeps using the PR-5 scalar tick.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import TYPE_CHECKING, Iterable, List, Optional

try:  # pragma: no cover - exercised implicitly on numpy-less hosts
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

HAVE_NUMPY = _np is not None

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.job import Job
    from .laxity import RemainingTimeCache

#: ``state`` array codes (only the two states a tabled job can hold).
READY = 0
RUNNING = 1

_INITIAL_CAPACITY = 64


class RankSoA:
    """Growable per-slot arrays of Algorithm 2's rank inputs."""

    def __init__(self, cache: "RemainingTimeCache") -> None:
        if _np is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("RankSoA requires numpy")
        self._cache = cache
        cache.on_types_changed = self._on_types_changed
        n = _INITIAL_CAPACITY
        self.arrival = _np.zeros(n, dtype=_np.int64)
        #: Relative deadline; NaN encodes "latency-insensitive" (None).
        self.deadline = _np.full(n, _np.nan, dtype=_np.float64)
        #: Mirror of the cache's remaining-time estimate (stale slots
        #: hold the previous value until refreshed).
        self.remaining = _np.zeros(n, dtype=_np.float64)
        self.state = _np.zeros(n, dtype=_np.int8)
        self.stale = _np.zeros(n, dtype=bool)
        self.occupied = _np.zeros(n, dtype=bool)
        #: Compute-queue binding; orders Algorithm 1's totRemTime sum
        #: (``QueuePool.live_jobs`` iterates in queue-id order).
        self.queue_id = _np.full(n, -1, dtype=_np.int64)
        self._jobs: List[Optional["Job"]] = [None] * n
        self._free: List[int] = list(range(n - 1, -1, -1))
        self._slot_of: dict = {}
        #: kernel-type name -> set of slots whose job touches it.
        self._slots_by_type: dict = {}
        #: slot -> (indexed kernel count, tuple of names).
        self._types_by_slot: dict = {}
        #: Standing sweep order: (start_key, job_id, slot), bisect-kept —
        #: the same frozen key ``JobTable`` sorts by.
        self._order: List[tuple] = []
        self._order_array = _np.empty(0, dtype=_np.int64)
        self._order_dirty = False

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._slot_of)

    def __contains__(self, job: "Job") -> bool:
        return job.job_id in self._slot_of

    def job_at(self, slot: int) -> "Job":
        return self._jobs[slot]

    def _grow(self) -> None:
        old = len(self._jobs)
        new = old * 2
        for name in ("arrival", "deadline", "remaining", "state", "stale",
                     "occupied", "queue_id"):
            array = getattr(self, name)
            grown = _np.zeros(new, dtype=array.dtype)
            if name == "deadline":
                grown[old:] = _np.nan
            elif name == "queue_id":
                grown[old:] = -1
            grown[:old] = array
            setattr(self, name, grown)
        self._jobs.extend([None] * (new - old))
        self._free.extend(range(new - 1, old - 1, -1))

    def add(self, job: "Job") -> int:
        """Assign a slot at admission time (the job is tabled, READY)."""
        if not self._free:
            self._grow()
        slot = self._free.pop()
        job_id = job.job_id
        self._slot_of[job_id] = slot
        self._jobs[slot] = job
        self.arrival[slot] = job.arrival
        deadline = job.deadline
        self.deadline[slot] = _np.nan if deadline is None else deadline
        self.remaining[slot] = 0.0
        self.state[slot] = READY
        self.stale[slot] = True
        self.occupied[slot] = True
        # The CP binds the queue (mark_enqueued) before it runs admission,
        # so every tabled job carries its final binding here.
        self.queue_id[slot] = -1 if job.queue_id is None else job.queue_id
        self._index_types(slot, job)
        key = (job.start_time if job.start_time is not None
               else job.arrival, job_id, slot)
        insort(self._order, key)
        self._order_dirty = True
        return slot

    def remove(self, job: "Job") -> None:
        """Free the slot when the job leaves the table."""
        slot = self._slot_of.pop(job.job_id, None)
        if slot is None:
            return
        self._jobs[slot] = None
        self.occupied[slot] = False
        self.stale[slot] = False
        self.remaining[slot] = 0.0
        self.deadline[slot] = _np.nan
        self.queue_id[slot] = -1
        indexed = self._types_by_slot.pop(slot, None)
        if indexed is not None:
            for name in indexed[1]:
                slots = self._slots_by_type.get(name)
                if slots is not None:
                    slots.discard(slot)
        key = (job.start_time if job.start_time is not None
               else job.arrival, job.job_id, slot)
        index = bisect_left(self._order, key)
        if index < len(self._order) and self._order[index] == key:
            del self._order[index]
        self._order_dirty = True
        self._free.append(slot)

    # ------------------------------------------------------------------
    # Staleness
    # ------------------------------------------------------------------

    def mark_stale(self, job: "Job") -> None:
        slot = self._slot_of.get(job.job_id)
        if slot is not None:
            self.stale[slot] = True

    def mark_running(self, job: "Job") -> None:
        slot = self._slot_of.get(job.job_id)
        if slot is not None:
            self.state[slot] = RUNNING

    def reindex(self, job: "Job") -> None:
        """Refresh the type index after a stream append."""
        slot = self._slot_of.get(job.job_id)
        if slot is not None:
            self.stale[slot] = True
            self._index_types(slot, job)

    def _index_types(self, slot: int, job: "Job") -> None:
        indexed = self._types_by_slot.get(slot)
        if indexed is not None and indexed[0] == len(job.kernels):
            return
        if indexed is not None:
            for name in indexed[1]:
                slots = self._slots_by_type.get(name)
                if slots is not None:
                    slots.discard(slot)
        names = tuple({kernel.descriptor.name for kernel in job.kernels})
        self._types_by_slot[slot] = (len(job.kernels), names)
        for name in names:
            slots = self._slots_by_type.get(name)
            if slots is None:
                slots = self._slots_by_type[name] = set()
            slots.add(slot)

    def _on_types_changed(self, names: Iterable[str]) -> None:
        stale = self.stale
        for name in names:
            slots = self._slots_by_type.get(name)
            if slots:
                for slot in slots:
                    stale[slot] = True

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def order_slots(self) -> "_np.ndarray":
        """Slot indices in the standing ``(start_time, job_id)`` order."""
        if self._order_dirty:
            self._order_array = _np.fromiter(
                (entry[2] for entry in self._order), dtype=_np.int64,
                count=len(self._order))
            self._order_dirty = False
        return self._order_array

    def live_slots(self) -> "_np.ndarray":
        """Occupied slot indices (arbitrary order; refresh is per-job)."""
        return _np.nonzero(self.occupied)[0]

    def ready_slots(self) -> "_np.ndarray":
        """Occupied slots whose job is admitted but not yet issued."""
        return _np.nonzero(self.occupied & (self.state == READY))[0]

    # ------------------------------------------------------------------
    # Admission (Algorithm 1)
    # ------------------------------------------------------------------

    def outstanding_time(self, now: int, exclude: Optional["Job"]) -> float:
        """``totRemTime`` (Algorithm 1 lines 3-10) over the slot arrays.

        Exactly :func:`repro.core.admission.total_outstanding_time` run on
        the tabled set: the table holds precisely the live past-*init*
        jobs (admission inserts, completion/rejection removes — the
        candidate itself is still *init* and never tabled), deadline-less
        jobs are masked out, and each contribution is the cached estimate
        with the cold-start deadline fallback.  The scalar loop sums in
        ``QueuePool.live_jobs`` order, i.e. by compute-queue id, so the
        slot values are permuted into queue-id order before the running
        sum; ``cumsum`` accumulates left-to-right like the Python loop,
        keeping the float total bit-identical.  The cache is synced up
        front (the scalar loop's first ``cache.remaining`` call does the
        same), then stale slots are refreshed through the dict cache —
        the same values the scalar loop's per-job ``cache.remaining``
        calls would produce (it may warm slots the scalar sum would
        skip, which is unobservable).
        """
        self._cache.sync(now)
        # Read staleness only after the sync: its invalidation callback
        # may have marked additional slots stale.
        stale = _np.nonzero(self.stale & self.occupied)[0]
        if stale.size:
            self.refresh(stale.tolist(), now)
        mask = self.occupied & ~_np.isnan(self.deadline)
        if exclude is not None:
            slot = self._slot_of.get(exclude.job_id)
            if slot is not None:
                mask = mask.copy()
                mask[slot] = False
        slots = _np.nonzero(mask)[0]
        if slots.size == 0:
            return 0.0
        slots = slots[_np.argsort(self.queue_id[slots], kind="stable")]
        remaining = self.remaining[slots]
        # remaining_time_or_deadline: a zero estimate (no rates anywhere
        # for the job's kernels) charges the remaining deadline budget.
        # elapsed = max(0, now - arrival); int64 -> float64 is lossless at
        # simulation magnitudes (< 2**53).
        budget = self.deadline[slots] - _np.maximum(
            now - self.arrival[slots], 0)
        values = _np.where(remaining > 0.0, remaining,
                           _np.maximum(budget, 0.0))
        return float(values.cumsum()[-1])

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------

    def refresh(self, slots: Iterable[int], now: int) -> int:
        """Recompute stale estimates through the dict cache; returns the
        number of slots refreshed.  Every value lands in both stores, so
        a later scalar tick (mode flipped off) sees a warm cache."""
        cache = self._cache
        jobs = self._jobs
        remaining = self.remaining
        stale = self.stale
        count = 0
        for slot in slots:
            remaining[slot] = cache.remaining(jobs[slot], now)
            stale[slot] = False
            count += 1
        return count
