"""Offline kernel profiling: warm-start rates for the profiling table.

SJF/LJF (and Prophet/Baymax) assume offline-profiled runtimes; LAX learns
its rates online, which costs a cold-start phase where admission is blind
or pessimistic.  This module provides the offline pass: run each kernel
type once, alone, on a scratch device, and record the device-wide WG
completion rate it achieves — the value :meth:`KernelProfilingTable
.seed_rate` preloads.

The measured quantity is the *isolated* aggregate rate, which under-states
what multiple concurrent underutilising jobs achieve together; it is a
sound (conservative) starting point that the online counters refine within
a window or two.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from ..config import SimConfig
from ..errors import WorkloadError
from ..sim.job import Job
from ..sim.kernel import KernelDescriptor
from .profiling import KernelProfilingTable


def offline_profile(descriptors: Iterable[KernelDescriptor],
                    config: SimConfig) -> Dict[str, float]:
    """Measure each kernel type's isolated completion rate (WGs/tick).

    Each descriptor runs as a single-kernel job on a fresh device under
    the round-robin baseline; the rate is WGs over the launch's measured
    wall time (net of CP overheads).
    """
    from ..schedulers.rr import RoundRobinScheduler
    from ..sim.device import GPUSystem

    unique: Dict[str, KernelDescriptor] = {}
    for descriptor in descriptors:
        unique.setdefault(descriptor.name, descriptor)
    if not unique:
        raise WorkloadError("no kernels to profile")
    rates: Dict[str, float] = {}
    overhead = 2 * config.overheads.cp_parse_period
    for name, descriptor in unique.items():
        job = Job(job_id=0, benchmark=f"profile:{name}",
                  descriptors=[descriptor], arrival=0, deadline=None)
        # The rate is read off the job's own outcome, so the profiling
        # run must keep per-job state even under global retirement mode.
        system = GPUSystem(RoundRobinScheduler(), config, retire=False)
        system.submit_workload([job])
        metrics = system.run()
        wall = metrics.outcomes[0].latency - overhead
        rates[name] = descriptor.num_wgs / max(1, wall)
    return rates


def profile_workload(jobs: Iterable[Job],
                     config: SimConfig) -> Dict[str, float]:
    """Offline-profile every kernel type appearing in ``jobs``."""
    return offline_profile(
        (kernel.descriptor for job in jobs for kernel in job.kernels),
        config)


def warm_table(table: KernelProfilingTable,
               rates: Mapping[str, float]) -> None:
    """Seed a profiling table with offline-profiled rates."""
    for name, rate in rates.items():
        table.seed_rate(name, rate)
