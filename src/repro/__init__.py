"""Reproduction of "Deadline-Aware Offloading for High-Throughput
Accelerators" (Yeh, Sinclair, Beckmann, Rogers — HPCA 2021).

The package implements LAX, the paper's laxity-aware GPU stream scheduler,
together with everything the evaluation depends on: a workgroup-granular
discrete-event GPU simulator, the ten comparison schedulers of Table 3,
the eight latency-sensitive benchmarks of Table 4, and the experiment
harness that regenerates the paper's figures and tables.

Quick start::

    from repro import build_workload, make_scheduler, run_workload

    jobs = build_workload("LSTM", rate_level="high", num_jobs=64)
    metrics = run_workload(make_scheduler("LAX"), jobs)
    print(metrics.jobs_meeting_deadline, "of", metrics.num_jobs,
          "jobs met their 7 ms deadline")
"""

from ._version import __version__
from .config import (DEFAULT_CONFIG, EnergyConfig, GPUConfig, OverheadConfig,
                     SimConfig)
from .core import (JobTable, KernelProfilingTable, QueuingDelayAdmission,
                   estimate_remaining_time, job_table_bytes, laxity_priority,
                   laxity_time)
from .cluster import (ClusterMetrics, ClusterSystem, Router, make_router,
                      router_names)
from .errors import (ConfigError, HarnessError, ReproError, ResourceError,
                     SchedulingError, SimulationError, WorkloadError)
from .harness import (ExperimentSpec, RunOptions, Runner, SweepSpec,
                      run_cell)
from .metrics import JobOutcome, RunMetrics, geomean, p99, percentile
from .metrics.tracking import PredictionTracker
from .schedulers import (ALL_SCHEDULERS, LaxityScheduler, SchedulerPolicy,
                         make_scheduler, scheduler_names)
from .sim import (Device, GPUSystem, Job, JobState, KernelDescriptor,
                  Simulator, TraceRecorder, occupancy_timeline,
                  render_occupancy, run_workload)
from .workloads import (BENCHMARK_ORDER, BENCHMARKS, RATE_LEVELS,
                        build_workload)

__all__ = [
    "ALL_SCHEDULERS",
    "BENCHMARKS",
    "BENCHMARK_ORDER",
    "ClusterMetrics",
    "ClusterSystem",
    "ConfigError",
    "DEFAULT_CONFIG",
    "Device",
    "EnergyConfig",
    "ExperimentSpec",
    "GPUConfig",
    "GPUSystem",
    "HarnessError",
    "Job",
    "JobOutcome",
    "JobState",
    "JobTable",
    "KernelDescriptor",
    "KernelProfilingTable",
    "LaxityScheduler",
    "OverheadConfig",
    "PredictionTracker",
    "QueuingDelayAdmission",
    "RATE_LEVELS",
    "ReproError",
    "ResourceError",
    "Router",
    "RunMetrics",
    "RunOptions",
    "Runner",
    "SweepSpec",
    "SchedulerPolicy",
    "SchedulingError",
    "SimConfig",
    "SimulationError",
    "Simulator",
    "TraceRecorder",
    "WorkloadError",
    "__version__",
    "build_workload",
    "estimate_remaining_time",
    "geomean",
    "job_table_bytes",
    "laxity_priority",
    "laxity_time",
    "make_router",
    "make_scheduler",
    "occupancy_timeline",
    "p99",
    "percentile",
    "render_occupancy",
    "router_names",
    "run_cell",
    "run_workload",
    "scheduler_names",
]
