"""Run-time metrics collection.

The :class:`MetricsCollector` is wired into the CP's event path and keeps
one :class:`JobOutcome` per job plus device-level counters.  At the end of
a run :meth:`finalize` snapshots everything into a :class:`RunMetrics`,
the object the harness aggregates into the paper's tables and figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from ..errors import SimulationError
from ..telemetry.registry import MetricsRegistry
from ..units import MS, SEC

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.energy import EnergyMeter
    from ..sim.job import Job
    from ..sim.kernel import KernelInstance


@dataclass
class JobOutcome:
    """Final record of one job's trip through the system."""

    job_id: int
    benchmark: str
    tag: Optional[str]
    arrival: int
    #: Relative deadline; None for latency-insensitive work.
    deadline: Optional[int]
    num_kernels: int
    total_wgs: int
    accepted: Optional[bool] = None
    completion: Optional[int] = None
    #: WG completion events attributed to this job (incl. re-execution).
    wgs_executed: int = 0

    @property
    def latency(self) -> Optional[int]:
        """Response time in ticks; None for rejected/unfinished jobs."""
        if self.completion is None:
            return None
        return self.completion - self.arrival

    @property
    def is_latency_sensitive(self) -> bool:
        """Whether the job carried a deadline."""
        return self.deadline is not None

    @property
    def met_deadline(self) -> bool:
        """Completed at or before the absolute deadline."""
        return (self.deadline is not None
                and self.completion is not None
                and self.completion <= self.arrival + self.deadline)


class MetricsCollector:
    """Accumulates job outcomes and device counters during a run.

    The device counters live in a :class:`~repro.telemetry.registry
    .MetricsRegistry` (a private one by default, or the hub's when a
    telemetry hub is attached), so every count the collector sees is
    exportable as Prometheus text / JSON without a second bookkeeping
    path.  The old integer attributes (``arrivals`` etc.) remain as
    read-only properties.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._outcomes: Dict[int, JobOutcome] = {}
        #: Optional TraceRecorder mirroring job/kernel lifecycle events.
        self.trace = None
        #: Optional WindowedMetrics fed from the same hooks (wired by
        #: GPUSystem when the telemetry hub carries windows).
        self.windows = None
        self.registry = registry if registry is not None \
            else MetricsRegistry(prefix="repro")
        reg = self.registry
        self._arrivals = reg.counter(
            "jobs_arrived_total", "Jobs that entered the system")
        self._admitted = reg.counter(
            "jobs_admitted_total", "Jobs accepted by admission control")
        self._rejected = reg.counter(
            "jobs_rejected_total",
            "Jobs refused at admission or late-rejected")
        self._completed = reg.counter(
            "jobs_completed_total", "Jobs whose last kernel finished")
        self._deadline_met = reg.counter(
            "jobs_deadline_met_total",
            "Latency-sensitive jobs completed by their deadline")
        self._deadline_missed = reg.counter(
            "jobs_deadline_missed_total",
            "Latency-sensitive jobs completed after their deadline")
        self._wg_completions = reg.counter(
            "wg_completions_total", "Workgroup executions finished")
        self._kernel_completions = reg.counter(
            "kernel_completions_total", "Kernel launches fully finished")
        self._latency_ms = reg.histogram(
            "job_latency_ms", "Completed job response time (milliseconds)")
        self.first_arrival: Optional[int] = None
        self.last_completion: Optional[int] = None

    # -- registry-backed counter views ---------------------------------

    @property
    def arrivals(self) -> int:
        """Jobs that arrived."""
        return int(self._arrivals.value)

    @property
    def admitted(self) -> int:
        """Jobs accepted by admission control."""
        return int(self._admitted.value)

    @property
    def rejected(self) -> int:
        """Jobs refused by admission control."""
        return int(self._rejected.value)

    @property
    def completed(self) -> int:
        """Jobs completed."""
        return int(self._completed.value)

    @property
    def wg_completions(self) -> int:
        """WG executions finished."""
        return int(self._wg_completions.value)

    @property
    def kernel_completions(self) -> int:
        """Kernel launches finished."""
        return int(self._kernel_completions.value)

    # ------------------------------------------------------------------
    # Event hooks (called by the CP / arrival source)
    # ------------------------------------------------------------------

    def on_job_arrival(self, job: "Job", now: int) -> None:
        """Register a job entering the system."""
        if job.job_id in self._outcomes:
            raise SimulationError(f"job {job.job_id} arrived twice")
        self._outcomes[job.job_id] = JobOutcome(
            job_id=job.job_id, benchmark=job.benchmark, tag=job.tag,
            arrival=job.arrival, deadline=job.deadline,
            num_kernels=job.num_kernels, total_wgs=job.total_wgs)
        self._arrivals.inc()
        if self.first_arrival is None or now < self.first_arrival:
            self.first_arrival = now
        if self.trace is not None:
            self.trace.emit(now, "job_arrival", job_id=job.job_id)
        if self.windows is not None:
            self.windows.on_arrival(now)

    def on_job_admitted(self, job: "Job") -> None:
        """Admission accepted the job."""
        self._outcome(job).accepted = True
        self._admitted.inc()
        if self.trace is not None:
            self.trace.emit(job.start_time or job.arrival, "job_admitted",
                            job_id=job.job_id)
        if self.windows is not None:
            self.windows.on_admitted(job.start_time or job.arrival)

    def on_job_rejected(self, job: "Job") -> None:
        """Admission refused the job."""
        self._outcome(job).accepted = False
        self._rejected.inc()
        if self.trace is not None:
            self.trace.emit(job.rejection_time or job.arrival,
                            "job_rejected", job_id=job.job_id)
        if self.windows is not None:
            self.windows.on_rejected(job.rejection_time or job.arrival)

    def on_wg_complete(self, kernel: "KernelInstance") -> None:
        """One WG execution finished."""
        self._wg_completions.inc()
        self._outcome(kernel.job).wgs_executed += 1

    def on_kernel_complete(self, kernel: "KernelInstance") -> None:
        """One kernel launch fully finished."""
        self._kernel_completions.inc()
        if self.trace is not None:
            self.trace.emit(kernel.finish_time, "kernel_complete",
                            job_id=kernel.job.job_id, kernel=kernel.name,
                            detail=kernel.num_wgs)

    def on_job_complete(self, job: "Job") -> None:
        """Job's last kernel finished."""
        outcome = self._outcome(job)
        outcome.completion = job.completion_time
        self._completed.inc()
        if outcome.latency is not None:
            self._latency_ms.observe(outcome.latency / MS)
        if outcome.is_latency_sensitive:
            if outcome.met_deadline:
                self._deadline_met.inc()
            else:
                self._deadline_missed.inc()
        if (self.last_completion is None
                or job.completion_time > self.last_completion):
            self.last_completion = job.completion_time
        if self.trace is not None:
            self.trace.emit(job.completion_time, "job_complete",
                            job_id=job.job_id)
        if self.windows is not None and outcome.latency is not None:
            self.windows.on_complete(
                job.completion_time, outcome.latency,
                outcome.is_latency_sensitive, outcome.met_deadline)

    def _outcome(self, job: "Job") -> JobOutcome:
        outcome = self._outcomes.get(job.job_id)
        if outcome is None:
            raise SimulationError(f"job {job.job_id} never arrived")
        return outcome

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------

    def outcomes(self) -> List[JobOutcome]:
        """All job outcomes in job-id order."""
        return [self._outcomes[jid] for jid in sorted(self._outcomes)]

    def finalize(self, end_time: int, energy: "EnergyMeter",
                 wgs_preempted: int = 0) -> "RunMetrics":
        """Snapshot the run into an immutable summary."""
        energy.set_makespan(end_time)
        return RunMetrics(
            outcomes=self.outcomes(),
            end_time=end_time,
            first_arrival=self.first_arrival or 0,
            total_energy_joules=energy.total_joules,
            dynamic_energy_joules=energy.dynamic_joules,
            static_energy_joules=energy.static_joules,
            wg_completions=self.wg_completions,
            wgs_preempted=wgs_preempted,
        )


@dataclass
class RunMetrics:
    """Immutable summary of one simulation run."""

    outcomes: List[JobOutcome]
    end_time: int
    first_arrival: int
    total_energy_joules: float
    dynamic_energy_joules: float
    static_energy_joules: float
    wg_completions: int
    wgs_preempted: int = 0
    extras: Dict[str, object] = field(default_factory=dict)

    # -- deadline metrics ----------------------------------------------

    @property
    def num_jobs(self) -> int:
        """Jobs that arrived."""
        return len(self.outcomes)

    @property
    def jobs_meeting_deadline(self) -> int:
        """Figure 6/7/8 numerator: jobs completed by their deadlines."""
        return sum(1 for o in self.outcomes if o.met_deadline)

    @property
    def jobs_rejected(self) -> int:
        """Jobs refused by admission control."""
        return sum(1 for o in self.outcomes if o.accepted is False)

    @property
    def num_latency_sensitive(self) -> int:
        """Jobs that carried a deadline."""
        return sum(1 for o in self.outcomes if o.is_latency_sensitive)

    @property
    def deadline_ratio(self) -> float:
        """Fraction of latency-sensitive jobs meeting their deadline."""
        sensitive = self.num_latency_sensitive
        if sensitive == 0:
            return 0.0
        return self.jobs_meeting_deadline / sensitive

    # -- throughput / latency (Table 5a, 5b) ----------------------------

    @property
    def makespan_ticks(self) -> int:
        """First arrival to last completion (or end of run)."""
        return max(1, self.end_time - self.first_arrival)

    @property
    def successful_throughput(self) -> float:
        """Successful jobs per second (Table 5a)."""
        return self.jobs_meeting_deadline / (self.makespan_ticks / SEC)

    def completed_latencies(self) -> List[int]:
        """Latencies of completed (non-rejected) jobs, ticks."""
        return [o.latency for o in self.outcomes if o.latency is not None]

    @property
    def p99_latency_ticks(self) -> Optional[float]:
        """99-percentile latency over completed jobs (Table 5b)."""
        from .percentile import p99
        latencies = self.completed_latencies()
        if not latencies:
            return None
        return p99(latencies)

    # -- energy (Table 5c) ----------------------------------------------

    @property
    def energy_per_successful_job_mj(self) -> Optional[float]:
        """Consumed energy over successful jobs, millijoules (Table 5c)."""
        successes = self.jobs_meeting_deadline
        if successes == 0:
            return None
        return (self.total_energy_joules / successes) * 1e3

    # -- scheduling effectiveness (Figure 9) -----------------------------

    @property
    def effective_wg_fraction(self) -> float:
        """Fraction of executed WGs belonging to deadline-meeting jobs."""
        executed = sum(o.wgs_executed for o in self.outcomes)
        if executed == 0:
            return 0.0
        useful = sum(o.wgs_executed for o in self.outcomes if o.met_deadline)
        return useful / executed

    @property
    def wasted_wg_fraction(self) -> float:
        """Complement of :attr:`effective_wg_fraction` (paper's "wasted")."""
        return 1.0 - self.effective_wg_fraction
