"""Run-time metrics collection.

The :class:`MetricsCollector` is wired into the CP's event path and keeps
one :class:`JobOutcome` per job plus device-level counters.  At the end of
a run :meth:`finalize` snapshots everything into a :class:`RunMetrics`,
the object the harness aggregates into the paper's tables and figures.

Streaming runs (see :mod:`repro.workloads.streaming`) retire jobs as they
reach a terminal state: :meth:`MetricsCollector.retire_job` pops the job's
:class:`JobOutcome` and folds it into a :class:`StreamAggregate`, so the
collector holds O(live jobs) state instead of O(all jobs).  The aggregate
also banks the work-ledger terms the validation oracles need (completed
lane-time, preempted bounds, offered work), because the job's kernel
chain is released right after the fold.  :class:`RunMetrics` adds the
aggregate's contributions back into every derived metric, so downstream
consumers (tables, reports, ``deadline_counts``) see identical numbers
whether jobs were retired or kept.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from ..errors import SimulationError
from ..telemetry.registry import MetricsRegistry
from ..units import MS, SEC
from .percentile import ReservoirEstimator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.energy import EnergyMeter
    from ..sim.job import Job
    from ..sim.kernel import KernelInstance


@dataclass
class JobOutcome:
    """Final record of one job's trip through the system."""

    job_id: int
    benchmark: str
    tag: Optional[str]
    arrival: int
    #: Relative deadline; None for latency-insensitive work.
    deadline: Optional[int]
    num_kernels: int
    total_wgs: int
    accepted: Optional[bool] = None
    completion: Optional[int] = None
    #: WG completion events attributed to this job (incl. re-execution).
    wgs_executed: int = 0

    @property
    def latency(self) -> Optional[int]:
        """Response time in ticks; None for rejected/unfinished jobs."""
        if self.completion is None:
            return None
        return self.completion - self.arrival

    @property
    def is_latency_sensitive(self) -> bool:
        """Whether the job carried a deadline."""
        return self.deadline is not None

    @property
    def met_deadline(self) -> bool:
        """Completed at or before the absolute deadline."""
        return (self.deadline is not None
                and self.completion is not None
                and self.completion <= self.arrival + self.deadline)


@dataclass
class StreamAggregate:
    """Folded outcomes of retired jobs (the streaming memory mode).

    One instance accumulates everything :class:`RunMetrics` would
    otherwise derive from the retired jobs' :class:`JobOutcome` records,
    at O(1) memory per run: counts, WG attribution, a seeded reservoir
    of completed-job latencies (exact while the run stays within the
    reservoir capacity, an unbiased sample beyond), and the work-ledger
    terms (:mod:`repro.validation.oracles`) that must be banked before
    :meth:`repro.sim.job.Job.retire` clears the kernel chain.
    """

    jobs: int = 0
    completed: int = 0
    rejected: int = 0
    latency_sensitive: int = 0
    deadline_met: int = 0
    wgs_executed: int = 0
    #: WGs executed by deadline-meeting jobs (Figure 9 numerator).
    useful_wgs: int = 0
    #: Lane-ticks the retired jobs offered (sum of job total work).
    offered_work: float = 0.0
    #: Lane-ticks owed by retired jobs' completed WGs.
    completed_work: float = 0.0
    completed_wgs: int = 0
    #: Upper bound on lane-ticks lost to retired jobs' evicted WGs.
    preempted_bound: float = 0.0
    #: Largest CU concurrency any retired job's kernel declared.
    max_concurrency: int = 0
    latencies: ReservoirEstimator = field(
        default_factory=ReservoirEstimator)

    def fold(self, outcome: JobOutcome, job: "Job") -> None:
        """Fold one terminal job; call before its kernels are released."""
        self.jobs += 1
        if outcome.accepted is False:
            self.rejected += 1
        if outcome.is_latency_sensitive:
            self.latency_sensitive += 1
        if outcome.completion is not None:
            self.completed += 1
            self.latencies.add(outcome.latency)
        if outcome.met_deadline:
            self.deadline_met += 1
            self.useful_wgs += outcome.wgs_executed
        self.wgs_executed += outcome.wgs_executed
        self.offered_work += job.total_work
        for kernel in job.kernels:
            descriptor = kernel.descriptor
            work = descriptor.wg_work
            self.completed_work += kernel.wgs_completed * work
            self.completed_wgs += kernel.wgs_completed
            self.preempted_bound += kernel.wgs_preempted * work
            if descriptor.cu_concurrency > self.max_concurrency:
                self.max_concurrency = descriptor.cu_concurrency


class MetricsCollector:
    """Accumulates job outcomes and device counters during a run.

    The device counters live in a :class:`~repro.telemetry.registry
    .MetricsRegistry` (a private one by default, or the hub's when a
    telemetry hub is attached), so every count the collector sees is
    exportable as Prometheus text / JSON without a second bookkeeping
    path.  The old integer attributes (``arrivals`` etc.) remain as
    read-only properties.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._outcomes: Dict[int, JobOutcome] = {}
        #: StreamAggregate of retired jobs; created on first retirement
        #: so finite (non-retiring) runs carry no stream state at all.
        self.stream: Optional[StreamAggregate] = None
        #: Optional TraceRecorder mirroring job/kernel lifecycle events.
        self.trace = None
        #: Optional WindowedMetrics fed from the same hooks (wired by
        #: GPUSystem when the telemetry hub carries windows).
        self.windows = None
        self.registry = registry if registry is not None \
            else MetricsRegistry(prefix="repro")
        reg = self.registry
        self._arrivals = reg.counter(
            "jobs_arrived_total", "Jobs that entered the system")
        self._admitted = reg.counter(
            "jobs_admitted_total", "Jobs accepted by admission control")
        self._rejected = reg.counter(
            "jobs_rejected_total",
            "Jobs refused at admission or late-rejected")
        self._completed = reg.counter(
            "jobs_completed_total", "Jobs whose last kernel finished")
        self._deadline_met = reg.counter(
            "jobs_deadline_met_total",
            "Latency-sensitive jobs completed by their deadline")
        self._deadline_missed = reg.counter(
            "jobs_deadline_missed_total",
            "Latency-sensitive jobs completed after their deadline")
        self._wg_completions = reg.counter(
            "wg_completions_total", "Workgroup executions finished")
        self._kernel_completions = reg.counter(
            "kernel_completions_total", "Kernel launches fully finished")
        self._latency_ms = reg.histogram(
            "job_latency_ms", "Completed job response time (milliseconds)")
        self.first_arrival: Optional[int] = None
        self.last_completion: Optional[int] = None

    # -- registry-backed counter views ---------------------------------

    @property
    def arrivals(self) -> int:
        """Jobs that arrived."""
        return int(self._arrivals.value)

    @property
    def admitted(self) -> int:
        """Jobs accepted by admission control."""
        return int(self._admitted.value)

    @property
    def rejected(self) -> int:
        """Jobs refused by admission control."""
        return int(self._rejected.value)

    @property
    def completed(self) -> int:
        """Jobs completed."""
        return int(self._completed.value)

    @property
    def wg_completions(self) -> int:
        """WG executions finished."""
        return int(self._wg_completions.value)

    @property
    def kernel_completions(self) -> int:
        """Kernel launches finished."""
        return int(self._kernel_completions.value)

    # ------------------------------------------------------------------
    # Event hooks (called by the CP / arrival source)
    # ------------------------------------------------------------------

    def on_job_arrival(self, job: "Job", now: int) -> None:
        """Register a job entering the system."""
        if job.job_id in self._outcomes:
            raise SimulationError(f"job {job.job_id} arrived twice")
        self._outcomes[job.job_id] = JobOutcome(
            job_id=job.job_id, benchmark=job.benchmark, tag=job.tag,
            arrival=job.arrival, deadline=job.deadline,
            num_kernels=job.num_kernels, total_wgs=job.total_wgs)
        self._arrivals.inc()
        if self.first_arrival is None or now < self.first_arrival:
            self.first_arrival = now
        if self.trace is not None:
            self.trace.emit(now, "job_arrival", job_id=job.job_id)
        if self.windows is not None:
            self.windows.on_arrival(now)

    def on_job_admitted(self, job: "Job") -> None:
        """Admission accepted the job."""
        self._outcome(job).accepted = True
        self._admitted.inc()
        if self.trace is not None:
            self.trace.emit(job.start_time or job.arrival, "job_admitted",
                            job_id=job.job_id)
        if self.windows is not None:
            self.windows.on_admitted(job.start_time or job.arrival)

    def on_job_rejected(self, job: "Job") -> None:
        """Admission refused the job."""
        self._outcome(job).accepted = False
        self._rejected.inc()
        if self.trace is not None:
            self.trace.emit(job.rejection_time or job.arrival,
                            "job_rejected", job_id=job.job_id)
        if self.windows is not None:
            self.windows.on_rejected(job.rejection_time or job.arrival)

    def on_wg_complete(self, kernel: "KernelInstance") -> None:
        """One WG execution finished."""
        self._wg_completions.inc()
        self._outcome(kernel.job).wgs_executed += 1

    def on_kernel_complete(self, kernel: "KernelInstance") -> None:
        """One kernel launch fully finished."""
        self._kernel_completions.inc()
        if self.trace is not None:
            self.trace.emit(kernel.finish_time, "kernel_complete",
                            job_id=kernel.job.job_id, kernel=kernel.name,
                            detail=kernel.num_wgs)

    def on_job_complete(self, job: "Job") -> None:
        """Job's last kernel finished."""
        outcome = self._outcome(job)
        outcome.completion = job.completion_time
        self._completed.inc()
        if outcome.latency is not None:
            self._latency_ms.observe(outcome.latency / MS)
        if outcome.is_latency_sensitive:
            if outcome.met_deadline:
                self._deadline_met.inc()
            else:
                self._deadline_missed.inc()
        if (self.last_completion is None
                or job.completion_time > self.last_completion):
            self.last_completion = job.completion_time
        if self.trace is not None:
            self.trace.emit(job.completion_time, "job_complete",
                            job_id=job.job_id)
        if self.windows is not None and outcome.latency is not None:
            self.windows.on_complete(
                job.completion_time, outcome.latency,
                outcome.is_latency_sensitive, outcome.met_deadline)

    def _outcome(self, job: "Job") -> JobOutcome:
        outcome = self._outcomes.get(job.job_id)
        if outcome is None:
            raise SimulationError(f"job {job.job_id} never arrived")
        return outcome

    def retire_job(self, job: "Job") -> None:
        """Fold a terminal job's outcome into the stream aggregate.

        Pops the per-job :class:`JobOutcome` — the collector's only
        O(all jobs) structure — and folds it (plus the job's work-ledger
        terms, read from its still-intact kernels) into
        :attr:`stream`.  Called by the CP's retirement path *before* the
        job releases its kernel chain.
        """
        outcome = self._outcomes.pop(job.job_id, None)
        if outcome is None:
            raise SimulationError(
                f"cannot retire job {job.job_id}: no outcome recorded")
        if outcome.accepted is not False and outcome.completion is None:
            raise SimulationError(
                f"cannot retire job {job.job_id}: not terminal")
        if self.stream is None:
            self.stream = StreamAggregate()
        self.stream.fold(outcome, job)

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------

    def outcomes(self) -> List[JobOutcome]:
        """All job outcomes in job-id order."""
        return [self._outcomes[jid] for jid in sorted(self._outcomes)]

    def finalize(self, end_time: int, energy: "EnergyMeter",
                 wgs_preempted: int = 0) -> "RunMetrics":
        """Snapshot the run into an immutable summary."""
        energy.set_makespan(end_time)
        return RunMetrics(
            outcomes=self.outcomes(),
            end_time=end_time,
            first_arrival=self.first_arrival or 0,
            total_energy_joules=energy.total_joules,
            dynamic_energy_joules=energy.dynamic_joules,
            static_energy_joules=energy.static_joules,
            wg_completions=self.wg_completions,
            wgs_preempted=wgs_preempted,
            stream=self.stream,
        )


@dataclass
class RunMetrics:
    """Immutable summary of one simulation run."""

    outcomes: List[JobOutcome]
    end_time: int
    first_arrival: int
    total_energy_joules: float
    dynamic_energy_joules: float
    static_energy_joules: float
    wg_completions: int
    wgs_preempted: int = 0
    #: Aggregate of retired jobs (streaming runs); None on the seed path.
    #: Every derived metric below adds its contribution back in.
    stream: Optional[StreamAggregate] = None
    extras: Dict[str, object] = field(default_factory=dict)

    # -- deadline metrics ----------------------------------------------

    @property
    def num_jobs(self) -> int:
        """Jobs that arrived."""
        count = len(self.outcomes)
        if self.stream is not None:
            count += self.stream.jobs
        return count

    @property
    def jobs_meeting_deadline(self) -> int:
        """Figure 6/7/8 numerator: jobs completed by their deadlines."""
        count = sum(1 for o in self.outcomes if o.met_deadline)
        if self.stream is not None:
            count += self.stream.deadline_met
        return count

    @property
    def jobs_rejected(self) -> int:
        """Jobs refused by admission control."""
        count = sum(1 for o in self.outcomes if o.accepted is False)
        if self.stream is not None:
            count += self.stream.rejected
        return count

    @property
    def num_latency_sensitive(self) -> int:
        """Jobs that carried a deadline."""
        count = sum(1 for o in self.outcomes if o.is_latency_sensitive)
        if self.stream is not None:
            count += self.stream.latency_sensitive
        return count

    @property
    def deadline_ratio(self) -> float:
        """Fraction of latency-sensitive jobs meeting their deadline."""
        sensitive = self.num_latency_sensitive
        if sensitive == 0:
            return 0.0
        return self.jobs_meeting_deadline / sensitive

    # -- throughput / latency (Table 5a, 5b) ----------------------------

    @property
    def makespan_ticks(self) -> int:
        """First arrival to last completion (or end of run)."""
        return max(1, self.end_time - self.first_arrival)

    @property
    def successful_throughput(self) -> float:
        """Successful jobs per second (Table 5a)."""
        return self.jobs_meeting_deadline / (self.makespan_ticks / SEC)

    def completed_latencies(self) -> List[int]:
        """Latencies of completed (non-rejected) jobs, ticks.

        With retired jobs the stream aggregate contributes its latency
        reservoir — exact while the run fits the reservoir capacity, a
        uniform sample beyond — so percentiles over this list remain
        meaningful (if approximate) at millions of jobs.
        """
        latencies = [o.latency for o in self.outcomes
                     if o.latency is not None]
        if self.stream is not None:
            latencies.extend(self.stream.latencies.sample())
        return latencies

    @property
    def p99_latency_ticks(self) -> Optional[float]:
        """99-percentile latency over completed jobs (Table 5b)."""
        from .percentile import p99
        latencies = self.completed_latencies()
        if not latencies:
            return None
        return p99(latencies)

    # -- energy (Table 5c) ----------------------------------------------

    @property
    def energy_per_successful_job_mj(self) -> Optional[float]:
        """Consumed energy over successful jobs, millijoules (Table 5c)."""
        successes = self.jobs_meeting_deadline
        if successes == 0:
            return None
        return (self.total_energy_joules / successes) * 1e3

    # -- scheduling effectiveness (Figure 9) -----------------------------

    @property
    def effective_wg_fraction(self) -> float:
        """Fraction of executed WGs belonging to deadline-meeting jobs."""
        executed = sum(o.wgs_executed for o in self.outcomes)
        useful = sum(o.wgs_executed for o in self.outcomes if o.met_deadline)
        if self.stream is not None:
            executed += self.stream.wgs_executed
            useful += self.stream.useful_wgs
        if executed == 0:
            return 0.0
        return useful / executed

    @property
    def wasted_wg_fraction(self) -> float:
        """Complement of :attr:`effective_wg_fraction` (paper's "wasted")."""
        return 1.0 - self.effective_wg_fraction
