"""Percentile and geometric-mean helpers.

Self-contained implementations (linear-interpolation percentile matching
``numpy.percentile``'s default, and a zero-tolerant geometric mean) so the
metrics layer has no hard numpy dependency in hot paths and the behaviour
is pinned by our own tests.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """q-th percentile (0..100) with linear interpolation between ranks.

    Matches ``numpy.percentile(values, q)`` for the default "linear"
    interpolation.  Raises ``ValueError`` on empty input or q outside
    [0, 100].
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q={q} outside [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    frac = rank - low
    # a + f*(b - a) keeps the result inside [a, b] to the last ulp,
    # unlike the symmetric a*(1-f) + b*f form.
    return ordered[low] + frac * (ordered[high] - ordered[low])


def p99(values: Sequence[float]) -> float:
    """99th percentile; the paper's tail-latency metric."""
    return percentile(values, 99.0)


def geomean(values: Iterable[float], floor: float = 0.0) -> float:
    """Geometric mean of positive values.

    ``floor`` substitutes for non-positive entries (the paper's normalised
    ratios can hit zero when a scheduler completes no jobs; a small floor
    keeps the geomean defined, mirroring common practice).  With
    ``floor == 0`` a non-positive entry raises ``ValueError``.
    """
    items: List[float] = []
    for value in values:
        if value <= 0.0:
            if floor > 0.0:
                value = floor
            else:
                raise ValueError("geomean requires positive values")
        items.append(value)
    if not items:
        raise ValueError("geomean of empty sequence")
    log_sum = sum(math.log(v) for v in items)
    return math.exp(log_sum / len(items))


def safe_ratio(numerator: float, denominator: float,
               default: float = 0.0) -> float:
    """``numerator / denominator`` with a default for zero denominators."""
    if denominator == 0:
        return default
    return numerator / denominator
