"""Percentile and geometric-mean helpers, exact and streaming.

Self-contained implementations (linear-interpolation percentile matching
``numpy.percentile``'s default, and a zero-tolerant geometric mean) so the
metrics layer has no hard numpy dependency in hot paths and the behaviour
is pinned by our own tests.

Two **streaming** estimators back the windowed-metrics subsystem
(:mod:`repro.telemetry.windows`), which cannot afford to retain every
latency of a million-job run:

* :class:`ReservoirEstimator` — uniform reservoir sampling; **exact**
  while ``n <= capacity`` (it simply holds everything seen), an unbiased
  sample estimate beyond, at O(capacity) memory.
* :class:`P2Estimator` — the Jain & Chlamtac P² algorithm; O(1) memory
  (five markers), piecewise-parabolic quantile estimate.  Exact for
  ``n <= 5``; beyond that it is an approximation whose error shrinks
  with ``n`` on smooth distributions.

**Edge-case contract** (tested in ``tests/test_percentile.py``): every
percentile form — :func:`percentile`, :func:`p99`, and both estimators'
``percentile``/``query`` — raises :class:`ValueError` when asked for a
quantile of *zero* observations, and returns the single value itself for
exactly one observation, for every ``q`` in [0, 100].  ``q`` outside
[0, 100] always raises :class:`ValueError`.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, List, Optional, Sequence


def _check_q(q: float) -> None:
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q={q} outside [0, 100]")


def percentile(values: Sequence[float], q: float) -> float:
    """q-th percentile (0..100) with linear interpolation between ranks.

    Matches ``numpy.percentile(values, q)`` for the default "linear"
    interpolation.  Raises ``ValueError`` on empty input or q outside
    [0, 100]; a single-element input returns that element for every q.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    _check_q(q)
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    frac = rank - low
    # a + f*(b - a) keeps the result inside [a, b] to the last ulp,
    # unlike the symmetric a*(1-f) + b*f form.
    return ordered[low] + frac * (ordered[high] - ordered[low])


def p99(values: Sequence[float]) -> float:
    """99th percentile; the paper's tail-latency metric.

    Same contract as :func:`percentile`: empty input raises
    ``ValueError``, one element returns that element.
    """
    return percentile(values, 99.0)


# ----------------------------------------------------------------------
# Streaming estimators
# ----------------------------------------------------------------------

class ReservoirEstimator:
    """Uniform reservoir sampler with percentile queries.

    Holds every observation while ``n <= capacity`` — queries are then
    **exact** (identical to :func:`percentile` over the full stream) —
    and switches to Vitter's Algorithm R beyond, keeping a uniform
    random sample of the stream at O(capacity) memory.  Sampling is
    driven by a private seeded RNG so runs stay deterministic.
    """

    def __init__(self, capacity: int = 512, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError("reservoir capacity must be positive")
        self.capacity = capacity
        self.count = 0
        self._sample: List[float] = []
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        """Observe one value."""
        self.count += 1
        if len(self._sample) < self.capacity:
            self._sample.append(float(value))
            return
        slot = self._rng.randrange(self.count)
        if slot < self.capacity:
            self._sample[slot] = float(value)

    @property
    def is_exact(self) -> bool:
        """Whether queries reproduce the exact stream percentile."""
        return self.count <= self.capacity

    def sample(self) -> List[float]:
        """A copy of the current reservoir contents."""
        return list(self._sample)

    def percentile(self, q: float) -> float:
        """q-th percentile of the retained sample.

        Raises ``ValueError`` on an empty estimator or q outside
        [0, 100] (the module contract).
        """
        if not self._sample:
            raise ValueError("percentile of empty estimator")
        return percentile(self._sample, q)

    def query(self, q: float) -> Optional[float]:
        """Like :meth:`percentile` but None on an empty estimator."""
        _check_q(q)
        if not self._sample:
            return None
        return percentile(self._sample, q)


class P2Estimator:
    """P² (piecewise-parabolic) streaming quantile estimator.

    Jain & Chlamtac (CACM 1985): five markers track the running
    quantile at O(1) memory.  Exact for the first five observations
    (it simply sorts them); beyond that the markers move by parabolic
    interpolation.  One estimator tracks one quantile ``q``.
    """

    def __init__(self, q: float) -> None:
        _check_q(q)
        self.q = q
        self.count = 0
        self._p = q / 100.0
        # Marker heights / positions (1-based, per the paper).
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        p = self._p
        self._increments = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)

    def add(self, value: float) -> None:
        """Observe one value."""
        value = float(value)
        self.count += 1
        if self.count <= 5:
            self._heights.append(value)
            self._heights.sort()
            if self.count == 5:
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                p = self._p
                self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p,
                                 3.0 + 2.0 * p, 5.0]
            return
        heights, positions = self._heights, self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        for index in range(5):
            self._desired[index] += self._increments[index]
        for index in (1, 2, 3):
            delta = self._desired[index] - positions[index]
            if ((delta >= 1.0
                 and positions[index + 1] - positions[index] > 1.0)
                    or (delta <= -1.0
                        and positions[index - 1] - positions[index] < -1.0)):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(index, step)
                if heights[index - 1] < candidate < heights[index + 1]:
                    heights[index] = candidate
                else:
                    heights[index] = self._linear(index, step)
                positions[index] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1])
            / (n[i] - n[i - 1]))

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current quantile estimate.

        Raises ``ValueError`` on an empty estimator (the module
        contract); with a single observation returns that observation.
        """
        if self.count == 0:
            raise ValueError("quantile of empty estimator")
        if self.count <= 5:
            # Exact: interpolate over the sorted head.
            return percentile(self._heights, self.q)
        return self._heights[2]

    def query(self) -> Optional[float]:
        """Like :meth:`value` but None on an empty estimator."""
        if self.count == 0:
            return None
        return self.value()


def geomean(values: Iterable[float], floor: float = 0.0) -> float:
    """Geometric mean of positive values.

    ``floor`` substitutes for non-positive entries (the paper's normalised
    ratios can hit zero when a scheduler completes no jobs; a small floor
    keeps the geomean defined, mirroring common practice).  With
    ``floor == 0`` a non-positive entry raises ``ValueError``.
    """
    items: List[float] = []
    for value in values:
        if value <= 0.0:
            if floor > 0.0:
                value = floor
            else:
                raise ValueError("geomean requires positive values")
        items.append(value)
    if not items:
        raise ValueError("geomean of empty sequence")
    log_sum = sum(math.log(v) for v in items)
    return math.exp(log_sum / len(items))


def safe_ratio(numerator: float, denominator: float,
               default: float = 0.0) -> float:
    """``numerator / denominator`` with a default for zero denominators."""
    if denominator == 0:
        return default
    return numerator / denominator
