"""Metrics: job outcomes, run summaries and statistical helpers."""

from .collector import JobOutcome, MetricsCollector, RunMetrics
from .percentile import geomean, p99, percentile, safe_ratio

__all__ = [
    "JobOutcome",
    "MetricsCollector",
    "RunMetrics",
    "geomean",
    "p99",
    "percentile",
    "safe_ratio",
]
