"""Prediction tracking for Figure 10.

LAX's priority updater feeds a :class:`PredictionTracker` one sample per
update for each tracked job: the current predicted completion time
(``RemTime + durTime``) and the priority just assigned.  After the run the
tracker compares the prediction series against the job's actual execution
time, reproducing Figure 10's time series and its headline statistic
(mean absolute prediction error, ~8 % in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.job import Job


@dataclass
class PredictionSample:
    """One priority-update observation of a tracked job."""

    #: Time since the job entered the device queue, ticks.
    elapsed: int
    #: Predicted total completion time (RemTime + durTime), ticks.
    predicted_completion: float
    #: Priority assigned by Algorithm 2 at this update.
    priority: float


@dataclass
class JobTrace:
    """Full prediction trace of one job."""

    job_id: int
    benchmark: str
    tag: Optional[str]
    deadline: int
    samples: List[PredictionSample] = field(default_factory=list)
    #: Actual time from enqueue to completion, ticks (set at completion).
    actual_completion: Optional[int] = None
    #: Actual time from first WG issue to completion (running state).
    actual_running: Optional[int] = None

    def mean_absolute_error(self,
                            tail_fraction: float = 1.0) -> Optional[float]:
        """Mean |predicted - actual| / actual over the sample series.

        ``tail_fraction`` restricts the average to the last fraction of
        the job's samples.  Early in a job's life the prediction is made
        from sparse rate information while the job still has plenty of
        laxity (and the scheduler does not yet care about it); the paper's
        Figure 10 highlights how the prediction tracks the actual time as
        the job approaches its deadline — the regime ``tail_fraction <1``
        isolates.
        """
        if self.actual_completion is None or not self.samples:
            return None
        if not 0.0 < tail_fraction <= 1.0:
            raise ValueError("tail_fraction must be in (0, 1]")
        count = max(1, int(round(len(self.samples) * tail_fraction)))
        window = self.samples[-count:]
        errors = [abs(s.predicted_completion - self.actual_completion)
                  for s in window]
        return (sum(errors) / len(errors)) / self.actual_completion


class PredictionTracker:
    """Collects prediction traces for a chosen subset of jobs."""

    def __init__(self, job_ids: Optional[List[int]] = None) -> None:
        #: None tracks every job (expensive; fine for single-job studies).
        self._job_ids = set(job_ids) if job_ids is not None else None
        self._traces: Dict[int, JobTrace] = {}

    def tracks(self, job: "Job") -> bool:
        """Whether ``job`` is in the tracked set."""
        return self._job_ids is None or job.job_id in self._job_ids

    def record(self, job: "Job", now: int, predicted_completion: float,
               priority: float) -> None:
        """Store one update sample for ``job``."""
        if not self.tracks(job):
            return
        trace = self._traces.get(job.job_id)
        if trace is None:
            trace = JobTrace(job.job_id, job.benchmark, job.tag, job.deadline)
            self._traces[job.job_id] = trace
        trace.samples.append(PredictionSample(
            elapsed=job.elapsed(now),
            predicted_completion=predicted_completion,
            priority=priority))

    def finalize_job(self, job: "Job") -> None:
        """Record the job's actual times at completion."""
        trace = self._traces.get(job.job_id)
        if trace is None or job.completion_time is None:
            return
        trace.actual_completion = job.completion_time - job.arrival
        if job.first_issue_time is not None:
            trace.actual_running = job.completion_time - job.first_issue_time

    def traces(self) -> List[JobTrace]:
        """All collected traces, in job-id order."""
        return [self._traces[jid] for jid in sorted(self._traces)]

    def trace_of(self, job_id: int) -> Optional[JobTrace]:
        """Trace of one job, or None if never sampled."""
        return self._traces.get(job_id)
