"""Telemetry sinks: where event streams go, and how much memory they hold.

Every event stream in the telemetry layer — the lifecycle trace
(:class:`repro.sim.trace.TraceRecorder`), the scheduler decision log
(:class:`repro.telemetry.events.DecisionLog`) and the self-profiler's
run records — appends to a :class:`TelemetrySink`.  The sink choice is
the memory model of the run:

* :class:`ListSink` — unbounded in-memory list; full post-hoc queries,
  O(run) memory.  The default, and byte-for-byte the pre-sink
  behaviour.
* :class:`RingBufferSink` — keeps the most recent ``capacity`` records;
  O(capacity) memory, queries see the retained tail.
* :class:`JsonlSink` — spills each record to a JSON-lines file through
  a small write buffer; O(buffer) memory, the full stream lives on
  disk.  This is the sink that lets a million-job run hold telemetry
  memory flat.
* :class:`NullSink` — counts and drops; O(1).

Sinks count every record ever appended (:attr:`TelemetrySink.total`)
independently of retention, so rate/volume queries stay exact under any
sink.  :func:`make_sink` builds a sink from the compact spec strings the
CLI accepts (``list``, ``ring[:N]``, ``jsonl[:DIR]``, ``null``).
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Callable, Iterable, List, Optional

from ..errors import TelemetryError

#: Default ring-buffer capacity (records).
DEFAULT_RING_CAPACITY = 65536
#: Records buffered by a JSONL sink before each disk flush.
DEFAULT_FLUSH_EVERY = 1024

#: Sink spec names :func:`make_sink` understands.
SINK_KINDS = ("list", "ring", "jsonl", "null")


class TelemetrySink:
    """Destination for one telemetry record stream.

    Records must expose ``as_dict()`` (both :class:`~repro.sim.trace
    .TraceEvent` and :class:`~repro.telemetry.events.DecisionEvent` do);
    only the :class:`JsonlSink` actually calls it.  A record type may
    additionally provide ``as_json_line()`` returning its own JSON-line
    encoding; the JSONL sink prefers it (it is the hot path of a
    streaming run).
    """

    kind = "base"

    #: Records ever appended (retention-independent).
    total: int = 0

    def append(self, record) -> None:
        """Accept one record."""
        raise NotImplementedError

    def items(self) -> List:
        """The retained records, oldest first."""
        raise NotImplementedError

    def __len__(self) -> int:
        """Number of retained records."""
        return len(self.items())

    @property
    def retained(self) -> int:
        """Number of retained records (alias of ``len``)."""
        return len(self)

    @property
    def dropped(self) -> int:
        """Records no longer retained in memory (evicted or spilled)."""
        return self.total - len(self)

    def flush(self) -> None:
        """Push buffered records to their backing store (no-op default)."""

    def close(self) -> None:
        """Flush and release any backing resources."""
        self.flush()

    def describe(self) -> dict:
        """JSON-ready summary of the sink's state."""
        return {"kind": self.kind, "total": self.total,
                "retained": len(self), "dropped": self.dropped}


class ListSink(TelemetrySink):
    """Unbounded in-memory sink: the pre-sink list, as a sink.

    ``records`` is the backing list itself; holders that captured it
    (e.g. ``TraceRecorder.events``) observe appends live, exactly as the
    plain-list implementation behaved.
    """

    kind = "list"

    def __init__(self) -> None:
        self.records: List = []

    @property
    def total(self) -> int:
        return len(self.records)

    def append(self, record) -> None:
        self.records.append(record)

    def items(self) -> List:
        return self.records

    def __len__(self) -> int:
        return len(self.records)


class RingBufferSink(TelemetrySink):
    """Bounded sink retaining the most recent ``capacity`` records."""

    kind = "ring"

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if capacity <= 0:
            raise TelemetryError("ring sink capacity must be positive")
        self.capacity = capacity
        self.records: deque = deque(maxlen=capacity)
        self.total = 0

    def append(self, record) -> None:
        self.total += 1
        self.records.append(record)

    def items(self) -> List:
        return list(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def describe(self) -> dict:
        summary = super().describe()
        summary["capacity"] = self.capacity
        return summary


class JsonlSink(TelemetrySink):
    """Incremental spill-to-disk sink: one JSON line per record.

    Appended records are buffered (at most ``flush_every`` of them, so
    memory stays O(``flush_every``) regardless of run length) and
    encoded in one batch per flush — ``append`` itself is just a list
    push, which keeps the streaming sink close to the in-memory list
    sink on the simulator's hot path.  The file is opened lazily on the
    first flush and parent directories are created as needed.

    Encoding is resolved from the first flushed record and reused for
    the stream (streams are homogeneous): a record type exposing
    ``as_json_line()`` (e.g. :class:`~repro.sim.trace.TraceEvent`, whose
    hand-rolled encoder is severalfold faster than generic
    ``json.dumps``) serialises itself; anything else goes through
    ``json.dumps(record.as_dict())``.  Pass ``serialize`` to override.
    """

    kind = "jsonl"

    def __init__(self, path: str,
                 flush_every: int = DEFAULT_FLUSH_EVERY,
                 serialize: Optional[Callable[[object], str]] = None
                 ) -> None:
        if flush_every <= 0:
            raise TelemetryError("jsonl sink flush_every must be positive")
        self.path = path
        self.flush_every = flush_every
        self._serialize = serialize
        self._buffer: List[object] = []
        self._file = None
        self.total = 0

    def append(self, record) -> None:
        self.total += 1
        buffer = self._buffer
        buffer.append(record)
        if len(buffer) >= self.flush_every:
            self.flush()

    def items(self) -> List:
        """JSONL sinks retain nothing in memory; query the file instead."""
        return []

    def __len__(self) -> int:
        return 0

    def flush(self) -> None:
        buffer = self._buffer
        if not buffer:
            # Still create the file so an empty stream leaves a valid
            # (zero-line) artifact behind after close().
            if self._file is None and self.total == 0:
                self._open()
            if self._file is not None:
                self._file.flush()
            return
        if self._file is None:
            self._open()
        serialize = self._serialize
        if serialize is None:
            serialize = getattr(type(buffer[0]), "as_json_line", None) \
                or (lambda record: json.dumps(record.as_dict()))
            self._serialize = serialize
        self._file.write("\n".join(map(serialize, buffer)) + "\n")
        self._file.flush()
        buffer.clear()

    def _open(self) -> None:
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._file = open(self.path, "w", encoding="utf-8")

    def close(self) -> None:
        self.flush()
        if self._file is not None:
            self._file.close()
            self._file = None

    def read_back(self) -> Iterable[dict]:
        """Decode the spilled stream (flushes first); for tests/tools."""
        self.flush()
        if self._file is not None:
            self._file.flush()
        if not os.path.exists(self.path):
            return
        with open(self.path, encoding="utf-8") as source:
            for line in source:
                if line.strip():
                    yield json.loads(line)

    def describe(self) -> dict:
        summary = super().describe()
        summary["path"] = self.path
        summary["flush_every"] = self.flush_every
        return summary


class NullSink(TelemetrySink):
    """Counts records and drops them."""

    kind = "null"

    def __init__(self) -> None:
        self.total = 0

    def append(self, record) -> None:
        self.total += 1

    def items(self) -> List:
        return []

    def __len__(self) -> int:
        return 0


def parse_sink_spec(spec: str) -> tuple:
    """Split a sink spec string into ``(kind, arg)``.

    ``"ring:4096"`` -> ``("ring", "4096")``; ``"list"`` -> ``("list",
    None)``.  Raises :class:`TelemetryError` on unknown kinds.
    """
    kind, _, arg = spec.partition(":")
    if kind not in SINK_KINDS:
        raise TelemetryError(
            f"unknown sink kind {kind!r}; known: {', '.join(SINK_KINDS)}")
    return kind, (arg or None)


def make_sink(spec: str = "list", *, stream: str = "events",
              directory: Optional[str] = None) -> TelemetrySink:
    """Build one sink from a spec string.

    ``spec`` is ``list``, ``ring`` / ``ring:CAPACITY``, ``null``, or
    ``jsonl`` / ``jsonl:DIR``.  A JSONL sink writes
    ``<dir>/<stream>.stream.jsonl`` where ``dir`` is the spec's inline
    directory or the ``directory`` argument; omitting both raises.
    ``stream`` names the record stream (``events``, ``decisions``,
    ``profile``) so one run's sinks never collide.
    """
    kind, arg = parse_sink_spec(spec)
    if kind == "list":
        return ListSink()
    if kind == "null":
        return NullSink()
    if kind == "ring":
        if arg is None:
            return RingBufferSink()
        try:
            capacity = int(arg)
        except ValueError:
            raise TelemetryError(
                f"ring sink capacity must be an integer, got {arg!r}")
        return RingBufferSink(capacity)
    target = arg if arg is not None else directory
    if target is None:
        raise TelemetryError(
            "jsonl sink needs a directory: use 'jsonl:DIR' or pass "
            "directory= (the CLI uses the --emit-telemetry DIR)")
    return JsonlSink(os.path.join(target, f"{stream}.stream.jsonl"))
