"""The telemetry hub: one object wiring every observability channel.

A :class:`TelemetryHub` bundles the telemetry channels a run may
produce:

* a lifecycle **trace** (:class:`repro.sim.trace.TraceRecorder`) —
  job/kernel/WG events, optionally WG-granular;
* a **decision log** (:class:`repro.telemetry.events.DecisionLog`) —
  schema-validated scheduler decisions;
* a **metrics registry** (:class:`repro.telemetry.registry
  .MetricsRegistry`) shared with the run's
  :class:`~repro.metrics.collector.MetricsCollector`;
* a **self-profiler** (:class:`repro.telemetry.selfprof.SimProfiler`) —
  wall-clock attribution of the simulator itself;
* optionally, **windowed metrics** (:class:`repro.telemetry.windows
  .WindowedMetrics`) — per-window steady-state p50/p99, SLO attainment,
  admission rate, throughput and occupancy while the run is in flight —
  and a live :class:`~repro.telemetry.slo.SLOMonitor` over them.

``sink=`` chooses the memory model of the event streams (see
:mod:`repro.telemetry.sinks`): the default ``"list"`` retains everything
in memory (the historical behaviour), ``"ring[:N]"`` bounds retention,
``"jsonl"`` spills incrementally to disk (flat memory for arbitrarily
long runs) and ``"null"`` counts-and-drops.

Pass a hub to :class:`repro.sim.device.GPUSystem` (``telemetry=``) and
every component picks up its channel; pass nothing and the whole layer
stays detached, leaving results bit-identical to an untraced run.
"""

from __future__ import annotations

from typing import Optional

from ..errors import TelemetryError
from ..sim.trace import TraceRecorder
from .events import DecisionLog
from .registry import MetricsRegistry
from .selfprof import SimProfiler
from .sinks import make_sink, parse_sink_spec
from .slo import SLOMonitor
from .windows import WindowedMetrics


class TelemetryHub:
    """All telemetry channels for one simulation run.

    ``sink`` is a spec string (``list`` / ``ring[:N]`` / ``jsonl[:DIR]``
    / ``null``); JSONL sinks write ``events.stream.jsonl`` /
    ``decisions.stream.jsonl`` / ``profile.stream.jsonl`` under
    ``sink_dir`` (or the spec's inline directory).  ``window`` (ticks of
    sim-time) attaches a :class:`WindowedMetrics`; ``slo_monitor=True``
    adds a live :class:`SLOMonitor` over it, streaming one progress line
    per closed window to ``slo_stream`` when given.
    """

    def __init__(self, wg_events: bool = False, decision_events: bool = True,
                 self_profile: bool = True,
                 registry: Optional[MetricsRegistry] = None,
                 sink: str = "list", sink_dir: Optional[str] = None,
                 window: Optional[int] = None,
                 window_estimator: str = "reservoir",
                 rolling: int = 1,
                 slo_monitor: bool = False, slo_stream=None,
                 label: str = "run") -> None:
        #: Registry shared with the run's MetricsCollector.
        self.registry = registry if registry is not None \
            else MetricsRegistry(prefix="repro")
        #: The sink spec every stream was built from.
        self.sink_spec = sink
        sink_kind, _ = parse_sink_spec(sink)
        #: Lifecycle trace; ``wg_events`` opts into per-WG granularity.
        self.trace = TraceRecorder(
            wg_events=wg_events,
            sink=make_sink(sink, stream="events", directory=sink_dir))
        #: Scheduler decision log; None when decision events are off.
        self.decisions: Optional[DecisionLog] = (
            DecisionLog(registry=self.registry,
                        sink=make_sink(sink, stream="decisions",
                                       directory=sink_dir))
            if decision_events else None)
        # The profiler's own state is already bounded; it only gets a
        # sink when spilling to disk, where its one-record-per-run
        # snapshot joins the stream bundle.
        profile_sink = (make_sink(sink, stream="profile",
                                  directory=sink_dir)
                        if sink_kind == "jsonl" else None)
        #: Simulator self-profiler; None when self-profiling is off.
        self.profiler: Optional[SimProfiler] = (
            SimProfiler(sink=profile_sink) if self_profile else None)
        #: Windowed steady-state metrics; None without ``window=``.
        self.windows: Optional[WindowedMetrics] = (
            WindowedMetrics(window, estimator=window_estimator,
                            rolling=rolling)
            if window is not None else None)
        if slo_monitor and self.windows is None:
            raise TelemetryError(
                "slo_monitor needs windowed metrics; pass window=TICKS")
        #: Live SLO monitor over the windows; None unless requested.
        self.monitor: Optional[SLOMonitor] = (
            SLOMonitor(self.windows, registry=self.registry,
                       stream=slo_stream, label=label)
            if slo_monitor else None)

    @property
    def decisions_enabled(self) -> bool:
        """Whether decision events are being collected."""
        return self.decisions is not None

    # ------------------------------------------------------------------
    # Stream lifecycle
    # ------------------------------------------------------------------

    def _sinks(self):
        sinks = [self.trace.sink]
        if self.decisions is not None:
            sinks.append(self.decisions.sink)
        if self.profiler is not None and self.profiler.sink is not None:
            sinks.append(self.profiler.sink)
        if self.windows is not None:
            sinks.append(self.windows.sink)
        return sinks

    def flush(self) -> None:
        """Flush every buffered sink (JSONL spill buffers to disk)."""
        for sink in self._sinks():
            sink.flush()

    def close(self) -> None:
        """Flush and close every sink; the hub stays queryable."""
        for sink in self._sinks():
            sink.close()

    def sink_summary(self) -> dict:
        """JSON-ready description of every stream's sink state."""
        summary = {"spec": self.sink_spec,
                   "events": self.trace.sink.describe()}
        if self.decisions is not None:
            summary["decisions"] = self.decisions.sink.describe()
        if self.profiler is not None and self.profiler.sink is not None:
            summary["profile"] = self.profiler.sink.describe()
        if self.windows is not None:
            summary["windows"] = self.windows.sink.describe()
        return summary
