"""The telemetry hub: one object wiring every observability channel.

A :class:`TelemetryHub` bundles the four telemetry channels a run may
produce:

* a lifecycle **trace** (:class:`repro.sim.trace.TraceRecorder`) —
  job/kernel/WG events, optionally WG-granular;
* a **decision log** (:class:`repro.telemetry.events.DecisionLog`) —
  schema-validated scheduler decisions;
* a **metrics registry** (:class:`repro.telemetry.registry
  .MetricsRegistry`) shared with the run's
  :class:`~repro.metrics.collector.MetricsCollector`;
* a **self-profiler** (:class:`repro.telemetry.selfprof.SimProfiler`) —
  wall-clock attribution of the simulator itself.

Pass a hub to :class:`repro.sim.device.GPUSystem` (``telemetry=``) and
every component picks up its channel; pass nothing and the whole layer
stays detached, leaving results bit-identical to an untraced run.
"""

from __future__ import annotations

from typing import Optional

from ..sim.trace import TraceRecorder
from .events import DecisionLog
from .registry import MetricsRegistry
from .selfprof import SimProfiler


class TelemetryHub:
    """All telemetry channels for one simulation run."""

    def __init__(self, wg_events: bool = False, decision_events: bool = True,
                 self_profile: bool = True,
                 registry: Optional[MetricsRegistry] = None) -> None:
        #: Registry shared with the run's MetricsCollector.
        self.registry = registry if registry is not None \
            else MetricsRegistry(prefix="repro")
        #: Lifecycle trace; ``wg_events`` opts into per-WG granularity.
        self.trace = TraceRecorder(wg_events=wg_events)
        #: Scheduler decision log; None when decision events are off.
        self.decisions: Optional[DecisionLog] = (
            DecisionLog(registry=self.registry) if decision_events else None)
        #: Simulator self-profiler; None when self-profiling is off.
        self.profiler: Optional[SimProfiler] = (
            SimProfiler() if self_profile else None)

    @property
    def decisions_enabled(self) -> bool:
        """Whether decision events are being collected."""
        return self.decisions is not None
