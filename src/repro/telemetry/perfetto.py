"""Chrome trace-event (Perfetto) export of a simulation run.

Converts a lifecycle trace (plus, optionally, the decision log, the run
outcomes and the windowed-metrics series) into the Trace Event Format
that ``chrome://tracing`` and https://ui.perfetto.dev load directly:

* **Jobs** process — one track per job: a lifetime slice from arrival to
  completion/rejection, nested kernel slices (activation to completion),
  and instant markers for admission verdicts, late rejections and
  preemptions;
* **Compute Units** process — one resident-WG counter track per CU plus a
  device-wide total (needs a ``wg_events=True`` trace);
* **Streams** process — one track per hardware queue showing which job's
  stream was bound when;
* **Scheduler** process — laxity counter tracks for jobs that missed
  their deadline, reconstructed from ``priority_update`` decisions;
* **Windows** process — per-window p99 latency, SLO attainment,
  throughput and occupancy counter tracks when a
  :class:`~repro.telemetry.windows.WindowedMetrics` series is passed.

All timestamps are emitted in microseconds (the format's native unit);
ticks are nanoseconds, so sub-microsecond precision survives as
fractional ``ts`` values.

The export is **incremental**: events are produced by a generator and
:func:`write_chrome_trace` streams them straight to disk, so the export
never holds the whole JSON document (or even the whole event list) in
memory.  The written bytes are identical to ``json.dump`` of the
document :func:`build_chrome_trace` returns.  Reconstruction reads
``trace.replay()``: the retained events for in-memory sinks, or the
spill file read back for a JSONL sink, so the export stays complete
under streaming sinks.  A ring sink that dropped events yields a
truncated picture.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional, Tuple

from ..sim.trace import TraceRecorder
from ..units import to_ms

#: Process ids of the exported tracks.
PID_JOBS = 1
PID_CUS = 2
PID_STREAMS = 3
PID_SCHEDULER = 4
PID_WINDOWS = 5

_PROCESS_NAMES = {
    PID_JOBS: "Jobs",
    PID_CUS: "Compute Units",
    PID_STREAMS: "Streams",
    PID_SCHEDULER: "Scheduler",
}


def _us(ticks: int) -> float:
    """Ticks (integer ns) to trace-format microseconds."""
    return ticks / 1000.0


def _iter_metadata(windows=None) -> Iterator[dict]:
    names = dict(_PROCESS_NAMES)
    if windows:
        names[PID_WINDOWS] = "Windows"
    for pid, name in names.items():
        yield {"ph": "M", "pid": pid, "name": "process_name",
               "args": {"name": name}}
        yield {"ph": "M", "pid": pid, "name": "process_sort_index",
               "args": {"sort_index": pid}}


def _iter_events(trace: TraceRecorder, decisions=None, outcomes=None,
                 windows=None) -> Iterator[dict]:
    """Yield every trace-event dict of the document, in emit order."""
    yield from _iter_metadata(windows)

    by_job: Dict[int, object] = {}
    if outcomes:
        by_job = {o.job_id: o for o in outcomes}

    # -- job lifecycle reconstruction ----------------------------------
    arrival: Dict[int, int] = {}
    terminal: Dict[int, Tuple[int, str]] = {}
    enqueue: Dict[int, Tuple[int, int]] = {}  # job -> (queue, ts)
    kernel_starts: Dict[Tuple[int, str], List[int]] = {}
    kernel_slices: List[Tuple[int, str, int, int]] = []
    cu_levels: Dict[int, int] = {}
    device_level = 0
    named_jobs = set()
    last_time = 0

    def _thread_meta(job_id: int) -> Iterator[dict]:
        if job_id in named_jobs:
            return
        named_jobs.add(job_id)
        outcome = by_job.get(job_id)
        suffix = f" ({outcome.benchmark})" if outcome is not None else ""
        yield {"ph": "M", "pid": PID_JOBS, "tid": job_id,
               "name": "thread_name",
               "args": {"name": f"job {job_id}{suffix}"}}
        yield {"ph": "M", "pid": PID_JOBS, "tid": job_id,
               "name": "thread_sort_index",
               "args": {"sort_index": job_id}}

    for event in trace.replay():
        kind = event.kind
        job_id = event.job_id
        last_time = event.time
        if kind == "job_arrival":
            arrival[job_id] = event.time
            yield from _thread_meta(job_id)
        elif kind == "job_enqueued" and event.queue is not None:
            enqueue[job_id] = (event.queue, event.time)
        elif kind in ("job_complete", "job_rejected"):
            terminal[job_id] = (event.time, kind)
            if kind == "job_rejected":
                yield {"ph": "i", "s": "t", "pid": PID_JOBS, "tid": job_id,
                       "name": "rejected", "ts": _us(event.time),
                       "args": {"job_id": job_id}}
        elif kind == "kernel_activate":
            kernel_starts.setdefault((job_id, event.kernel),
                                     []).append(event.time)
        elif kind == "kernel_complete":
            starts = kernel_starts.get((job_id, event.kernel))
            start = starts.pop(0) if starts else event.time
            kernel_slices.append((job_id, event.kernel, start, event.time))
        elif kind == "preemption":
            yield {"ph": "i", "s": "t", "pid": PID_JOBS, "tid": job_id,
                   "name": f"preempted {event.kernel}",
                   "ts": _us(event.time),
                   "args": {"evicted_wgs": event.detail}}
        elif kind == "wg_issue" and event.cu is not None:
            cu_levels[event.cu] = cu_levels.get(event.cu, 0) + 1
            device_level += 1
            yield {"ph": "C", "pid": PID_CUS, "tid": 0,
                   "name": f"CU{event.cu} residents",
                   "ts": _us(event.time),
                   "args": {"residents": cu_levels[event.cu]}}
            yield {"ph": "C", "pid": PID_CUS, "tid": 0,
                   "name": "device residents",
                   "ts": _us(event.time),
                   "args": {"residents": device_level}}
        elif kind == "wg_complete" and event.cu is not None:
            cu_levels[event.cu] = cu_levels.get(event.cu, 0) - 1
            device_level -= 1
            yield {"ph": "C", "pid": PID_CUS, "tid": 0,
                   "name": f"CU{event.cu} residents",
                   "ts": _us(event.time),
                   "args": {"residents": cu_levels[event.cu]}}
            yield {"ph": "C", "pid": PID_CUS, "tid": 0,
                   "name": "device residents",
                   "ts": _us(event.time),
                   "args": {"residents": device_level}}

    # -- job lifetime slices -------------------------------------------
    for job_id, start in sorted(arrival.items()):
        end, end_kind = terminal.get(job_id, (last_time, "unfinished"))
        outcome = by_job.get(job_id)
        name = outcome.benchmark if outcome is not None else f"job {job_id}"
        args: Dict[str, object] = {"job_id": job_id, "outcome": end_kind}
        if outcome is not None:
            args["deadline_ticks"] = outcome.deadline
            args["met_deadline"] = outcome.met_deadline
        yield {"ph": "X", "pid": PID_JOBS, "tid": job_id,
               "name": name, "cat": "job", "ts": _us(start),
               "dur": _us(max(0, end - start)), "args": args}

    # -- kernel slices --------------------------------------------------
    for job_id, kernel, start, end in kernel_slices:
        yield {"ph": "X", "pid": PID_JOBS, "tid": job_id,
               "name": kernel, "cat": "kernel", "ts": _us(start),
               "dur": _us(max(0, end - start)),
               "args": {"job_id": job_id}}

    # -- stream (queue) occupancy ---------------------------------------
    named_queues = set()
    for job_id, (queue_id, start) in sorted(enqueue.items()):
        if queue_id not in named_queues:
            named_queues.add(queue_id)
            yield {"ph": "M", "pid": PID_STREAMS, "tid": queue_id,
                   "name": "thread_name",
                   "args": {"name": f"queue {queue_id}"}}
            yield {"ph": "M", "pid": PID_STREAMS, "tid": queue_id,
                   "name": "thread_sort_index",
                   "args": {"sort_index": queue_id}}
        end, _ = terminal.get(job_id, (last_time, "unfinished"))
        yield {"ph": "X", "pid": PID_STREAMS, "tid": queue_id,
               "name": f"job {job_id}", "cat": "stream",
               "ts": _us(start), "dur": _us(max(0, end - start)),
               "args": {"job_id": job_id}}

    # -- scheduler decisions --------------------------------------------
    if decisions is not None:
        missed = {o.job_id for o in by_job.values()
                  if o.is_latency_sensitive and not o.met_deadline}
        yield {"ph": "M", "pid": PID_SCHEDULER, "tid": 0,
               "name": "thread_name",
               "args": {"name": "decisions"}}
        for decision in decisions.events:
            if decision.kind == "priority_update":
                job_id = decision.fields.get("job_id")
                laxity = decision.fields.get("laxity")
                if job_id in missed and isinstance(laxity, (int, float)):
                    yield {"ph": "C", "pid": PID_SCHEDULER, "tid": 0,
                           "name": f"laxity job {job_id}",
                           "ts": _us(decision.time),
                           "args": {"laxity_us": laxity / 1000.0}}
                continue
            yield {"ph": "i", "s": "t", "pid": PID_SCHEDULER, "tid": 0,
                   "name": decision.kind, "ts": _us(decision.time),
                   "cat": "decision", "args": decision.as_dict()}

    # -- windowed-metrics counter tracks --------------------------------
    if windows:
        yield {"ph": "M", "pid": PID_WINDOWS, "tid": 0,
               "name": "thread_name",
               "args": {"name": "windowed metrics"}}
        for stats in windows:
            ts = _us(stats.start)
            if stats.latency_p99 is not None:
                yield {"ph": "C", "pid": PID_WINDOWS, "tid": 0,
                       "name": "window p99 latency (ms)", "ts": ts,
                       "args": {"p99_ms": to_ms(stats.latency_p99)}}
            if stats.slo_attainment is not None:
                yield {"ph": "C", "pid": PID_WINDOWS, "tid": 0,
                       "name": "window SLO attainment", "ts": ts,
                       "args": {"attainment": stats.slo_attainment}}
            yield {"ph": "C", "pid": PID_WINDOWS, "tid": 0,
                   "name": "window throughput (jobs/s)", "ts": ts,
                   "args": {"jobs_per_s": stats.throughput_jobs_per_s}}
            if stats.occupancy_wgs is not None:
                yield {"ph": "C", "pid": PID_WINDOWS, "tid": 0,
                       "name": "window occupancy (WGs)", "ts": ts,
                       "args": {"wgs": stats.occupancy_wgs}}


def build_chrome_trace(trace: TraceRecorder, decisions=None,
                       outcomes=None, label: str = "run",
                       windows=None) -> Dict[str, object]:
    """Build the Trace Event Format document for one run.

    ``decisions`` is an optional :class:`~repro.telemetry.events
    .DecisionLog`; ``outcomes`` an optional list of
    :class:`~repro.metrics.collector.JobOutcome` used to label job tracks
    and select the laxity counters worth exporting; ``windows`` an
    optional sequence of :class:`~repro.telemetry.windows.WindowStats`
    rendered as counter tracks.
    """
    return {
        "traceEvents": list(_iter_events(trace, decisions=decisions,
                                         outcomes=outcomes,
                                         windows=windows)),
        "displayTimeUnit": "ms",
        "otherData": {"label": label, "format": "repro-perfetto-v1"},
    }


def write_chrome_trace(path: str, trace: TraceRecorder, decisions=None,
                       outcomes=None, label: str = "run",
                       windows=None) -> int:
    """Stream the trace document to ``path``; returns the event count.

    Events are serialised one at a time, so peak memory stays O(1) in
    the event count; the bytes written are identical to ``json.dump`` of
    the :func:`build_chrome_trace` document.
    """
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    count = 0
    with open(path, "w", encoding="utf-8") as sink:
        # json.dump's default separators are (", ", ": "); writing the
        # envelope by hand with per-event dumps reproduces its output
        # byte for byte without materialising the document.
        sink.write('{"traceEvents": [')
        for event in _iter_events(trace, decisions=decisions,
                                  outcomes=outcomes, windows=windows):
            if count:
                sink.write(", ")
            json.dump(event, sink)
            count += 1
        sink.write('], "displayTimeUnit": "ms", "otherData": ')
        json.dump({"label": label, "format": "repro-perfetto-v1"}, sink)
        sink.write("}")
    return count


__all__: List[str] = ["build_chrome_trace", "write_chrome_trace",
                      "PID_JOBS", "PID_CUS", "PID_STREAMS",
                      "PID_SCHEDULER", "PID_WINDOWS"]
