"""Unified telemetry: decision tracing, metrics, Perfetto export, reports.

See ``docs/observability.md`` for the event schema, metric names and the
anatomy of an exported bundle.  Entry points:

* :class:`TelemetryHub` — attach to a :class:`repro.sim.device.GPUSystem`
  (``telemetry=``) to collect everything for one run;
* :func:`write_bundle` / :func:`validate_bundle` — export and check the
  on-disk bundle (``lax-sim ... --emit-telemetry DIR`` drives these);
* :class:`MetricsRegistry` — named counters/gauges/histograms with
  Prometheus-text and JSON export;
* :func:`build_chrome_trace` — the Perfetto/chrome://tracing document.
"""

from .events import (DECISION_SCHEMAS, DecisionEvent, DecisionLog,
                     validate_decision)
from .hub import TelemetryHub
from .perfetto import (PID_CUS, PID_JOBS, PID_SCHEDULER, PID_STREAMS,
                       PID_WINDOWS, build_chrome_trace, write_chrome_trace)
from .registry import (Counter, Gauge, Histogram, MetricsRegistry,
                       DEFAULT_MS_BUCKETS)
from .report import (build_report, job_post_mortem, render_markdown,
                     validate_bundle, write_bundle,
                     write_validation_summary)
from .selfprof import SimProfiler
from .sinks import (JsonlSink, ListSink, NullSink, RingBufferSink,
                    TelemetrySink, make_sink, parse_sink_spec)
from .slo import (SLOMonitor, ThresholdRule, p99_above, print_alert,
                  reject_rate_above, slo_below)
from .windows import WindowStats, WindowedMetrics

__all__ = [
    "Counter",
    "DECISION_SCHEMAS",
    "DEFAULT_MS_BUCKETS",
    "DecisionEvent",
    "DecisionLog",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "ListSink",
    "MetricsRegistry",
    "NullSink",
    "PID_CUS",
    "PID_JOBS",
    "PID_SCHEDULER",
    "PID_STREAMS",
    "PID_WINDOWS",
    "RingBufferSink",
    "SLOMonitor",
    "SimProfiler",
    "TelemetryHub",
    "TelemetrySink",
    "ThresholdRule",
    "WindowStats",
    "WindowedMetrics",
    "build_chrome_trace",
    "build_report",
    "job_post_mortem",
    "make_sink",
    "p99_above",
    "parse_sink_spec",
    "print_alert",
    "reject_rate_above",
    "render_markdown",
    "slo_below",
    "validate_decision",
    "validate_bundle",
    "write_bundle",
    "write_validation_summary",
    "write_chrome_trace",
]
