"""Scheduler-decision events: the *why* behind every run outcome.

The lifecycle trace (:mod:`repro.sim.trace`) records what happened to each
job; the decision log records **why** — every admission verdict with its
Little's-Law inputs, every 100 us priority reassignment with the laxity
that drove it, every steady-state eviction and preemption choice.  Events
are schema-validated at emission time so downstream consumers (the run
report, the Perfetto exporter, tests) can rely on their fields.

Emission goes through :meth:`repro.schedulers.base.SchedulerPolicy
.emit_decision` (schedulers) or directly through a :class:`DecisionLog`
(device components); when no telemetry hub is attached the hook is a
no-op, so disabled telemetry costs one ``is None`` check.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import TelemetryError
from ..sim.trace import _json_escape, _scalar
from .sinks import ListSink

#: Schema per decision kind: field name -> required?  Optional fields may
#: be omitted; unknown fields are rejected.  ``time``, ``kind`` and
#: ``scheduler`` are implicit on every event.
DECISION_SCHEMAS: Dict[str, Dict[str, bool]] = {
    # Algorithm 1: arrival-time offload verdict with its queuing-delay
    # inputs (totRemTime + holdJobTime + durTime vs deadline).
    "admission_verdict": {
        "job_id": True,
        "accepted": True,
        # "no_deadline" | "fast_path" | "littles_law" | "cold_probe"
        # | "policy_default"
        "reason": True,
        "tot_rem_time": False,
        "hold_time": False,
        "dur_time": False,
        "deadline": False,
    },
    # Algorithm 2: one job's priority reassignment at an update tick.
    "priority_update": {
        "job_id": True,
        "priority": True,
        "previous": True,
        "laxity": False,
        "remaining_estimate": False,
    },
    # Algorithm 1's continuous sweep evicting a job it predicts to miss.
    "late_reject": {
        "job_id": True,
        # "past_deadline" | "queuing_delay"
        "reason": True,
        "elapsed": True,
        "deadline": True,
        "tot_rem_time": False,
    },
    # Hybrid/PREMA: why a victim kernel's WGs were checkpointed out.
    "preemption_cause": {
        "job_id": True,          # the victim
        "kernel": True,
        "evicted": True,
        # "epoch_laxity_gap" | "prema_epoch" | "late_reject_cancel"
        "cause": True,
        "urgent_job_id": False,
        "victim_laxity": False,
        "urgent_laxity": False,
    },
    # RR/MLFQ: the rotating-pointer advance after a served pump.
    "queue_rotation": {
        "pointer": True,
        "previous": True,
        "served": True,
    },
    # Cluster tier: one arrival's device assignment (or router-tier
    # rejection) with the router's load-model inputs.  ``scheduler``
    # carries the router's registry name; ``device`` is -1 on reject.
    "router_decision": {
        "job_id": True,
        "device": True,
        "accepted": True,
        # "pass_through" | "round_robin" | "least_queue" | "two_choices"
        # | "laxity_positive" | "no_deadline" | "router_reject"
        "reason": True,
        "backlog": False,
        "laxity": False,
    },
}


@dataclass(frozen=True)
class DecisionEvent:
    """One schema-validated scheduler decision."""

    time: int
    kind: str
    scheduler: str
    fields: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Flat dict form used by the exporters."""
        record: Dict[str, object] = {"time": self.time, "kind": self.kind,
                                     "scheduler": self.scheduler}
        record.update(self.fields)
        return record

    def as_json_line(self) -> str:
        """``json.dumps(self.as_dict())``, hand-rolled.

        The JSONL sink's per-event hot path; byte-identical to the
        generic form (field order is insertion order either way).
        """
        # Field names are schema-validated plain-ASCII identifiers
        # (DECISION_SCHEMAS), so quoting them needs no escaping.
        parts = ['"time": %d, "kind": %s, "scheduler": %s'
                 % (self.time, _json_escape(self.kind),
                    _json_escape(self.scheduler))]
        for name, value in self.fields.items():
            parts.append('"%s": %s' % (name, _scalar(value)))
        return "{" + ", ".join(parts) + "}"


def validate_decision(kind: str, fields: Dict[str, object]) -> None:
    """Raise :class:`TelemetryError` unless ``fields`` satisfy ``kind``."""
    schema = DECISION_SCHEMAS.get(kind)
    if schema is None:
        raise TelemetryError(
            f"unknown decision kind {kind!r}; known: "
            f"{', '.join(sorted(DECISION_SCHEMAS))}")
    for name, required in schema.items():
        if required and name not in fields:
            raise TelemetryError(
                f"decision {kind!r} missing required field {name!r}")
    unknown = set(fields) - set(schema)
    if unknown:
        raise TelemetryError(
            f"decision {kind!r} has unknown fields {sorted(unknown)}")


class DecisionLog:
    """Accumulates decision events during one run.

    With a registry attached, every emission also bumps the
    ``decision_events_total{kind=...}`` counter so the metrics snapshot
    reflects decision volume without replaying the log.

    ``sink`` chooses the retention policy (default: an unbounded
    :class:`~repro.telemetry.sinks.ListSink`, the historical list-backed
    behaviour); queries see the retained records, :meth:`counts` stays
    exact under every sink.
    """

    def __init__(self, registry=None, sink=None) -> None:
        #: The TelemetrySink receiving every decision event.
        self.sink = sink if sink is not None else ListSink()
        self._append = (self.sink.records.append
                        if self.sink.kind == "list" else self.sink.append)
        self._registry = registry
        self._counters: Dict[str, object] = {}
        self._kind_counts: Dict[str, int] = {}

    @property
    def events(self) -> List[DecisionEvent]:
        """The retained events (the live list under the default sink)."""
        return self.sink.items()

    def __len__(self) -> int:
        """Decision events ever emitted (retention-independent)."""
        return self.sink.total

    def emit(self, time: int, kind: str, scheduler: str,
             **fields: object) -> DecisionEvent:
        """Validate and append one decision event."""
        validate_decision(kind, fields)
        event = DecisionEvent(time=time, kind=kind, scheduler=scheduler,
                              fields=fields)
        self._kind_counts[kind] = self._kind_counts.get(kind, 0) + 1
        self._append(event)
        if self._registry is not None:
            counter = self._counters.get(kind)
            if counter is None:
                counter = self._registry.counter(
                    "decision_events_total",
                    "Scheduler decision events recorded.", kind=kind)
                self._counters[kind] = counter
            counter.inc()
        return event

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Event count per kind, over the *whole* run.

        Maintained incrementally at emit time, so counts stay exact
        even when a bounded sink has evicted or spilled the records.
        """
        return dict(self._kind_counts)

    def of_kind(self, kind: str) -> List[DecisionEvent]:
        """All retained events of one kind, in emission order."""
        if kind not in DECISION_SCHEMAS:
            raise TelemetryError(f"unknown decision kind {kind!r}")
        return [event for event in self.events if event.kind == kind]

    def for_job(self, job_id: int) -> List[DecisionEvent]:
        """Every retained decision naming ``job_id`` (subject or victim)."""
        return [event for event in self.events
                if event.fields.get("job_id") == job_id
                or event.fields.get("urgent_job_id") == job_id]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_jsonl(self, path: str) -> int:
        """Write the log as JSON lines; returns the event count.

        Under a JSONL spill sink the full on-disk stream is copied;
        other sinks write their retained records.
        """
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        if self.sink.kind == "jsonl":
            self.sink.flush()
            if os.path.abspath(self.sink.path) != os.path.abspath(path):
                shutil.copyfile(self.sink.path, path)
            return self.sink.total
        with open(path, "w", encoding="utf-8") as sink:
            for event in self.events:
                sink.write(json.dumps(event.as_dict()) + "\n")
        return len(self.events)


def first_admission_verdict(log: DecisionLog,
                            job_id: int) -> Optional[DecisionEvent]:
    """The admission decision that let ``job_id`` in (or kept it out)."""
    for event in log.events:
        if (event.kind == "admission_verdict"
                and event.fields.get("job_id") == job_id):
            return event
    return None
