"""Run reports: a markdown/JSON bundle explaining one simulation run.

The report generator turns a run's telemetry (lifecycle trace, decision
log, metrics registry, self-profile) plus its :class:`~repro.metrics
.collector.RunMetrics` into a post-mortem bundle:

* ``report.md`` / ``report.json`` — outcome summary, scheduler-decision
  digest, simulator self-profile, and one **deadline-miss post-mortem**
  per failed job naming the admission and priority decisions involved;
* ``trace.json`` — the Perfetto/Chrome trace (open in chrome://tracing);
* ``metrics.prom`` / ``metrics.json`` — the metrics-registry snapshot in
  Prometheus text and JSON form;
* ``events.jsonl`` / ``decisions.jsonl`` — the raw event streams;
* ``windows.jsonl`` — the per-window steady-state series, when the run
  collected windowed metrics (also embedded in ``report.json`` and
  rendered as Perfetto counter tracks).

:func:`validate_bundle` checks a written bundle for structural integrity;
the CI smoke job runs it against a fresh ``lax-sim --emit-telemetry``
output.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, TYPE_CHECKING

from ..errors import TelemetryError
from ..units import to_ms
from .events import DecisionLog, first_admission_verdict
from .hub import TelemetryHub
from .perfetto import write_chrome_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..metrics.collector import JobOutcome, RunMetrics

#: Files a complete bundle must contain.
BUNDLE_FILES = ("trace.json", "metrics.prom", "metrics.json", "report.md",
                "report.json", "events.jsonl")

#: Post-mortems rendered in full in the markdown (the JSON keeps all).
MAX_RENDERED_POST_MORTEMS = 12


# ----------------------------------------------------------------------
# Post-mortems
# ----------------------------------------------------------------------

def _classify(outcome: JobOutcome, late_rejects) -> str:
    if outcome.accepted is False:
        return "late_rejected" if late_rejects else "rejected_at_admission"
    if outcome.completion is None:
        return "unfinished"
    return "completed_late"


def job_post_mortem(outcome: JobOutcome,
                    decisions: Optional[DecisionLog]) -> Dict[str, object]:
    """Reconstruct why one latency-sensitive job missed its deadline."""
    record: Dict[str, object] = {
        "job_id": outcome.job_id,
        "benchmark": outcome.benchmark,
        "arrival_ms": to_ms(outcome.arrival),
        "deadline_ms": to_ms(outcome.deadline),
    }
    if outcome.completion is not None:
        record["completion_ms"] = to_ms(outcome.completion)
        record["overage_ms"] = to_ms(
            outcome.completion - (outcome.arrival + outcome.deadline))
    if decisions is None:
        record["verdict"] = _classify(outcome, [])
        record["decisions"] = []
        return record

    named: List[Dict[str, object]] = []
    admission = first_admission_verdict(decisions, outcome.job_id)
    if admission is not None:
        named.append(admission.as_dict())
    job_events = decisions.for_job(outcome.job_id)
    late_rejects = [e for e in job_events if e.kind == "late_reject"]
    named.extend(e.as_dict() for e in late_rejects)
    preemptions = [e for e in job_events if e.kind == "preemption_cause"]
    named.extend(e.as_dict() for e in preemptions)

    updates = [e for e in job_events if e.kind == "priority_update"]
    record["priority_updates"] = len(updates)
    laxities = [(e.time, e.fields["laxity"]) for e in updates
                if isinstance(e.fields.get("laxity"), (int, float))]
    if laxities:
        min_time, min_laxity = min(laxities, key=lambda item: item[1])
        record["min_laxity_us"] = min_laxity / 1000.0
        record["min_laxity_at_ms"] = to_ms(min_time)
        crossed = next((time for time, laxity in laxities if laxity <= 0),
                       None)
        if crossed is not None:
            record["laxity_crossed_zero_at_ms"] = to_ms(crossed)

    record["verdict"] = _classify(outcome, late_rejects)
    record["decisions"] = named
    return record


def _post_mortem_paragraph(record: Dict[str, object]) -> str:
    job_id = record["job_id"]
    lines = [f"### job {job_id} ({record['benchmark']}) — "
             f"{record['verdict'].replace('_', ' ')}"]
    lines.append(
        f"- arrived at {record['arrival_ms']:.3f} ms with a "
        f"{record['deadline_ms']:.3f} ms deadline")
    if "overage_ms" in record:
        lines.append(
            f"- completed at {record['completion_ms']:.3f} ms, "
            f"{record['overage_ms']:.3f} ms past the deadline")
    for decision in record["decisions"]:
        kind = decision["kind"]
        if kind == "admission_verdict":
            verdict = "accepted" if decision["accepted"] else "rejected"
            detail = f"- admission ({decision['scheduler']}): {verdict} " \
                     f"via {decision['reason']}"
            if decision.get("tot_rem_time") is not None:
                detail += (
                    f" — totRem {decision['tot_rem_time'] / 1e6:.3f} ms"
                    f" + hold {decision.get('hold_time', 0) / 1e6:.3f} ms"
                    f" + dur {decision.get('dur_time', 0) / 1e6:.3f} ms"
                    f" vs deadline "
                    f"{decision.get('deadline', 0) / 1e6:.3f} ms")
            lines.append(detail)
        elif kind == "late_reject":
            lines.append(
                f"- late-rejected at {to_ms(decision['time']):.3f} ms "
                f"({decision['reason']}): elapsed "
                f"{decision['elapsed'] / 1e6:.3f} ms of "
                f"{decision['deadline'] / 1e6:.3f} ms budget")
        elif kind == "preemption_cause":
            lines.append(
                f"- preempted at {to_ms(decision['time']):.3f} ms: "
                f"{decision['evicted']} WGs of {decision['kernel']} "
                f"evicted ({decision['cause']})")
    if record.get("priority_updates"):
        detail = f"- {record['priority_updates']} priority updates"
        if "min_laxity_us" in record:
            detail += (f"; minimum laxity {record['min_laxity_us']:.1f} us "
                       f"at {record['min_laxity_at_ms']:.3f} ms")
        if "laxity_crossed_zero_at_ms" in record:
            detail += (f"; laxity went non-positive at "
                       f"{record['laxity_crossed_zero_at_ms']:.3f} ms")
        lines.append(detail)
    if not record["decisions"] and not record.get("priority_updates"):
        lines.append("- no scheduler decisions recorded for this job "
                     "(deadline-blind policy)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Report assembly
# ----------------------------------------------------------------------

def build_report(metrics: RunMetrics, hub: TelemetryHub,
                 label: str = "run",
                 diagnostics: Optional[Dict[str, object]] = None,
                 validation: Optional[Dict[str, object]] = None
                 ) -> Dict[str, object]:
    """Assemble the structured (JSON-ready) run report.

    ``validation`` is an :meth:`~repro.validation.invariants
    .InvariantChecker.summary` mapping; when given, the report embeds the
    per-invariant check counts and any violations so a post-mortem bundle
    carries the conservation state alongside the decision digest.
    """
    p99 = metrics.p99_latency_ticks
    report: Dict[str, object] = {
        "format": "repro-run-report-v1",
        "label": label,
        "summary": {
            "jobs_arrived": metrics.num_jobs,
            "jobs_meeting_deadline": metrics.jobs_meeting_deadline,
            "jobs_rejected": metrics.jobs_rejected,
            "jobs_retired": (metrics.stream.jobs
                             if metrics.stream is not None else 0),
            "latency_sensitive_jobs": metrics.num_latency_sensitive,
            "deadline_ratio": metrics.deadline_ratio,
            "p99_latency_ms": to_ms(p99) if p99 is not None else None,
            "makespan_ms": to_ms(metrics.makespan_ticks),
            "wasted_wg_fraction": metrics.wasted_wg_fraction,
            "energy_per_successful_job_mj":
                metrics.energy_per_successful_job_mj,
        },
        "trace_event_counts": hub.trace.counts(),
        "decision_counts": (hub.decisions.counts()
                            if hub.decisions is not None else {}),
    }
    if diagnostics:
        report["diagnostics"] = dict(diagnostics)
    if validation is not None:
        report["validation"] = dict(validation)
    if hub.profiler is not None:
        report["self_profile"] = hub.profiler.snapshot()
    if hub.windows is not None:
        windows_doc: Dict[str, object] = {
            "window_ms": to_ms(hub.windows.window_ticks),
            "window_ticks": hub.windows.window_ticks,
            "estimator": hub.windows.estimator,
            "windows_closed": hub.windows.windows_closed,
            "series": [stats.as_dict() for stats in hub.windows.records],
        }
        if hub.monitor is not None:
            windows_doc["monitor"] = hub.monitor.snapshot()
        report["windows"] = windows_doc
    report["post_mortems"] = [
        job_post_mortem(outcome, hub.decisions)
        for outcome in metrics.outcomes
        if outcome.is_latency_sensitive and not outcome.met_deadline
    ]
    return report


def render_markdown(report: Dict[str, object]) -> str:
    """Render the structured report as a markdown document."""
    summary = report["summary"]
    lines = [f"# Run report — {report['label']}", ""]
    lines.append("## Outcome")
    lines.append("")
    lines.append("| metric | value |")
    lines.append("| --- | --- |")
    p99 = summary["p99_latency_ms"]
    energy = summary["energy_per_successful_job_mj"]
    rows = [
        ("jobs arrived", summary["jobs_arrived"]),
        ("jobs meeting deadline", summary["jobs_meeting_deadline"]),
        ("jobs rejected", summary["jobs_rejected"]),
    ]
    if summary.get("jobs_retired"):
        rows.append(("jobs retired (streamed)", summary["jobs_retired"]))
    rows += [
        ("deadline ratio", f"{summary['deadline_ratio']:.3f}"),
        ("p99 latency (ms)", f"{p99:.3f}" if p99 is not None else "-"),
        ("makespan (ms)", f"{summary['makespan_ms']:.3f}"),
        ("wasted WG fraction", f"{summary['wasted_wg_fraction']:.3f}"),
        ("energy per successful job (mJ)",
         f"{energy:.4f}" if energy is not None else "-"),
    ]
    lines.extend(f"| {name} | {value} |" for name, value in rows)
    lines.append("")

    decision_counts = report.get("decision_counts") or {}
    lines.append("## Scheduler decisions")
    lines.append("")
    if decision_counts:
        lines.append("| kind | events |")
        lines.append("| --- | --- |")
        lines.extend(f"| {kind} | {count} |"
                     for kind, count in sorted(decision_counts.items()))
    else:
        lines.append("(decision events disabled)")
    lines.append("")

    validation = report.get("validation")
    if validation is not None:
        lines.append("## Validation")
        lines.append("")
        violations = validation.get("violations") or []
        lines.append(
            f"- {validation.get('total_checks', 0)} invariant checks, "
            f"{len(violations)} violations")
        for name, count in sorted(
                (validation.get("checks") or {}).items()):
            lines.append(f"  - {name}: {count}")
        for violation in violations:
            lines.append(f"- **VIOLATION** `{violation['invariant']}` at "
                         f"t={violation['time']}: {violation['message']}")
        oracle_failures = validation.get("oracle_failures")
        if oracle_failures:
            for failure in oracle_failures:
                lines.append(f"- **ORACLE** {failure}")
        elif oracle_failures is not None:
            lines.append("- analytic oracles: all passed")
        lines.append("")

    profile = report.get("self_profile")
    if profile:
        lines.append("## Simulator self-profile")
        lines.append("")
        lines.append(
            f"- {profile['events_fired']} engine events in "
            f"{profile['wall_seconds']:.3f} s wall-clock "
            f"({profile['events_per_second']:.0f} events/s)")
        lines.append("")
        lines.append("| callback | calls | total (s) | mean (us) |")
        lines.append("| --- | --- | --- | --- |")
        for stats in profile["callbacks"][:8]:
            lines.append(
                f"| {stats['name']} | {stats['calls']} | "
                f"{stats['seconds']:.4f} | {stats['mean_us']:.1f} |")
        lines.append("")

    # Bundles written before the event core existed lack the key; the
    # section simply does not render for them.
    event_core = (report.get("diagnostics") or {}).get("event_core")
    if event_core:
        lines.append("## Event core")
        lines.append("")
        engine = ("calendar queue" if event_core.get("wheeled")
                  else "binary heap")
        lines.append(
            f"- engine: {engine}; "
            f"{event_core.get('events_committed', 0)} committed events "
            f"({event_core.get('events_fired', 0)} fired, "
            f"{event_core.get('events_coalesced', 0)} coalesced)")
        lines.append(f"- pops: {event_core.get('wheel_pops', 0)} wheel, "
                     f"{event_core.get('heap_pops', 0)} heap")
        if "periodic_ticks_elided" in event_core:
            lines.append(
                f"- periodic ticks: "
                f"{event_core.get('periodic_ticks_fired', 0)} fired, "
                f"{event_core['periodic_ticks_elided']} elided")
        pool = event_core.get("job_pool")
        if pool:
            lines.append(
                f"- job pool: enabled={pool.get('enabled')}; "
                f"{pool.get('hits', 0)} hits, {pool.get('misses', 0)} "
                f"misses, {pool.get('recycled', 0)} recycled")
        lines.append("")

    windows = report.get("windows")
    if windows:
        series = windows.get("series") or []
        lines.append("## Windowed metrics")
        lines.append("")
        lines.append(
            f"- {windows.get('windows_closed', len(series))} windows of "
            f"{windows.get('window_ms', 0):.3f} ms "
            f"({windows.get('estimator', '?')} estimator)")
        monitor = windows.get("monitor") or {}
        alerts = monitor.get("alerts") or []
        if monitor:
            lines.append(f"- SLO monitor: {len(alerts)} alert(s)")
            for alert in alerts:
                lines.append(
                    f"  - `{alert.get('rule')}` fired at window "
                    f"{alert.get('window_index')}")
        if series:
            lines.append("")
            lines.append("| window | completions | p99 (ms) | SLO | "
                         "jobs/s | occupancy |")
            lines.append("| --- | --- | --- | --- | --- | --- |")
            shown = series if len(series) <= 10 else series[-10:]
            for stats in shown:
                p99_w = stats.get("latency_p99")
                slo_w = stats.get("slo_attainment")
                occ = stats.get("occupancy_wgs")
                cells = [
                    str(stats.get("index")),
                    str(stats.get("completions")),
                    f"{to_ms(p99_w):.3f}" if p99_w is not None else "-",
                    f"{slo_w:.3f}" if slo_w is not None else "-",
                    f"{stats.get('throughput_jobs_per_s', 0):.1f}",
                    str(occ) if occ is not None else "-",
                ]
                lines.append("| " + " | ".join(cells) + " |")
            if len(series) > 10:
                lines.append("")
                lines.append(f"(last 10 of {len(series)} windows; "
                             f"full series in report.json)")
        lines.append("")

    post_mortems = report.get("post_mortems") or []
    lines.append(f"## Deadline-miss post-mortems ({len(post_mortems)} jobs)")
    lines.append("")
    if not post_mortems:
        lines.append("Every latency-sensitive job met its deadline.")
    for record in post_mortems[:MAX_RENDERED_POST_MORTEMS]:
        lines.append(_post_mortem_paragraph(record))
        lines.append("")
    if len(post_mortems) > MAX_RENDERED_POST_MORTEMS:
        lines.append(
            f"... {len(post_mortems) - MAX_RENDERED_POST_MORTEMS} more in "
            f"report.json")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


# ----------------------------------------------------------------------
# Bundle I/O
# ----------------------------------------------------------------------

def finalize_registry(hub: TelemetryHub, metrics: RunMetrics,
                      diagnostics: Optional[Dict[str, object]] = None
                      ) -> None:
    """Fold run-level results into the registry before export."""
    registry = hub.registry
    registry.gauge("run_makespan_ms",
                   "First arrival to last completion.").set(
        to_ms(metrics.makespan_ticks))
    registry.gauge("run_deadline_ratio",
                   "Fraction of latency-sensitive jobs meeting their "
                   "deadline.").set(metrics.deadline_ratio)
    registry.gauge("run_wasted_wg_fraction",
                   "Executed WGs not serving deadline-meeting jobs.").set(
        metrics.wasted_wg_fraction)
    registry.gauge("run_energy_joules",
                   "Total consumed energy.").set(metrics.total_energy_joules)
    if hub.profiler is not None:
        registry.gauge("sim_wall_seconds",
                       "Simulator wall-clock for the run.").set(
            hub.profiler.wall_seconds)
        registry.gauge("sim_events_per_second",
                       "Engine events per wall-clock second.").set(
            hub.profiler.events_per_second)
        registry.counter("sim_events_fired_total",
                         "Engine events executed.").inc(
            hub.profiler.events_fired)
    if diagnostics:
        for name in ("wgs_issued", "wgs_preempted", "host_commands"):
            if name in diagnostics:
                registry.gauge(f"run_{name}",
                               f"Run diagnostic: {name}.").set(
                    diagnostics[name])


def write_bundle(directory: str, hub: TelemetryHub, metrics: RunMetrics,
                 label: str = "run",
                 diagnostics: Optional[Dict[str, object]] = None,
                 validation: Optional[Dict[str, object]] = None
                 ) -> Dict[str, str]:
    """Write the full telemetry bundle; returns name -> path.

    ``validation`` (an invariant-checker summary) is embedded in both
    report forms and, when it records violations, also written as
    ``validation.json`` so post-mortem tooling can grab the structured
    conservation state directly.
    """
    os.makedirs(directory, exist_ok=True)
    finalize_registry(hub, metrics, diagnostics)
    paths = {name: os.path.join(directory, name) for name in BUNDLE_FILES}
    paths["decisions.jsonl"] = os.path.join(directory, "decisions.jsonl")

    window_records = (hub.windows.records
                      if hub.windows is not None else None)
    write_chrome_trace(paths["trace.json"], hub.trace,
                       decisions=hub.decisions, outcomes=metrics.outcomes,
                       label=label, windows=window_records)
    with open(paths["metrics.prom"], "w", encoding="utf-8") as sink:
        sink.write(hub.registry.to_prometheus_text())
    metrics_doc = {
        "format": "repro-telemetry-metrics-v1",
        "label": label,
        "registry": hub.registry.to_json(),
    }
    if hub.profiler is not None:
        metrics_doc["self_profile"] = hub.profiler.snapshot()
    with open(paths["metrics.json"], "w", encoding="utf-8") as sink:
        json.dump(metrics_doc, sink, indent=1)

    report = build_report(metrics, hub, label=label, diagnostics=diagnostics,
                          validation=validation)
    with open(paths["report.json"], "w", encoding="utf-8") as sink:
        json.dump(report, sink, indent=1)
    with open(paths["report.md"], "w", encoding="utf-8") as sink:
        sink.write(render_markdown(report))
    if validation is not None and validation.get("violations"):
        paths["validation.json"] = os.path.join(directory, "validation.json")
        with open(paths["validation.json"], "w", encoding="utf-8") as sink:
            json.dump(validation, sink, indent=1)

    hub.trace.to_jsonl(paths["events.jsonl"])
    if hub.decisions is not None:
        hub.decisions.to_jsonl(paths["decisions.jsonl"])
    else:
        paths.pop("decisions.jsonl")
    if window_records is not None:
        paths["windows.jsonl"] = os.path.join(directory, "windows.jsonl")
        with open(paths["windows.jsonl"], "w", encoding="utf-8") as sink:
            for stats in window_records:
                sink.write(json.dumps(stats.as_dict()) + "\n")
    return paths


def write_validation_summary(directory: str,
                             validation: Dict[str, object]) -> str:
    """Write just ``validation.json`` into (a possibly partial) bundle.

    Used when a run died on an :class:`~repro.validation.invariants
    .InvariantViolation` before metrics were finalized: there is no full
    bundle to write, but the post-mortem still wants the structured
    conservation state on disk next to whatever telemetry survived.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "validation.json")
    with open(path, "w", encoding="utf-8") as sink:
        json.dump(validation, sink, indent=1)
    return path


def validate_bundle(directory: str) -> Dict[str, object]:
    """Check a written bundle's structural integrity.

    Raises :class:`TelemetryError` on the first problem; returns a small
    summary (event/post-mortem counts) on success.  This is what the CI
    telemetry smoke job asserts against.
    """
    for name in BUNDLE_FILES:
        path = os.path.join(directory, name)
        if not os.path.isfile(path):
            raise TelemetryError(f"bundle missing {name}")
    with open(os.path.join(directory, "trace.json"),
              encoding="utf-8") as source:
        trace_doc = json.load(source)
    trace_events = trace_doc.get("traceEvents")
    if not isinstance(trace_events, list) or not trace_events:
        raise TelemetryError("trace.json has no traceEvents")
    phases = {event.get("ph") for event in trace_events}
    if "X" not in phases:
        raise TelemetryError("trace.json contains no duration slices")
    with open(os.path.join(directory, "metrics.json"),
              encoding="utf-8") as source:
        metrics_doc = json.load(source)
    if metrics_doc.get("format") != "repro-telemetry-metrics-v1":
        raise TelemetryError("metrics.json has an unknown format")
    if not metrics_doc.get("registry"):
        raise TelemetryError("metrics.json registry snapshot is empty")
    prom_text = open(os.path.join(directory, "metrics.prom"),
                     encoding="utf-8").read()
    if "# TYPE " not in prom_text:
        raise TelemetryError("metrics.prom has no TYPE headers")
    with open(os.path.join(directory, "report.json"),
              encoding="utf-8") as source:
        report = json.load(source)
    if report.get("format") != "repro-run-report-v1":
        raise TelemetryError("report.json has an unknown format")
    if "post_mortems" not in report or "summary" not in report:
        raise TelemetryError("report.json is missing required sections")
    return {
        "trace_events": len(trace_events),
        "registry_metrics": len(metrics_doc["registry"]),
        "post_mortems": len(report["post_mortems"]),
    }
