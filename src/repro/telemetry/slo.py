"""Live SLO monitoring over the windowed-metrics stream.

An :class:`SLOMonitor` consumes :class:`~repro.telemetry.windows
.WindowStats` records as their windows close and does three things:

* mirrors each window into ``repro_window_*`` instruments in the
  :class:`~repro.telemetry.registry.MetricsRegistry` (gauges for the
  latest window, counters for totals), so a scrape mid-run sees live
  steady-state numbers;
* evaluates **threshold rules** — "alert when `predicate(window)` holds
  for N consecutive windows" (e.g. p99 latency above the deadline, SLO
  attainment below target) — firing a callback and recording a
  structured alert per episode;
* optionally streams a compact one-line progress report per window to a
  file object (the CLI's ``--slo-monitor`` points this at stderr).

The monitor holds O(1) state per rule plus the alert list; it never
retains window records, so it composes with any sink choice.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import TelemetryError
from ..units import to_ms
from .windows import WindowedMetrics, WindowStats

Predicate = Callable[[WindowStats], bool]


# ----------------------------------------------------------------------
# Rule predicates (common SLO conditions, ready-made)
# ----------------------------------------------------------------------

def slo_below(threshold: float) -> Predicate:
    """Window SLO attainment fell below ``threshold`` (misses counted).

    Windows with no latency-sensitive completions do not trigger.
    """
    def predicate(stats: WindowStats) -> bool:
        return (stats.slo_attainment is not None
                and stats.slo_attainment < threshold)
    return predicate


def p99_above(ticks: float) -> Predicate:
    """Window p99 latency exceeded ``ticks``."""
    def predicate(stats: WindowStats) -> bool:
        return stats.latency_p99 is not None and stats.latency_p99 > ticks
    return predicate


def reject_rate_above(threshold: float) -> Predicate:
    """Window admission-reject rate exceeded ``threshold``."""
    def predicate(stats: WindowStats) -> bool:
        return (stats.reject_rate is not None
                and stats.reject_rate > threshold)
    return predicate


@dataclass
class ThresholdRule:
    """Alert when ``predicate`` holds for ``consecutive`` windows."""

    name: str
    predicate: Predicate
    consecutive: int = 3
    callback: Optional[Callable[[str, WindowStats], None]] = None
    #: Consecutive violating windows seen so far.
    streak: int = field(default=0, init=False)
    #: Whether the current episode already fired (re-arms on a clean
    #: window).
    fired: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.consecutive < 1:
            raise TelemetryError("rule needs consecutive >= 1")


class SLOMonitor:
    """Streams windowed metrics into instruments, rules and a console.

    Construct over a :class:`~repro.telemetry.windows.WindowedMetrics`
    (the monitor registers itself as a consumer) with an optional
    registry, rules and output stream.
    """

    def __init__(self, windows: WindowedMetrics, registry=None,
                 stream=None, label: str = "run",
                 rules: Optional[List[ThresholdRule]] = None) -> None:
        self.windows = windows
        self.registry = registry
        self.stream = stream
        self.label = label
        self.rules: List[ThresholdRule] = list(rules or [])
        #: Structured alerts, in firing order.
        self.alerts: List[Dict[str, object]] = []
        self.last: Optional[WindowStats] = None
        self._instruments = None
        windows.add_consumer(self.on_window)

    def add_rule(self, name: str, predicate: Predicate,
                 consecutive: int = 3,
                 callback: Optional[Callable[[str, WindowStats], None]]
                 = None) -> ThresholdRule:
        """Register a threshold rule; returns it."""
        rule = ThresholdRule(name=name, predicate=predicate,
                             consecutive=consecutive, callback=callback)
        self.rules.append(rule)
        return rule

    # ------------------------------------------------------------------
    # Window consumption
    # ------------------------------------------------------------------

    def _make_instruments(self):
        reg = self.registry
        return {
            "index": reg.gauge(
                "window_index", "Index of the latest closed window."),
            "p50": reg.gauge(
                "window_p50_latency_ms",
                "Latest window's median completed-job latency."),
            "p99": reg.gauge(
                "window_p99_latency_ms",
                "Latest window's p99 completed-job latency."),
            "slo": reg.gauge(
                "window_slo_attainment",
                "Latest window's deadline-met fraction "
                "(latency-sensitive completions)."),
            "admission": reg.gauge(
                "window_admission_rate",
                "Latest window's admission-accept fraction."),
            "throughput": reg.gauge(
                "window_throughput_jobs_per_s",
                "Latest window's completed jobs per simulated second."),
            "occupancy": reg.gauge(
                "window_occupancy_wgs",
                "Device-resident WGs sampled at the window close."),
            "closed": reg.counter(
                "windows_closed_total", "Windows closed so far."),
            "completions": reg.counter(
                "window_completions_total",
                "Jobs completed inside closed windows."),
            "misses": reg.counter(
                "window_deadline_misses_total",
                "Deadline misses inside closed windows."),
        }

    def on_window(self, stats: WindowStats) -> None:
        """Consume one closed window (called by WindowedMetrics)."""
        self.last = stats
        if self.registry is not None:
            if self._instruments is None:
                self._instruments = self._make_instruments()
            ins = self._instruments
            ins["index"].set(stats.index)
            if stats.latency_p50 is not None:
                ins["p50"].set(to_ms(stats.latency_p50))
            if stats.latency_p99 is not None:
                ins["p99"].set(to_ms(stats.latency_p99))
            if stats.slo_attainment is not None:
                ins["slo"].set(stats.slo_attainment)
            if stats.admission_rate is not None:
                ins["admission"].set(stats.admission_rate)
            ins["throughput"].set(stats.throughput_jobs_per_s)
            if stats.occupancy_wgs is not None:
                ins["occupancy"].set(stats.occupancy_wgs)
            ins["closed"].inc()
            ins["completions"].inc(stats.completions)
            ins["misses"].inc(stats.deadline_missed)
        for rule in self.rules:
            self._evaluate(rule, stats)
        if self.stream is not None:
            self.stream.write(self.progress_line(stats) + "\n")

    def _evaluate(self, rule: ThresholdRule, stats: WindowStats) -> None:
        if rule.predicate(stats):
            rule.streak += 1
            if rule.streak >= rule.consecutive and not rule.fired:
                rule.fired = True
                alert = {
                    "rule": rule.name,
                    "window_index": stats.index,
                    "time": stats.end,
                    "streak": rule.streak,
                    "window": stats.as_dict(),
                }
                self.alerts.append(alert)
                if self.registry is not None:
                    self.registry.counter(
                        "window_alerts_total",
                        "Threshold-rule alert episodes.",
                        rule=rule.name).inc()
                if rule.callback is not None:
                    rule.callback(rule.name, stats)
        else:
            rule.streak = 0
            rule.fired = False

    # ------------------------------------------------------------------
    # Console line
    # ------------------------------------------------------------------

    def progress_line(self, stats: WindowStats) -> str:
        """The compact one-line live report for one window."""
        p99 = (f"{to_ms(stats.latency_p99):.3f}ms"
               if stats.latency_p99 is not None else "-")
        slo = (f"{stats.slo_attainment:.3f}"
               if stats.slo_attainment is not None else "-")
        admission = (f"{stats.admission_rate:.2f}"
                     if stats.admission_rate is not None else "-")
        occupancy = (str(stats.occupancy_wgs)
                     if stats.occupancy_wgs is not None else "-")
        alerts = sum(1 for rule in self.rules if rule.fired)
        line = (f"[{self.label}] w={stats.index} "
                f"t={to_ms(stats.end):.1f}ms "
                f"done={stats.completions} "
                f"p99={p99} slo={slo} adm={admission} occ={occupancy}")
        if alerts:
            line += f" ALERT x{alerts}"
        return line

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready monitor state (report bundles embed this)."""
        return {
            "windows_closed": self.windows.windows_closed,
            "window_ticks": self.windows.window_ticks,
            "rules": [{"name": rule.name,
                       "consecutive": rule.consecutive,
                       "streak": rule.streak,
                       "fired": rule.fired} for rule in self.rules],
            "alerts": [dict(alert) for alert in self.alerts],
        }


def print_alert(name: str, stats: WindowStats, stream=None) -> None:
    """Default alert callback: one line to ``stream`` (stderr)."""
    target = stream if stream is not None else sys.stderr
    detail = (f" p99={to_ms(stats.latency_p99):.3f}ms"
              if stats.latency_p99 is not None else "")
    slo = (f" slo={stats.slo_attainment:.3f}"
           if stats.slo_attainment is not None else "")
    target.write(f"SLO ALERT [{name}] window {stats.index} "
                 f"(t={to_ms(stats.end):.1f}ms){detail}{slo}\n")
