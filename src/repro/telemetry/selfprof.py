"""Simulator self-profiling: where does the *simulator's* wall-clock go?

The ROADMAP's "fast as the hardware allows" goal needs attribution, not
guesses.  A :class:`SimProfiler` attached to
:attr:`repro.sim.engine.Simulator.profiler` receives one
``record(callback, seconds)`` call per executed event; it aggregates
wall-clock and event counts per callback qualname, and the run wrapper
(:meth:`repro.sim.device.GPUSystem.run`) brackets the whole run so
events-per-second comes out of the same snapshot.

With no profiler attached the engine pays a single ``is None`` check per
event, which keeps the telemetry-off hot path intact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class CallbackStats:
    """Aggregate cost of one callback target."""

    name: str
    calls: int = 0
    seconds: float = 0.0

    @property
    def mean_us(self) -> float:
        """Mean wall-clock per call, microseconds."""
        if self.calls == 0:
            return 0.0
        return self.seconds / self.calls * 1e6


@dataclass
class ProfileRecord:
    """One bracketed run's self-profile, as a sink-appendable record."""

    payload: Dict[str, object]

    def as_dict(self) -> Dict[str, object]:
        """Sink/export form of the record."""
        return self.payload


class SimProfiler:
    """Aggregates per-callback wall-clock for one simulation run.

    The profiler's own memory is O(#distinct callbacks) — already
    bounded — so a sink is optional: when one is attached
    (:class:`~repro.telemetry.sinks.TelemetrySink`), each
    :meth:`end_run` appends the run's snapshot as a
    :class:`ProfileRecord`, putting the profile on the same streaming
    path as the trace and decision channels.
    """

    def __init__(self, sink=None) -> None:
        # Keyed by the callback object itself: hashing a function or
        # bound method is a C-level operation, whereas resolving its
        # qualname is a slow attribute chain.  Names are resolved (and
        # same-qualname callbacks merged) lazily in :meth:`_aggregate`.
        self._raw: Dict[object, List] = {}
        #: Optional TelemetrySink receiving one ProfileRecord per run.
        self.sink = sink
        self._run_started: Optional[float] = None
        #: Total wall-clock of the bracketed run, seconds.
        self.wall_seconds: float = 0.0
        #: Engine events executed during the bracketed run.
        self.events_fired: int = 0
        #: Final simulated time of the bracketed run, ticks.
        self.sim_end_ticks: int = 0

    # ------------------------------------------------------------------
    # Engine-facing API
    # ------------------------------------------------------------------

    def record(self, callback, seconds: float) -> None:
        """Attribute ``seconds`` of wall-clock to ``callback``.

        This runs once per engine event; keep it allocation-light.
        """
        entry = self._raw.get(callback)
        if entry is None:
            self._raw[callback] = entry = [0, 0.0]
        entry[0] += 1
        entry[1] += seconds

    def begin_run(self) -> None:
        """Mark the start of the bracketed run."""
        self._run_started = time.perf_counter()

    def end_run(self, events_fired: int, sim_end_ticks: int) -> None:
        """Close the bracket; record run-level totals."""
        if self._run_started is not None:
            self.wall_seconds += time.perf_counter() - self._run_started
            self._run_started = None
        self.events_fired = events_fired
        self.sim_end_ticks = sim_end_ticks
        if self.sink is not None:
            self.sink.append(ProfileRecord(self.snapshot()))

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def events_per_second(self) -> float:
        """Engine events executed per wall-clock second."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events_fired / self.wall_seconds

    def _aggregate(self) -> Dict[str, CallbackStats]:
        """Merge raw per-callback tallies by qualname."""
        stats: Dict[str, CallbackStats] = {}
        for callback, (calls, seconds) in self._raw.items():
            name = getattr(callback, "__qualname__", None) or repr(callback)
            merged = stats.get(name)
            if merged is None:
                stats[name] = merged = CallbackStats(name)
            merged.calls += calls
            merged.seconds += seconds
        return stats

    def top_callbacks(self, limit: int = 10) -> List[CallbackStats]:
        """Costliest callbacks by total wall-clock, descending."""
        ranked = sorted(self._aggregate().values(),
                        key=lambda s: (-s.seconds, s.name))
        return ranked[:limit]

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready summary of the whole profile."""
        return {
            "wall_seconds": self.wall_seconds,
            "events_fired": self.events_fired,
            "sim_end_ticks": self.sim_end_ticks,
            "events_per_second": self.events_per_second,
            "callbacks": [
                {"name": s.name, "calls": s.calls, "seconds": s.seconds,
                 "mean_us": s.mean_us}
                for s in self.top_callbacks(limit=len(self._raw))
            ],
        }
