"""Named-metric registry: counters, gauges and histograms.

The registry replaces the ad-hoc integer counters scattered over the run
machinery with first-class named instruments, exportable as a Prometheus
text snapshot (``to_prometheus_text``) or as JSON (``to_json``).  Metrics
are created lazily through :meth:`MetricsRegistry.counter` /
:meth:`~MetricsRegistry.gauge` / :meth:`~MetricsRegistry.histogram`;
repeated calls with the same name and labels return the same instrument,
so components can share counters without coordination.

Instruments are plain Python objects with one hot method each
(``inc`` / ``set`` / ``observe``); nothing here allocates on the hot path,
which keeps the registry cheap enough to back the always-on run counters.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import TelemetryError

#: Prometheus metric-name grammar.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
#: Prometheus label-name grammar.
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency-style histogram buckets, milliseconds.
DEFAULT_MS_BUCKETS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
                      100.0, 250.0, 500.0, 1000.0)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise TelemetryError(f"invalid metric name {name!r}")
    return name


def _check_labels(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    items = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise TelemetryError(f"invalid label name {key!r}")
        items.append((key, str(labels[key])))
    return tuple(items)


def _render_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + body + "}"


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    help: str
    labels: Tuple[Tuple[str, str], ...] = ()
    value: float = 0.0

    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise TelemetryError(f"counter {self.name} cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """Instantaneous value that may move in either direction."""

    name: str
    help: str
    labels: Tuple[Tuple[str, str], ...] = ()
    value: float = 0.0

    kind = "gauge"

    def set(self, value: float) -> None:
        """Overwrite the gauge value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        self.value += amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are upper bounds in ascending order; an implicit ``+Inf``
    bucket always terminates the list.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str,
                 buckets: Sequence[float] = DEFAULT_MS_BUCKETS,
                 labels: Tuple[Tuple[str, str], ...] = ()) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise TelemetryError(
                f"histogram {name} buckets must be ascending and non-empty")
        self.name = name
        self.help = help
        self.labels = labels
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self.bucket_counts: List[int] = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1

    def cumulative_counts(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs including ``+Inf``."""
        pairs = [(bound, count)
                 for bound, count in zip(self.buckets, self.bucket_counts)]
        pairs.append((float("inf"), self.count))
        return pairs


class MetricsRegistry:
    """Collection of named instruments with text/JSON export."""

    def __init__(self, prefix: str = "") -> None:
        if prefix:
            _check_name(prefix)
        self._prefix = prefix
        #: (full name, label tuple) -> instrument, in creation order.
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], object] = {}

    # ------------------------------------------------------------------
    # Instrument factories (get-or-create)
    # ------------------------------------------------------------------

    def _full_name(self, name: str) -> str:
        full = f"{self._prefix}_{name}" if self._prefix else name
        return _check_name(full)

    def _get_or_create(self, cls, name: str, help: str,
                       labels: Dict[str, str], **kwargs):
        full = self._full_name(name)
        key = (full, _check_labels(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TelemetryError(
                    f"metric {full} already registered as {existing.kind}")
            return existing
        metric = cls(name=full, help=help, labels=key[1], **kwargs)
        self._metrics[key] = metric
        return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_MS_BUCKETS,
                  **labels: str) -> Histogram:
        """Get or create a histogram."""
        full = self._full_name(name)
        key = (full, _check_labels(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise TelemetryError(
                    f"metric {full} already registered as {existing.kind}")
            return existing
        metric = Histogram(full, help, buckets, key[1])
        self._metrics[key] = metric
        return metric

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------

    def metrics(self) -> List[object]:
        """All instruments in creation order."""
        return list(self._metrics.values())

    def get(self, name: str, **labels: str) -> Optional[object]:
        """Look up an instrument; None when never created."""
        return self._metrics.get((self._full_name(name),
                                  _check_labels(labels)))

    def value(self, name: str, **labels: str) -> Optional[float]:
        """Current value of a counter/gauge; None when absent."""
        metric = self.get(name, **labels)
        if metric is None or isinstance(metric, Histogram):
            return None
        return metric.value

    def to_prometheus_text(self) -> str:
        """Prometheus text-exposition snapshot of every instrument."""
        lines: List[str] = []
        seen_headers = set()
        for metric in self._metrics.values():
            if metric.name not in seen_headers:
                seen_headers.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                for bound, count in metric.cumulative_counts():
                    le = "+Inf" if bound == float("inf") else f"{bound:g}"
                    labels = dict(metric.labels)
                    labels["le"] = le
                    rendered = _render_labels(tuple(sorted(labels.items())))
                    lines.append(f"{metric.name}_bucket{rendered} {count}")
                base = _render_labels(metric.labels)
                lines.append(f"{metric.name}_sum{base} {metric.sum:g}")
                lines.append(f"{metric.name}_count{base} {metric.count}")
            else:
                rendered = _render_labels(metric.labels)
                lines.append(f"{metric.name}{rendered} {metric.value:g}")
        return "\n".join(lines) + "\n"

    def to_json(self) -> List[Dict[str, object]]:
        """JSON-ready snapshot: one record per instrument."""
        records: List[Dict[str, object]] = []
        for metric in self._metrics.values():
            record: Dict[str, object] = {
                "name": metric.name,
                "kind": metric.kind,
                "help": metric.help,
                "labels": dict(metric.labels),
            }
            if isinstance(metric, Histogram):
                record["count"] = metric.count
                record["sum"] = metric.sum
                record["buckets"] = [
                    {"le": bound, "count": count}
                    for bound, count in zip(metric.buckets,
                                            metric.bucket_counts)
                ]
            else:
                record["value"] = metric.value
            records.append(record)
        return records
