"""Windowed steady-state metrics over simulated time.

The end-of-run :class:`~repro.metrics.collector.MetricsCollector` answers
"how did the whole run go"; this module answers **"how is the run going
right now"** — per-window p50/p99 latency, SLO-attainment rate,
admission/reject rate, throughput and live CU occupancy, produced while
the run is in flight instead of after it drains.

A :class:`WindowedMetrics` is fed from the *same* hooks the collector
uses (arrival/admission/rejection/completion; the collector fans out to
an attached instance), divides sim-time into fixed **tumbling windows**
of ``window_ticks`` (window ``i`` covers ``[i*W, (i+1)*W)`` — an event
landing exactly on an edge opens the next window), and closes each
window into an immutable :class:`WindowStats` record the moment an event
crosses the edge.  Latency percentiles inside a window come from the
streaming estimators in :mod:`repro.metrics.percentile`: a seeded
reservoir (exact while a window holds fewer completions than the
capacity) or the O(1) P² estimator.

**Rolling windows** ride on top: with ``rolling=k`` every closed window
also carries aggregates over the trailing ``k`` windows (the DARIS-style
rolling p99 / deadline-miss view), computed from the retained reservoir
samples and counts.

Memory is O(window) for the live state and O(run / window) for the
record series (which itself can be routed to any
:class:`~repro.telemetry.sinks.TelemetrySink`).  Everything is
deterministic: integer tick arithmetic, per-window seeded reservoirs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..errors import TelemetryError
from ..metrics.percentile import P2Estimator, ReservoirEstimator, percentile
from ..units import SEC
from .sinks import ListSink

#: Latency-estimator choices per window.
ESTIMATORS = ("reservoir", "p2", "exact")

#: Default per-window reservoir capacity (completions held exactly).
DEFAULT_RESERVOIR_CAPACITY = 512


@dataclass(frozen=True)
class WindowStats:
    """One closed window's steady-state metrics (times in ticks)."""

    index: int
    start: int
    end: int
    arrivals: int = 0
    admitted: int = 0
    rejected: int = 0
    completions: int = 0
    sensitive_completions: int = 0
    deadline_met: int = 0
    deadline_missed: int = 0
    #: Latency percentiles over completions in this window; None when
    #: the window saw no completions.
    latency_p50: Optional[float] = None
    latency_p99: Optional[float] = None
    #: Whether the percentiles are exact (reservoir not yet sampling).
    percentiles_exact: bool = True
    #: Deadline-met fraction among latency-sensitive completions.
    slo_attainment: Optional[float] = None
    #: Admission verdicts this window: admitted/(admitted+rejected).
    admission_rate: Optional[float] = None
    reject_rate: Optional[float] = None
    #: Completed jobs per second of simulated time.
    throughput_jobs_per_s: float = 0.0
    #: Device-resident WGs sampled when the window closed; None without
    #: an occupancy probe.
    occupancy_wgs: Optional[int] = None
    #: True when the run ended inside this window (shorter span).
    partial: bool = False
    #: Aggregates over the trailing ``rolling`` windows; None when
    #: rolling aggregation is off.
    rolling: Optional[Dict[str, object]] = field(default=None)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form (report bundles, JSONL sinks)."""
        record: Dict[str, object] = {
            "index": self.index, "start": self.start, "end": self.end,
            "arrivals": self.arrivals, "admitted": self.admitted,
            "rejected": self.rejected, "completions": self.completions,
            "sensitive_completions": self.sensitive_completions,
            "deadline_met": self.deadline_met,
            "deadline_missed": self.deadline_missed,
            "latency_p50": self.latency_p50,
            "latency_p99": self.latency_p99,
            "percentiles_exact": self.percentiles_exact,
            "slo_attainment": self.slo_attainment,
            "admission_rate": self.admission_rate,
            "reject_rate": self.reject_rate,
            "throughput_jobs_per_s": self.throughput_jobs_per_s,
            "occupancy_wgs": self.occupancy_wgs,
            "partial": self.partial,
        }
        if self.rolling is not None:
            record["rolling"] = dict(self.rolling)
        return record


class _LiveWindow:
    """Mutable accumulator for the currently open window."""

    __slots__ = ("index", "start", "end", "arrivals", "admitted",
                 "rejected", "completions", "sensitive", "met", "missed",
                 "p50", "p99", "reservoir", "latencies")

    def __init__(self, index: int, start: int, end: int,
                 estimator: str, capacity: int) -> None:
        self.index = index
        self.start = start
        self.end = end
        self.arrivals = 0
        self.admitted = 0
        self.rejected = 0
        self.completions = 0
        self.sensitive = 0
        self.met = 0
        self.missed = 0
        self.p50 = self.p99 = self.reservoir = self.latencies = None
        if estimator == "p2":
            self.p50 = P2Estimator(50.0)
            self.p99 = P2Estimator(99.0)
        elif estimator == "reservoir":
            # Seeded by window index: deterministic, and independent
            # windows never share RNG state.
            self.reservoir = ReservoirEstimator(capacity, seed=index)
        else:
            self.latencies = []

    def observe_latency(self, latency: int) -> None:
        if self.reservoir is not None:
            self.reservoir.add(latency)
        elif self.latencies is not None:
            self.latencies.append(latency)
        else:
            self.p50.add(latency)
            self.p99.add(latency)


class WindowedMetrics:
    """Tumbling sim-time windows of steady-state metrics.

    Hooks (`on_arrival` etc.) must be called with non-decreasing
    timestamps — the discrete-event engine guarantees this.  Consumers
    registered with :meth:`add_consumer` (e.g. the
    :class:`~repro.telemetry.slo.SLOMonitor`) receive each
    :class:`WindowStats` the moment its window closes; gap windows with
    no events are emitted too, so the series has no holes.
    """

    def __init__(self, window_ticks: int, estimator: str = "reservoir",
                 reservoir_capacity: int = DEFAULT_RESERVOIR_CAPACITY,
                 rolling: int = 1, sink=None,
                 occupancy_probe: Optional[Callable[[], int]] = None
                 ) -> None:
        if window_ticks <= 0:
            raise TelemetryError("window_ticks must be positive")
        if estimator not in ESTIMATORS:
            raise TelemetryError(
                f"unknown estimator {estimator!r}; known: "
                f"{', '.join(ESTIMATORS)}")
        if rolling < 1:
            raise TelemetryError("rolling must be >= 1")
        self.window_ticks = window_ticks
        self.estimator = estimator
        self.reservoir_capacity = reservoir_capacity
        self.rolling = rolling
        #: Sink holding the closed WindowStats records.
        self.sink = sink if sink is not None else ListSink()
        #: Callable returning the device's resident-WG count, sampled
        #: at each window close (wired by GPUSystem).
        self.occupancy_probe = occupancy_probe
        self._consumers: List[Callable[[WindowStats], None]] = []
        self._live: Optional[_LiveWindow] = None
        self._finalized = False
        self.windows_closed = 0
        # Trailing-k state for rolling aggregates: (samples, counts).
        self._trail: Deque[Tuple[List[float], Dict[str, int]]] = \
            deque(maxlen=rolling)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def add_consumer(self, consumer: Callable[[WindowStats], None]) -> None:
        """Register a callback invoked with each closed WindowStats."""
        self._consumers.append(consumer)

    @property
    def records(self) -> List[WindowStats]:
        """The retained closed-window records."""
        return self.sink.items()

    # ------------------------------------------------------------------
    # Event hooks (same feed as MetricsCollector)
    # ------------------------------------------------------------------

    def on_arrival(self, now: int) -> None:
        """A job entered the system."""
        self._window_for(now).arrivals += 1

    def on_admitted(self, now: int) -> None:
        """Admission accepted a job."""
        self._window_for(now).admitted += 1

    def on_rejected(self, now: int) -> None:
        """Admission (or the late-reject sweep) refused a job."""
        self._window_for(now).rejected += 1

    def on_complete(self, now: int, latency: int, sensitive: bool,
                    met_deadline: bool) -> None:
        """A job finished; ``latency`` in ticks."""
        live = self._window_for(now)
        live.completions += 1
        live.observe_latency(latency)
        if sensitive:
            live.sensitive += 1
            if met_deadline:
                live.met += 1
            else:
                live.missed += 1

    # ------------------------------------------------------------------
    # Window machinery
    # ------------------------------------------------------------------

    def _window_for(self, now: int) -> _LiveWindow:
        live = self._live
        if live is None:
            index = now // self.window_ticks
            live = self._open(index)
        elif now >= live.end:
            while now >= live.end:
                self._close(live, partial=False)
                live = self._open(live.index + 1)
            self._live = live
        # A clock regression cannot happen in the engine; counting into
        # the open window keeps the series monotone if it ever did.
        return live

    def _open(self, index: int) -> _LiveWindow:
        start = index * self.window_ticks
        live = _LiveWindow(index, start, start + self.window_ticks,
                           self.estimator, self.reservoir_capacity)
        self._live = live
        return live

    def _close(self, live: _LiveWindow, partial: bool) -> WindowStats:
        latency_p50 = latency_p99 = None
        exact = True
        samples: List[float] = []
        if live.completions:
            if live.reservoir is not None:
                latency_p50 = live.reservoir.percentile(50.0)
                latency_p99 = live.reservoir.percentile(99.0)
                exact = live.reservoir.is_exact
                samples = live.reservoir.sample()
            elif live.latencies is not None:
                latency_p50 = percentile(live.latencies, 50.0)
                latency_p99 = percentile(live.latencies, 99.0)
                samples = [float(v) for v in live.latencies]
            else:
                latency_p50 = live.p50.value()
                latency_p99 = live.p99.value()
                exact = live.completions <= 5
        verdicts = live.admitted + live.rejected
        occupancy = (self.occupancy_probe()
                     if self.occupancy_probe is not None else None)
        counts = {"completions": live.completions,
                  "sensitive": live.sensitive, "met": live.met,
                  "missed": live.missed, "arrivals": live.arrivals,
                  "admitted": live.admitted, "rejected": live.rejected}
        self._trail.append((samples, counts))
        stats = WindowStats(
            index=live.index, start=live.start, end=live.end,
            arrivals=live.arrivals, admitted=live.admitted,
            rejected=live.rejected, completions=live.completions,
            sensitive_completions=live.sensitive,
            deadline_met=live.met, deadline_missed=live.missed,
            latency_p50=latency_p50, latency_p99=latency_p99,
            percentiles_exact=exact,
            slo_attainment=(live.met / live.sensitive
                            if live.sensitive else None),
            admission_rate=(live.admitted / verdicts if verdicts else None),
            reject_rate=(live.rejected / verdicts if verdicts else None),
            throughput_jobs_per_s=live.completions
            / (self.window_ticks / SEC),
            occupancy_wgs=occupancy,
            partial=partial,
            rolling=self._rolling_aggregate() if self.rolling > 1 else None,
        )
        self.windows_closed += 1
        self.sink.append(stats)
        for consumer in self._consumers:
            consumer(stats)
        return stats

    def _rolling_aggregate(self) -> Dict[str, object]:
        """Aggregates over the trailing ``rolling`` windows."""
        samples: List[float] = []
        totals = {"completions": 0, "sensitive": 0, "met": 0, "missed": 0,
                  "arrivals": 0, "admitted": 0, "rejected": 0}
        for window_samples, counts in self._trail:
            samples.extend(window_samples)
            for key in totals:
                totals[key] += counts[key]
        span_windows = len(self._trail)
        record: Dict[str, object] = {
            "windows": span_windows,
            "completions": totals["completions"],
            "slo_attainment": (totals["met"] / totals["sensitive"]
                               if totals["sensitive"] else None),
            "admission_rate": (
                totals["admitted"]
                / (totals["admitted"] + totals["rejected"])
                if totals["admitted"] + totals["rejected"] else None),
            "throughput_jobs_per_s": totals["completions"]
            / (span_windows * self.window_ticks / SEC),
            "latency_p50": None,
            "latency_p99": None,
        }
        if samples:
            record["latency_p50"] = percentile(samples, 50.0)
            record["latency_p99"] = percentile(samples, 99.0)
        return record

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------

    def finalize(self, end_time: Optional[int] = None) -> List[WindowStats]:
        """Close the open window (idempotent); returns retained records.

        ``end_time`` marks the final window as partial when the run
        ended before its nominal edge.
        """
        if self._finalized:
            return self.records
        self._finalized = True
        live = self._live
        if live is not None:
            partial = end_time is None or end_time < live.end
            self._close(live, partial=partial)
            self._live = None
        return self.records

    def series(self, metric: str) -> List[Tuple[int, object]]:
        """``(window_start, value)`` pairs for one WindowStats field."""
        return [(stats.start, getattr(stats, metric))
                for stats in self.records]
