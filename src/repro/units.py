"""Simulated time.

The simulator measures time in **integer nanoseconds** so that event
ordering is exact and runs are bit-for-bit deterministic.  The helpers here
convert between human units and ticks; use them instead of bare literals.
"""

from __future__ import annotations

#: One nanosecond, the base tick.
NS = 1
#: One microsecond in ticks.
US = 1_000
#: One millisecond in ticks.
MS = 1_000_000
#: One second in ticks.
SEC = 1_000_000_000


def from_us(value: float) -> int:
    """Convert microseconds to ticks, rounding to the nearest tick."""
    return round(value * US)


def from_ms(value: float) -> int:
    """Convert milliseconds to ticks, rounding to the nearest tick."""
    return round(value * MS)


def from_seconds(value: float) -> int:
    """Convert seconds to ticks, rounding to the nearest tick."""
    return round(value * SEC)


def to_us(ticks: int) -> float:
    """Convert ticks to microseconds."""
    return ticks / US


def to_ms(ticks: int) -> float:
    """Convert ticks to milliseconds."""
    return ticks / MS


def to_seconds(ticks: int) -> float:
    """Convert ticks to seconds."""
    return ticks / SEC


def format_ticks(ticks: int) -> str:
    """Render a tick count in the most readable unit.

    >>> format_ticks(2_500)
    '2.500us'
    >>> format_ticks(7_000_000)
    '7.000ms'
    """
    if ticks >= SEC:
        return f"{ticks / SEC:.3f}s"
    if ticks >= MS:
        return f"{ticks / MS:.3f}ms"
    if ticks >= US:
        return f"{ticks / US:.3f}us"
    return f"{ticks}ns"
