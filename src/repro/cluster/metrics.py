"""Fleet-level run summary: per-device ``RunMetrics`` folded together.

:class:`ClusterMetrics` mirrors the headline surface of
:class:`~repro.metrics.collector.RunMetrics` (``num_jobs``,
``jobs_meeting_deadline``, ``jobs_rejected``, ``deadline_ratio``,
``p99_latency_ticks``) so cluster and single-device results are
interchangeable at call sites, and adds the quantities that only
exist at the fleet tier: per-device SLO attainment, load imbalance
and the router's decision/rejection counters.

Per-device summaries already fold their own
:class:`~repro.metrics.collector.StreamAggregate` back into every
derived metric, so the fleet fold works identically for retired
(streaming) and fully-recorded runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..metrics.collector import RunMetrics
from ..metrics.percentile import p99 as _p99


@dataclass(frozen=True)
class ClusterMetrics:
    """Immutable summary of one fleet run."""

    #: Router registry name that produced the lane assignment.
    router: str
    #: Fleet size.
    num_devices: int
    #: Jobs routed to each device (conservation right-hand side).
    lane_sizes: Tuple[int, ...]
    #: Jobs refused at the router tier (never reached a device).
    router_rejected: int
    #: Router-rejected jobs that carried a deadline.
    router_rejected_sensitive: int
    #: Per-device run summaries; ``None`` for devices that received no
    #: jobs (an idle device runs nothing).
    per_device: Tuple[Optional[RunMetrics], ...]
    #: Per-device engine diagnostics (events fired, WGs issued,
    #: admission counters, per-device wall seconds); ``None`` when idle.
    diagnostics: Tuple[Optional[Dict[str, object]], ...]
    #: Router decision count per reason string.
    decision_reasons: Dict[str, int] = field(default_factory=dict)
    #: Wall-clock of the device-execution phase, seconds.
    wall_seconds: float = 0.0
    #: Device-execution mode: number of pool workers (1 = in-process).
    workers: int = 1

    # -- fleet deadline metrics ----------------------------------------

    def _sum(self, name: str) -> int:
        return sum(getattr(m, name) for m in self.per_device
                   if m is not None)

    @property
    def num_jobs(self) -> int:
        """Every arrival the router saw (routed + router-rejected)."""
        return self._sum("num_jobs") + self.router_rejected

    @property
    def jobs_meeting_deadline(self) -> int:
        """Fleet SLO numerator."""
        return self._sum("jobs_meeting_deadline")

    @property
    def jobs_rejected(self) -> int:
        """Router-tier plus device-tier admission rejections."""
        return self._sum("jobs_rejected") + self.router_rejected

    @property
    def num_latency_sensitive(self) -> int:
        """Arrivals that carried a deadline, fleet-wide."""
        return self._sum("num_latency_sensitive") \
            + self.router_rejected_sensitive

    @property
    def deadline_ratio(self) -> float:
        """Fleet SLO attainment: met / latency-sensitive arrivals.

        Router-rejected jobs count against the fleet — a job the
        router turned away is a miss from the client's point of view.
        """
        sensitive = self.num_latency_sensitive
        if sensitive == 0:
            return 0.0
        return self.jobs_meeting_deadline / sensitive

    @property
    def slo_attainment(self) -> float:
        """Alias of :attr:`deadline_ratio` under its fleet-tier name."""
        return self.deadline_ratio

    @property
    def per_device_attainment(self) -> List[float]:
        """Each device's own deadline ratio (0.0 for idle devices)."""
        return [0.0 if m is None else m.deadline_ratio
                for m in self.per_device]

    # -- latency --------------------------------------------------------

    def completed_latencies(self) -> List[int]:
        """All recorded per-job latencies across the fleet.

        Under retirement each device keeps only a reservoir sample;
        the concatenation is then a sample too (see
        :attr:`p99_latency_ticks`).  A method, mirroring
        :meth:`RunMetrics.completed_latencies`.
        """
        merged: List[int] = []
        for m in self.per_device:
            if m is not None:
                merged.extend(m.completed_latencies())
        return merged

    @property
    def p99_latency_ticks(self) -> Optional[float]:
        """Fleet p99 over the merged per-device latency records.

        Exact when devices recorded every outcome; under retirement
        each device contributes its reservoir sample, making this an
        estimate with the same caveat as the single-device property.
        """
        merged = self.completed_latencies()
        if not merged:
            return None
        return _p99(merged)

    @property
    def worst_device_p99(self) -> Optional[float]:
        """Largest per-device p99 — the straggler device's tail."""
        values = [m.p99_latency_ticks for m in self.per_device
                  if m is not None and m.p99_latency_ticks is not None]
        return max(values) if values else None

    # -- load balance ---------------------------------------------------

    @property
    def load_imbalance(self) -> float:
        """Max/mean jobs routed per device; 1.0 is perfectly balanced.

        0.0 for an empty fleet.  An idle device drags the mean down,
        so hot-spotting routers read clearly above 1.0.
        """
        if not self.lane_sizes or sum(self.lane_sizes) == 0:
            return 0.0
        mean = sum(self.lane_sizes) / len(self.lane_sizes)
        return max(self.lane_sizes) / mean

    @property
    def work_imbalance(self) -> float:
        """Max/mean completed WGs per device — imbalance in delivered
        work rather than job count (jobs vary widely in size)."""
        work = [0 if m is None else m.wg_completions
                for m in self.per_device]
        total = sum(work)
        if not work or total == 0:
            return 0.0
        return max(work) / (total / len(work))

    # -- rendering ------------------------------------------------------

    def describe(self) -> str:
        """One-line fleet summary for logs and the CLI."""
        return (f"{self.router}: {self.num_devices} devices, "
                f"{self.num_jobs} jobs, "
                f"SLO {self.deadline_ratio:.3f}, "
                f"imbalance {self.load_imbalance:.2f}, "
                f"router rejected {self.router_rejected}")
