"""Routing policies: which device each arriving job lands on.

A :class:`Router` sees every arrival once, in arrival order, and
returns a :class:`RouteDecision` — a device index or
:data:`REJECTED` for router-tier admission control.  Routers never
see device internals: they maintain their *own* model of each
device's load from the jobs they routed, exactly the position a real
front-end router is in.  Two load models are kept per device:

* **queue depth** — how many routed jobs are predicted to still be
  queued or running (a FIFO of predicted completion times);
* **backlog ticks** — the Little's-Law work estimate: outstanding
  routed work, in ticks of *device* time, not yet drained (the
  router-tier analogue of Algorithm 1's ``totRemTime``).

The per-job charge is :meth:`~repro.sim.job.Job.total_work` (SIMD-lane
tick demand) divided by the device's steady-state work rate of
``num_cus * 4`` concurrent full-rate workgroup lanes — a processor-
sharing device retires many small jobs in parallel, so charging each
its full dedicated-lane ``isolated_time`` would overestimate queuing
delay by an order of magnitude and make the laxity router reject
traffic a single device demonstrably sustains.
Registered policies (``ROUTERS``):

``pass-through``
    Single-device identity: every job to device 0 (requires N=1).
``round-robin``
    Arrival ``i`` to device ``i mod N``.
``least-loaded``
    The device with the smallest predicted queue depth.
``power-of-two``
    Two devices sampled uniformly (seeded RNG), the less-loaded one
    wins — the classic load-balancing result at O(1) state probes.
``laxity``
    Deadline-aware: pick the device whose backlog keeps the job's
    laxity ``deadline - (backlog + service)`` largest; if no device
    keeps laxity positive the router rejects the job outright
    (router-tier admission, the fleet analogue of Algorithm 1).

Routing is deterministic given (policy, seed, job sequence): replaying
the same stream through a fresh router reproduces every decision,
which is what lets per-device lanes be re-derived inside pool workers
without shipping an assignment table.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

import numpy as np

from ..config import GPUConfig
from ..errors import ConfigError, SchedulingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.job import Job

#: Sentinel device index: the router refused the job (router-tier
#: admission).  Rejected jobs never reach a device.
REJECTED = -1

#: Spawn keys of the documented seeding scheme (see
#: :func:`derive_device_seed`).
_ROUTER_SPAWN_KEY = 0
_DEVICE_SPAWN_KEY = 1

#: Workgroups one CU runs at full rate (KernelDescriptor's
#: compute-bound default); with ``num_cus`` CUs the device drains
#: roughly ``num_cus * 4`` work-ticks of WG demand per tick.
_FULL_RATE_WGS_PER_CU = 4


def derive_device_seed(seed: int, device_index: int) -> int:
    """Device ``device_index``'s RNG seed derived from the cell seed.

    The spawn scheme is ``numpy.random.SeedSequence(entropy=seed,
    spawn_key=(1, device_index))`` — each device's seed depends only on
    the cell seed and its own index, never on the fleet size or the
    order devices were built in, so adding a device to a fleet leaves
    every existing device's stream untouched.
    """
    if device_index < 0:
        raise ConfigError(f"device index must be >= 0, got {device_index}")
    seq = np.random.SeedSequence(
        entropy=seed, spawn_key=(_DEVICE_SPAWN_KEY, device_index))
    return int(seq.generate_state(1, dtype=np.uint64)[0])


def derive_router_seed(seed: int) -> int:
    """The router's own RNG seed (spawn key ``(0,)`` of the cell seed)."""
    seq = np.random.SeedSequence(entropy=seed, spawn_key=(_ROUTER_SPAWN_KEY,))
    return int(seq.generate_state(1, dtype=np.uint64)[0])


@dataclass(frozen=True)
class RouteDecision:
    """One routing verdict: where an arrival went and why."""

    #: The routed job.
    job_id: int
    #: Chosen device index, or :data:`REJECTED`.
    device: int
    #: False only for router-tier rejections.
    accepted: bool
    #: Policy-specific cause ("round_robin", "least_queue", ...).
    reason: str
    #: Chosen device's backlog estimate (ticks) before this job landed.
    backlog: int
    #: Router-estimated laxity of the job on the chosen device, or
    #: None when the policy does not reason about deadlines.
    laxity: Optional[int] = None


class Router:
    """Base class: per-device load model + the decision bookkeeping."""

    #: Registry name; subclasses override.
    name = "base"

    def __init__(self, num_devices: int, gpu: Optional[GPUConfig] = None,
                 seed: int = 1) -> None:
        if num_devices < 1:
            raise ConfigError(
                f"router needs at least one device, got {num_devices}")
        self.num_devices = num_devices
        self.gpu = gpu if gpu is not None else GPUConfig()
        self.seed = seed
        # Steady-state drain rate: work-ticks of WG demand one device
        # retires per tick when saturated.
        self._work_rate = self.gpu.num_cus * _FULL_RATE_WGS_PER_CU
        #: Arrivals seen (routed + rejected): the conservation left side.
        self.routed = 0
        #: Router-tier rejections.
        self.rejected = 0
        #: Jobs routed per device: the conservation right side.
        self.lane_counts: List[int] = [0] * num_devices
        # Virtual time through which each device is predicted busy.
        self._horizon: List[int] = [0] * num_devices
        # Predicted completion times of in-flight routed jobs (FIFO).
        self._queues: List[deque] = [deque() for _ in range(num_devices)]

    # ------------------------------------------------------------------
    # Load model
    # ------------------------------------------------------------------

    def service_estimate(self, job: "Job") -> int:
        """Device-time this job occupies at steady state, ticks.

        ``total_work`` spread over the device's parallel work rate —
        the share of device throughput the job consumes, not the
        latency it observes (that lower bound is ``isolated_time``).
        """
        return max(1, -(-job.total_work // self._work_rate))

    def backlog(self, device: int, now: int) -> int:
        """Outstanding predicted work on ``device`` at ``now``, ticks."""
        return max(0, self._horizon[device] - now)

    def queue_depth(self, device: int, now: int) -> int:
        """Routed jobs predicted still in flight on ``device`` at ``now``."""
        queue = self._queues[device]
        while queue and queue[0] <= now:
            queue.popleft()
        return len(queue)

    def _commit(self, device: int, job: "Job", now: int) -> None:
        done = max(now, self._horizon[device]) + self.service_estimate(job)
        self._horizon[device] = done
        self._queues[device].append(done)
        self.lane_counts[device] += 1

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def route(self, job: "Job", now: int) -> RouteDecision:
        """Route one arrival; every arrival passes through here once."""
        self.routed += 1
        device, reason, laxity = self._choose(job, now)
        if device == REJECTED:
            self.rejected += 1
            return RouteDecision(job_id=job.job_id, device=REJECTED,
                                 accepted=False, reason=reason,
                                 backlog=min(self.backlog(d, now)
                                             for d in range(self.num_devices)),
                                 laxity=laxity)
        backlog = self.backlog(device, now)
        self._commit(device, job, now)
        return RouteDecision(job_id=job.job_id, device=device, accepted=True,
                             reason=reason, backlog=backlog, laxity=laxity)

    def _choose(self, job: "Job", now: int):
        """Return ``(device | REJECTED, reason, laxity_or_None)``."""
        raise NotImplementedError  # pragma: no cover - abstract


class PassThroughRouter(Router):
    """Single-device identity: the N=1 cluster must equal a bare GPU."""

    name = "pass-through"

    def __init__(self, num_devices: int, gpu: Optional[GPUConfig] = None,
                 seed: int = 1) -> None:
        if num_devices != 1:
            raise ConfigError(
                f"pass-through router is single-device only, "
                f"got {num_devices} devices")
        super().__init__(num_devices, gpu, seed)

    def _choose(self, job: "Job", now: int):
        return 0, "pass_through", None


class RoundRobinRouter(Router):
    """Arrival ``i`` to device ``i mod N`` — the zero-information baseline."""

    name = "round-robin"

    def __init__(self, num_devices: int, gpu: Optional[GPUConfig] = None,
                 seed: int = 1) -> None:
        super().__init__(num_devices, gpu, seed)
        self._next = 0

    def _choose(self, job: "Job", now: int):
        device = self._next
        self._next = (device + 1) % self.num_devices
        return device, "round_robin", None


class LeastLoadedRouter(Router):
    """The device with the smallest predicted queue depth wins."""

    name = "least-loaded"

    def _choose(self, job: "Job", now: int):
        device = min(range(self.num_devices),
                     key=lambda d: (self.queue_depth(d, now), d))
        return device, "least_queue", None


class PowerOfTwoRouter(Router):
    """Sample two devices, keep the shorter queue (O(1) probes)."""

    name = "power-of-two"

    def __init__(self, num_devices: int, gpu: Optional[GPUConfig] = None,
                 seed: int = 1) -> None:
        super().__init__(num_devices, gpu, seed)
        self._rng = np.random.default_rng(derive_router_seed(seed))

    def _choose(self, job: "Job", now: int):
        if self.num_devices == 1:
            return 0, "two_choices", None
        a, b = self._rng.choice(self.num_devices, size=2, replace=False)
        a, b = int(a), int(b)
        if (self.queue_depth(b, now), b) < (self.queue_depth(a, now), a):
            a = b
        return a, "two_choices", None


class LaxityAwareRouter(Router):
    """Deadline-aware routing with router-tier admission.

    The job's laxity on device ``d`` is estimated as ``deadline -
    (backlog_d + service)`` — Little's-Law queuing delay plus its own
    service demand against its relative deadline, the router-tier
    mirror of Algorithm 1's ``totRemTime + holdTime + durTime <
    deadline`` test.  The job goes to the device maximising that
    laxity; when every device would drive it negative the router
    rejects instead of knowingly burning fleet capacity on a miss.
    Latency-insensitive jobs (no deadline) route to the smallest
    backlog and are never rejected, matching Section 5.2's contract.
    """

    name = "laxity"

    def _choose(self, job: "Job", now: int):
        best = min(range(self.num_devices),
                   key=lambda d: (self.backlog(d, now), d))
        if job.deadline is None:
            return best, "no_deadline", None
        laxity = job.deadline - (self.backlog(best, now)
                                 + job.isolated_time(self.gpu))
        if laxity < 0:
            return REJECTED, "router_reject", laxity
        return best, "laxity_positive", laxity


#: Registry: router name -> class.  ``make_router`` is the factory.
ROUTERS: Dict[str, Callable[..., Router]] = {
    PassThroughRouter.name: PassThroughRouter,
    RoundRobinRouter.name: RoundRobinRouter,
    LeastLoadedRouter.name: LeastLoadedRouter,
    PowerOfTwoRouter.name: PowerOfTwoRouter,
    LaxityAwareRouter.name: LaxityAwareRouter,
}


def router_names() -> List[str]:
    """Registered router names, sorted."""
    return sorted(ROUTERS)


def make_router(name: str, num_devices: int,
                gpu: Optional[GPUConfig] = None, seed: int = 1) -> Router:
    """Build a fresh, reset router by registry name."""
    factory = ROUTERS.get(name)
    if factory is None:
        raise SchedulingError(
            f"unknown router {name!r}; known: {', '.join(router_names())}")
    return factory(num_devices, gpu, seed)
