"""Cluster tier: a deadline-aware router over a fleet of device models.

``ClusterSystem`` puts N independent :class:`~repro.sim.device
.GPUSystem` models (each its own CP, dispatcher and scheduler) behind
a pluggable routing policy and implements the same
:class:`~repro.sim.protocol.Device` surface as a single GPU, so
single-device and fleet runs are interchangeable at call sites::

    from repro.cluster import ClusterSystem
    from repro.workloads import sustained_source

    fleet = ClusterSystem("LAX", num_devices=4, router="laxity")
    fleet.submit_stream(sustained_source(2.4e6), max_jobs=100_000)
    metrics = fleet.run()
    print(metrics.describe())

See :mod:`repro.cluster.routers` for the registered policies and
``docs/cluster.md`` for the full tour.
"""

from .metrics import ClusterMetrics
from .routers import (REJECTED, ROUTERS, LaxityAwareRouter,
                      LeastLoadedRouter, PassThroughRouter,
                      PowerOfTwoRouter, RoundRobinRouter, RouteDecision,
                      Router, derive_device_seed, derive_router_seed,
                      make_router, router_names)
from .system import ClusterSystem

__all__ = [
    "REJECTED",
    "ROUTERS",
    "ClusterMetrics",
    "ClusterSystem",
    "LaxityAwareRouter",
    "LeastLoadedRouter",
    "PassThroughRouter",
    "PowerOfTwoRouter",
    "RoundRobinRouter",
    "RouteDecision",
    "Router",
    "derive_device_seed",
    "derive_router_seed",
    "make_router",
    "router_names",
]
