"""The cluster tier: N independent device models behind one router.

:class:`ClusterSystem` implements the :class:`~repro.sim.protocol
.Device` protocol over a fleet of :class:`~repro.sim.device.GPUSystem`
instances — each its own command processor, dispatcher and scheduler,
completely unmodified.  A registry :class:`~repro.cluster.routers
.Router` assigns every arrival to exactly one device lane (or rejects
it at the router tier); each lane then runs as an ordinary
single-device simulation and the per-device summaries fold into one
:class:`~repro.cluster.metrics.ClusterMetrics`.

Two workload paths, mirroring the single-device API:

* ``submit_workload(jobs)`` routes the finite list up front and holds
  the per-device lanes in memory;
* ``submit_stream(source, max_jobs=)`` with a replayable
  :class:`~repro.workloads.streaming.ArrivalSource` keeps O(live)
  memory: a first counting pass routes the stream (emitting router
  telemetry), then each device replays the deterministic source
  through a fresh router and keeps only its own lane.  Plain finite
  iterables are accepted too, at the cost of materializing them.

Devices are fully independent once lanes are fixed, so ``workers > 1``
fans the per-device simulations out over a ``ProcessPoolExecutor`` —
the same worker-process pattern as the PR-3 sweep runner — and is
bit-identical to serial execution: a worker either re-receives the
pickled lane (finite path) or re-derives it by deterministic router
replay (streamed path).

Determinism: per-device seeds come from the documented spawn scheme
(:func:`~repro.cluster.routers.derive_device_seed`), the router's own
RNG from ``derive_router_seed``; re-running the same spec is
bit-identical, and device ``i``'s seed never depends on fleet size.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from itertools import islice
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, TYPE_CHECKING

from ..config import DEFAULT_CONFIG, SimConfig
from ..errors import ConfigError, SimulationError
from ..schedulers.registry import make_scheduler
from ..sim import modes as _modes
from ..sim.device import GPUSystem
from ..sim.job import Job
from .metrics import ClusterMetrics
from .routers import REJECTED, Router, derive_device_seed, make_router

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..telemetry.hub import TelemetryHub


class ClusterSystem:
    """A routed fleet of independent simulated GPUs (a ``Device``).

    ``telemetry`` receives the *router's* decision stream
    (``router_decision`` events through the schema-validated hub);
    per-device telemetry attaches via ``device_telemetry`` (one hub
    per device, serial execution only — hubs do not cross process
    boundaries).  ``validate=True`` attaches a fresh
    :class:`~repro.validation.invariants.InvariantChecker` to every
    device (pool-safe, same contract as ``RunOptions.validate``) and
    the router-conservation audit always runs.
    """

    def __init__(self, scheduler: str = "LAX",
                 config: SimConfig = DEFAULT_CONFIG,
                 num_devices: int = 1, router: str = "round-robin",
                 seed: int = 1, scheduler_args: Sequence = (),
                 telemetry: "TelemetryHub" = None,
                 retire: Optional[bool] = None, validate: bool = False,
                 workers: int = 1,
                 device_telemetry: Optional[Sequence] = None) -> None:
        if num_devices < 1:
            raise ConfigError(
                f"cluster needs at least one device, got {num_devices}")
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if device_telemetry is not None:
            if workers > 1:
                raise ConfigError(
                    "device_telemetry requires serial execution "
                    "(workers=1); telemetry hubs do not cross processes")
            if len(device_telemetry) != num_devices:
                raise ConfigError(
                    f"device_telemetry needs one entry per device "
                    f"({num_devices}), got {len(device_telemetry)}")
        self.scheduler = scheduler
        self.config = config
        self.num_devices = num_devices
        self.router_name = router
        self.seed = seed
        self.scheduler_args = tuple(scheduler_args)
        self.telemetry = telemetry
        # Resolve the ambient retirement default now so pool workers
        # (fresh interpreters) inherit the caller's effective mode.
        self.retire = _modes.RETIRE_JOBS if retire is None else bool(retire)
        self.validate = validate
        self.workers = workers
        self.device_telemetry = device_telemetry
        #: Documented per-device seed spawn (stable under fleet growth).
        self.device_seeds = tuple(derive_device_seed(seed, d)
                                  for d in range(num_devices))
        # Build eagerly so bad router/scheduler names fail at
        # construction; finite submissions route through this instance.
        self.router: Router = make_router(router, num_devices,
                                          config.gpu, seed)
        make_scheduler(scheduler, **dict(self.scheduler_args))
        #: Per-device systems, populated by serial execution only.
        self.devices: List[Optional[GPUSystem]] = [None] * num_devices
        self._submitted = False
        self._mode: Optional[str] = None
        self._lanes: Optional[List[List[Job]]] = None
        self._source = None
        self._max_jobs: Optional[int] = None
        self._lookahead = 1
        self._decision_reasons: Dict[str, int] = {}
        self._rejected_sensitive = 0

    # ------------------------------------------------------------------
    # Submission (the Device protocol surface)
    # ------------------------------------------------------------------

    def submit_workload(self, jobs: Iterable[Job]) -> None:
        """Route a finite job list into per-device lanes; once."""
        self._mark_submitted()
        job_list = sorted(jobs, key=lambda j: (j.arrival, j.job_id))
        if not job_list:
            raise SimulationError("empty workload")
        self._mode = "finite"
        self._lanes = [[] for _ in range(self.num_devices)]
        for job in job_list:
            decision = self.router.route(job, job.arrival)
            self._record_decision(job, decision)
            if decision.device != REJECTED:
                self._lanes[decision.device].append(job)

    def submit_stream(self, jobs, max_jobs: Optional[int] = None,
                      lookahead: int = 1) -> None:
        """Route a lazy arrival stream; once.

        A replayable :class:`~repro.workloads.streaming.ArrivalSource`
        (``max_jobs`` required) keeps O(live) memory via deterministic
        router replay; any other iterable is materialized up front and
        routed as a finite list.
        """
        self._mark_submitted()
        if lookahead < 1:
            raise SimulationError(
                f"stream lookahead must be >= 1, got {lookahead}")
        if hasattr(jobs, "jobs") and callable(jobs.jobs):
            if max_jobs is None:
                raise SimulationError(
                    "cluster streaming from an ArrivalSource needs "
                    "max_jobs: the stream is replayed per device and "
                    "must be bounded")
            if max_jobs < 1:
                raise SimulationError(
                    f"stream max_jobs must be >= 1, got {max_jobs}")
            self._mode = "stream"
            self._source = jobs
            self._max_jobs = max_jobs
            self._lookahead = lookahead
        else:
            self._submitted = False  # re-entering via the finite path
            stream = iter(jobs)
            if max_jobs is not None:
                stream = islice(stream, max_jobs)
            self.submit_workload(list(stream))
            self._lookahead = lookahead

    def _mark_submitted(self) -> None:
        if self._submitted:
            raise SimulationError("workload already submitted")
        self._submitted = True

    # ------------------------------------------------------------------
    # Routing bookkeeping
    # ------------------------------------------------------------------

    def _record_decision(self, job: Job, decision) -> None:
        self._decision_reasons[decision.reason] = \
            self._decision_reasons.get(decision.reason, 0) + 1
        if decision.device == REJECTED and job.deadline is not None:
            self._rejected_sensitive += 1
        hub = self.telemetry
        if hub is not None and hub.decisions is not None:
            fields: Dict[str, object] = {
                "job_id": decision.job_id,
                "device": decision.device,
                "accepted": decision.accepted,
                "reason": decision.reason,
                "backlog": decision.backlog,
            }
            if decision.laxity is not None:
                fields["laxity"] = decision.laxity
            hub.decisions.emit(job.arrival, "router_decision",
                               self.router_name, **fields)

    def _replay_jobs(self) -> Iterable[Job]:
        return islice(self._source.jobs(), self._max_jobs)

    def _routing_pass(self) -> None:
        """Pass 1 of a streamed run: route and count, keep no jobs."""
        router = self.router
        for job in self._replay_jobs():
            self._record_decision(job, router.route(job, job.arrival))
        if router.routed == 0:
            raise SimulationError("empty workload")

    def _lane_stream(self, index: int) -> Iterable[Job]:
        """Device ``index``'s lane, re-derived by router replay.

        A fresh router over the replayed source makes the identical
        decisions (deterministic policy + seeded RNG), so each device
        — possibly in its own worker process — filters the shared
        stream down to its own lane without an assignment table.
        """
        router = make_router(self.router_name, self.num_devices,
                             self.config.gpu, self.seed)
        for job in self._replay_jobs():
            if router.route(job, job.arrival).device == index:
                yield job

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self) -> ClusterMetrics:
        """Run every device lane to completion; fold the fleet summary.

        Serial when ``workers == 1`` (devices stay inspectable via
        :attr:`devices`); otherwise per-device simulations fan out over
        a process pool, bit-identical to serial execution.
        """
        if not self._submitted:
            raise SimulationError("no workload submitted")
        if self._mode == "stream":
            self._routing_pass()
        lane_sizes = tuple(self.router.lane_counts)
        live = [d for d in range(self.num_devices) if lane_sizes[d] > 0]
        per_device: List[Optional[object]] = [None] * self.num_devices
        diagnostics: List[Optional[Dict[str, object]]] = \
            [None] * self.num_devices
        started = perf_counter()
        if self.workers > 1 and len(live) > 1:
            payloads = [self._worker_payload(d) for d in live]
            with ProcessPoolExecutor(
                    max_workers=min(self.workers, len(live))) as pool:
                for index, metrics, diag in pool.map(_device_worker,
                                                     payloads):
                    per_device[index] = metrics
                    diagnostics[index] = diag
        else:
            for d in live:
                metrics, diag = self._run_device(d)
                per_device[d] = metrics
                diagnostics[d] = diag
        wall = perf_counter() - started
        fleet = ClusterMetrics(
            router=self.router_name, num_devices=self.num_devices,
            lane_sizes=lane_sizes, router_rejected=self.router.rejected,
            router_rejected_sensitive=self._rejected_sensitive,
            per_device=tuple(per_device), diagnostics=tuple(diagnostics),
            decision_reasons=dict(self._decision_reasons),
            wall_seconds=wall, workers=self.workers)
        from ..validation.router import audit_routing
        audit_routing(self.router, fleet)
        if self.telemetry is not None:
            self.telemetry.flush()
        return fleet

    def _build_device(self, index: int,
                      telemetry=None) -> GPUSystem:
        policy = make_scheduler(self.scheduler, **dict(self.scheduler_args))
        validator = None
        if self.validate:
            from ..validation.invariants import InvariantChecker
            validator = InvariantChecker()
        return GPUSystem(policy, self.config, telemetry=telemetry,
                         validator=validator, retire=self.retire)

    def _run_device(self, index: int):
        hub = None
        if self.device_telemetry is not None:
            hub = self.device_telemetry[index]
        system = self._build_device(index, telemetry=hub)
        self.devices[index] = system
        if self._mode == "finite":
            system.submit_workload(self._lanes[index])
        else:
            system.submit_stream(self._lane_stream(index),
                                 lookahead=self._lookahead)
        started = perf_counter()
        metrics = system.run()
        return metrics, _device_diagnostics(system,
                                            perf_counter() - started)

    def _worker_payload(self, index: int) -> Dict[str, object]:
        if self._mode == "finite":
            workload = ("jobs", self._lanes[index])
        else:
            workload = ("stream", self._source, self._max_jobs,
                        self.router_name, self.seed, self.num_devices)
        return {
            "index": index,
            "scheduler": self.scheduler,
            "scheduler_args": self.scheduler_args,
            "config": self.config,
            "retire": self.retire,
            "validate": self.validate,
            "lookahead": self._lookahead,
            "modes": _modes.snapshot(),
            "workload": workload,
        }


def _device_diagnostics(system: GPUSystem,
                        wall_seconds: float) -> Dict[str, object]:
    """The engine-state signature the identity tests compare."""
    admission = getattr(system.policy, "admission", None)
    return {
        "events_fired": system.sim.events_fired,
        "now": system.sim.now,
        "wgs_issued": system.dispatcher.wgs_issued,
        "wgs_preempted": system.dispatcher.wgs_preempted,
        "commands_sent": system.host.commands_sent,
        "admission": (admission.accepted, admission.rejected)
        if admission is not None else None,
        "wall_seconds": wall_seconds,
    }


def _device_worker(payload: Dict[str, object]):
    """Run one device lane in a pool worker; module-level, picklable.

    Mirrors the PR-3 ``harness.runner._pool_worker`` pattern: rebuild
    everything from the pickled payload, return plain picklable
    results.  The caller's complete mode snapshot (engine, vectorized,
    retirement) is re-applied because a fresh interpreter starts from
    the defaults.
    """
    index = payload["index"]
    _modes.apply(payload["modes"])
    policy = make_scheduler(payload["scheduler"],
                            **dict(payload["scheduler_args"]))
    validator = None
    if payload["validate"]:
        from ..validation.invariants import InvariantChecker
        validator = InvariantChecker()
    system = GPUSystem(policy, payload["config"], validator=validator,
                       retire=payload["retire"])
    workload = payload["workload"]
    if workload[0] == "jobs":
        system.submit_workload(workload[1])
    else:
        _, source, max_jobs, router_name, seed, num_devices = workload
        config = payload["config"]
        router = make_router(router_name, num_devices, config.gpu, seed)
        lane = (job for job in islice(source.jobs(), max_jobs)
                if router.route(job, job.arrival).device == index)
        system.submit_stream(lane, lookahead=payload["lookahead"])
    started = perf_counter()
    metrics = system.run()
    return index, metrics, _device_diagnostics(system,
                                               perf_counter() - started)
