"""Validation subsystem: invariants, analytic oracles, conformance.

The layers, each usable alone:

* :mod:`repro.validation.invariants` — the opt-in runtime
  :class:`InvariantChecker` the sim hot path calls into per event;
* :mod:`repro.validation.oracles` — closed-form latency / utilization /
  conservation results a finished run must reproduce;
* :mod:`repro.validation.conformance` — the scenario battery every
  registered scheduler must pass, plus per-policy contracts;
* :mod:`repro.validation.router` — the cluster tier's conservation
  audit: every arrival routed to exactly one device lane (or rejected
  at the router) and observed by exactly that device;
* :mod:`repro.validation.equivalence` — structured A/B equivalence
  assertions for the differential benchmarks (bit-identity by default,
  documented tolerance otherwise, JSON-ready records either way).

``lax-sim --validate`` attaches the checker and runs the oracle sweep;
``tests/test_conformance.py`` drives the battery in CI.
"""

from .equivalence import (EquivalenceError, EquivalenceLog,
                          EquivalenceRecord, assert_equivalent)
from .invariants import FLOAT_TOLERANCE, InvariantChecker, InvariantViolation
from .oracles import (LatencyBand, UtilizationAudit, WorkLedger, audit_run,
                      erlang_c, fits_fully_resident, mdc_mean_wait,
                      mmc_mean_wait, single_job_latency_band,
                      utilization_audit, work_ledger)
from .conformance import (POLICY_CONTRACTS, SCENARIOS, ScenarioOutcome,
                          check_postconditions, run_conformance,
                          run_policy_contracts, run_scenario)
from .router import audit_routing

__all__ = [
    "EquivalenceError",
    "EquivalenceLog",
    "EquivalenceRecord",
    "assert_equivalent",
    "FLOAT_TOLERANCE",
    "InvariantChecker",
    "InvariantViolation",
    "LatencyBand",
    "UtilizationAudit",
    "WorkLedger",
    "audit_routing",
    "audit_run",
    "erlang_c",
    "fits_fully_resident",
    "mdc_mean_wait",
    "mmc_mean_wait",
    "single_job_latency_band",
    "utilization_audit",
    "work_ledger",
    "POLICY_CONTRACTS",
    "SCENARIOS",
    "ScenarioOutcome",
    "check_postconditions",
    "run_conformance",
    "run_policy_contracts",
    "run_scenario",
]
