"""Router-tier conservation: every arrival routed exactly once.

The cluster's structural invariant, checked after every fleet run
(cheap — pure counter arithmetic, no per-job state):

* every arrival the router saw was either assigned to exactly one
  device lane or rejected at the router tier — no duplication, no
  loss: ``sum(lane_sizes) + rejected == arrivals``;
* every device observed exactly its lane: the per-device
  ``RunMetrics.num_jobs`` equals the jobs routed to it.  Under the
  streamed path this is the replay guard — if a worker's router
  replay diverged from the counting pass, the lane the device
  actually ran would not match the router's ledger.

Violations raise :class:`~repro.validation.invariants
.InvariantViolation` with the full ledger in ``context``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .invariants import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cluster.metrics import ClusterMetrics
    from ..cluster.routers import Router


def audit_routing(router: "Router", metrics: "ClusterMetrics") -> None:
    """Raise unless the fleet run conserved every routed arrival."""
    lanes = sum(metrics.lane_sizes)
    if lanes + metrics.router_rejected != router.routed:
        raise InvariantViolation(
            "router_conservation",
            f"{router.routed} arrivals but {lanes} laned + "
            f"{metrics.router_rejected} rejected",
            time=0, context=_ledger(router, metrics))
    if tuple(router.lane_counts) != tuple(metrics.lane_sizes):
        raise InvariantViolation(
            "router_conservation",
            "router lane ledger disagrees with the fleet summary",
            time=0, context=_ledger(router, metrics))
    for index, device_metrics in enumerate(metrics.per_device):
        observed = 0 if device_metrics is None else device_metrics.num_jobs
        if observed != metrics.lane_sizes[index]:
            raise InvariantViolation(
                "router_conservation",
                f"device {index} observed {observed} arrivals but the "
                f"router laned {metrics.lane_sizes[index]} "
                "(streamed replay diverged?)",
                time=0, context=_ledger(router, metrics))


def _ledger(router: "Router", metrics: "ClusterMetrics"):
    return {
        "router": metrics.router,
        "arrivals": router.routed,
        "lane_sizes": list(metrics.lane_sizes),
        "router_rejected": metrics.router_rejected,
        "device_observed": [None if m is None else m.num_jobs
                            for m in metrics.per_device],
    }
