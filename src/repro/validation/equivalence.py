"""Structured equivalence assertions for the differential benchmarks.

The mode-flag benchmarks (``bench_engine_hotpath``, ``bench_scheduler_tick``,
``bench_vectorized_core``) A/B two engine configurations and claim the
results match.  Most of those claims are *bit-identity* (integer
bookkeeping, order-preserved float accumulation); where a fast path
legitimately reorders float math, the claim downgrades to a documented
tolerance — and that downgrade must be recorded, never silent.

:func:`assert_equivalent` is the single checkpoint both kinds go
through: it compares two values (scalars, sequences, mappings — nested),
raises :class:`EquivalenceError` on mismatch beyond ``rel_tol``, and
returns an :class:`EquivalenceRecord` describing what was compared and
how close it was.  Benchmarks serialise the records into their JSON
artifacts (``equivalence`` key), so a reader can tell exactly which
comparisons were exact and which leaned on a tolerance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, List, Optional


class EquivalenceError(AssertionError):
    """Two supposedly-equivalent results diverged beyond tolerance."""

    def __init__(self, context: str, path: str, a: Any, b: Any,
                 rel_tol: float) -> None:
        self.context = context
        self.path = path
        self.a = a
        self.b = b
        self.rel_tol = rel_tol
        where = f"{context}:{path}" if path else context
        super().__init__(
            f"equivalence violated at {where}: {a!r} != {b!r} "
            f"(rel_tol={rel_tol:g})")


@dataclass
class EquivalenceRecord:
    """One :func:`assert_equivalent` outcome, JSON-ready via ``as_dict``.

    ``exact`` is True when every leaf compared equal with ``==`` (no
    tolerance consumed); ``max_rel_error`` is the largest relative float
    deviation observed (0.0 when exact), so a record with a non-zero
    value documents precisely how much of the declared tolerance the
    fast path actually used.
    """

    context: str
    rel_tol: float
    compared: int = 0
    exact: bool = True
    max_rel_error: float = 0.0
    worst_path: Optional[str] = None

    def as_dict(self) -> dict:
        return {
            "context": self.context,
            "rel_tol": self.rel_tol,
            "compared": self.compared,
            "exact": self.exact,
            "max_rel_error": self.max_rel_error,
            "worst_path": self.worst_path,
        }


def _walk(a: Any, b: Any, path: str, record: EquivalenceRecord,
          rel_tol: float) -> None:
    if isinstance(a, dict) and isinstance(b, dict):
        if a.keys() != b.keys():
            raise EquivalenceError(record.context, path or "<keys>",
                                   sorted(map(str, a.keys())),
                                   sorted(map(str, b.keys())), rel_tol)
        for key in a:
            _walk(a[key], b[key], f"{path}.{key}" if path else str(key),
                  record, rel_tol)
        return
    if (isinstance(a, (list, tuple)) and isinstance(b, (list, tuple))):
        if len(a) != len(b):
            raise EquivalenceError(record.context, path or "<len>",
                                   len(a), len(b), rel_tol)
        for index, (left, right) in enumerate(zip(a, b)):
            _walk(left, right, f"{path}[{index}]", record, rel_tol)
        return
    record.compared += 1
    if isinstance(a, float) or isinstance(b, float):
        x, y = float(a), float(b)
        if x == y or (math.isnan(x) and math.isnan(y)):
            return
        record.exact = False
        scale = max(abs(x), abs(y))
        rel = abs(x - y) / scale if scale > 0.0 else math.inf
        if rel > record.max_rel_error:
            record.max_rel_error = rel
            record.worst_path = path or None
        if rel > rel_tol:
            raise EquivalenceError(record.context, path, a, b, rel_tol)
        return
    if a != b:
        raise EquivalenceError(record.context, path, a, b, rel_tol)


def assert_equivalent(a: Any, b: Any, rel_tol: float = 0.0,
                      context: str = "") -> EquivalenceRecord:
    """Assert ``a`` and ``b`` are equivalent; return the structured record.

    ``rel_tol=0.0`` (the default) demands bit-identity: every leaf must
    compare equal.  A positive ``rel_tol`` permits float leaves to differ
    by at most that relative error — integer, string and structural
    differences always raise.  Raises :class:`EquivalenceError` (an
    ``AssertionError``) on violation; otherwise the returned
    :class:`EquivalenceRecord` says whether the comparison was exact and
    how much tolerance was consumed, ready for a bench JSON's
    ``equivalence`` list.
    """
    record = EquivalenceRecord(context=context, rel_tol=rel_tol)
    _walk(a, b, "", record, rel_tol)
    return record


@dataclass
class EquivalenceLog:
    """Accumulator benchmarks thread through their comparison points."""

    records: List[EquivalenceRecord] = field(default_factory=list)

    def check(self, a: Any, b: Any, rel_tol: float = 0.0,
              context: str = "") -> EquivalenceRecord:
        record = assert_equivalent(a, b, rel_tol=rel_tol, context=context)
        self.records.append(record)
        return record

    def as_json(self) -> List[dict]:
        return [record.as_dict() for record in self.records]

    @property
    def all_exact(self) -> bool:
        return all(record.exact for record in self.records)
