"""Analytic oracles: closed-form results simulated runs must reproduce.

Three families, in increasing generality:

* **Single-job latency** — a job alone on an idle device has a closed-form
  response time: one stream inspection, one CP parse per kernel
  activation, and each kernel's processor-sharing isolated time
  (:meth:`repro.sim.kernel.KernelDescriptor.isolated_time`).  The
  simulator must land inside a band whose width is only integer-tick
  rounding.
* **Utilization bounds** — the device cannot execute more lane-time than
  the workload offered nor more than its lanes could supply
  (``0 <= utilization <= min(1, offered load)``), and an M/D/c-style
  model (Erlang-C with the deterministic-service halving) bounds queuing
  delay for Poisson arrivals.
* **Conservation of work** — integrated processor-sharing progress across
  all CUs equals the lane-time of completed WGs, up to one tick of timer
  rounding per completed WG plus the (bounded) partial progress of
  evicted WGs.

Everything here is pure arithmetic over configs and run results — no
simulator state is mutated — so the oracles double as hypothesis test
oracles and as ``--validate`` post-run checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, TYPE_CHECKING

from ..config import SimConfig
from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..metrics.collector import RunMetrics
    from ..sim.device import GPUSystem
    from ..sim.job import Job


# ----------------------------------------------------------------------
# Single-job latency
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LatencyBand:
    """Predicted [lower, upper] response-time band, ticks."""

    lower: int
    upper: int

    def contains(self, latency: int) -> bool:
        """Whether a measured latency falls inside the band."""
        return self.lower <= latency <= self.upper


def fits_fully_resident(job: "Job", config: SimConfig) -> bool:
    """Whether every kernel's full WG set fits resident simultaneously.

    The closed-form isolated time assumes all of a kernel's WGs are
    placed at once; launches bigger than the device's occupancy run in
    waves the simple formula does not model.
    """
    gpu = config.gpu
    for kernel in job.kernels:
        desc = kernel.descriptor
        per_cu = math.ceil(desc.num_wgs / gpu.num_cus)
        waves = desc.wavefronts_per_wg(gpu.wavefront_size)
        if per_cu * desc.threads_per_wg > gpu.threads_per_cu:
            return False
        if per_cu * waves > gpu.max_wavefronts_per_cu:
            return False
        if per_cu * desc.vgpr_bytes_per_wg > gpu.vgpr_bytes_per_cu:
            return False
        if per_cu * desc.lds_bytes_per_wg > gpu.lds_bytes_per_cu:
            return False
    return True


def single_job_latency_band(job: "Job", config: SimConfig,
                            slack_per_kernel: int = 2) -> LatencyBand:
    """Closed-form latency of ``job`` alone on an idle device.

    Device-side submission path: the stream inspection costs one CP parse
    period, each kernel activation another, and each kernel then runs for
    its isolated time.  The upper bound adds ``slack_per_kernel`` ticks
    per kernel for the CU completion timer's integer ceiling.

    Only valid for jobs whose kernels fit fully resident
    (:func:`fits_fully_resident`); raises otherwise.
    """
    if not fits_fully_resident(job, config):
        raise SimulationError(
            f"job {job.job_id} exceeds device occupancy; the closed-form "
            "single-job oracle does not model multi-wave launches")
    parse = config.overheads.cp_parse_period
    service = sum(k.descriptor.isolated_time(config.gpu)
                  for k in job.kernels)
    lower = parse * (1 + job.num_kernels) + service
    upper = lower + slack_per_kernel * job.num_kernels
    return LatencyBand(lower=lower, upper=upper)


# ----------------------------------------------------------------------
# Utilization bounds and M/D/c queuing
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class UtilizationAudit:
    """Measured device utilization against its analytic bounds.

    A CU's aggregate progress rate is ``sum(min(1, c_i / n))`` over its
    residents, which is bounded by the largest CU-concurrency any kernel
    in the workload declares — latency-bound kernels (c up to 10) can
    drive a CU past its 4 SIMD lanes, so capacity is computed from the
    workload, not just Table 2.
    """

    #: Lane-ticks of work the CUs executed.
    executed_work: float
    #: Lane-ticks the workload offered (sum of job total work).
    offered_work: float
    #: Device lane-ticks available over the audited span.
    capacity: float
    #: executed / capacity.
    utilization: float
    #: offered / capacity.
    offered_load: float
    #: Rounding slack, ticks: each completed WG may integrate one extra.
    rounding_slack: float = 0.0

    def ok(self, tolerance: float = 1e-6) -> bool:
        """Utilization within [0, 1]; executed never above offered work."""
        if self.utilization < -tolerance:
            return False
        if self.utilization > 1.0 + tolerance:
            return False
        return (self.executed_work
                <= self.offered_work + self.rounding_slack + tolerance)


def utilization_audit(system: "GPUSystem", jobs: Iterable["Job"],
                      metrics: "RunMetrics") -> UtilizationAudit:
    """Measure a finished run's utilization against its bounds.

    Retired jobs (streaming runs) have released their kernel chains, so
    their contribution to offered work, concurrency and preemption comes
    from the metrics collector's stream aggregate, which banked those
    terms at retirement time; the per-job loops below see retired jobs
    as empty and add nothing for them.
    """
    jobs = list(jobs)
    executed = sum(cu.work_done for cu in system.dispatcher.cus)
    offered = float(sum(job.total_work for job in jobs))
    span = max(1, metrics.end_time)
    gpu = system.config.gpu
    max_concurrency = max(
        (k.descriptor.cu_concurrency for job in jobs for k in job.kernels),
        default=gpu.simd_per_cu)
    # Evicted WGs re-execute from scratch, so their discarded partial
    # progress legitimately inflates executed work past the offered total.
    preempted = float(sum(k.wgs_preempted * k.descriptor.wg_work
                          for job in jobs for k in job.kernels))
    stream = system.metrics.stream
    if stream is not None:
        offered += stream.offered_work
        preempted += stream.preempted_bound
        max_concurrency = max(max_concurrency, stream.max_concurrency)
    lanes = gpu.num_cus * max(gpu.simd_per_cu, max_concurrency)
    capacity = float(lanes * span)
    return UtilizationAudit(
        executed_work=executed, offered_work=offered, capacity=capacity,
        utilization=executed / capacity, offered_load=offered / capacity,
        rounding_slack=float(metrics.wg_completions) + preempted)


def erlang_c(servers: int, offered: float) -> float:
    """Erlang-C probability of waiting for an M/M/c queue.

    ``offered`` is the offered load ``a = lambda * E[S]`` in erlangs;
    requires ``a < servers`` (a stable queue).
    """
    if servers <= 0:
        raise SimulationError("erlang_c needs at least one server")
    if offered < 0:
        raise SimulationError("offered load must be non-negative")
    if offered >= servers:
        return 1.0
    term = 1.0
    total = 1.0  # k = 0 term
    for k in range(1, servers):
        term *= offered / k
        total += term
    tail = term * (offered / servers) / (1.0 - offered / servers)
    return tail / (total + tail)


def mmc_mean_wait(arrival_rate: float, mean_service: float,
                  servers: int) -> float:
    """Mean queuing delay (ticks) of an M/M/c queue."""
    offered = arrival_rate * mean_service
    if offered >= servers:
        return math.inf
    probability = erlang_c(servers, offered)
    return probability * mean_service / (servers * (1.0 - offered / servers))


def mdc_mean_wait(arrival_rate: float, mean_service: float,
                  servers: int) -> float:
    """Approximate mean queuing delay of an M/D/c queue, ticks.

    Deterministic service halves the M/M/c wait to first order
    (exact for c = 1; within a few percent for moderate c) — the
    classical approximation DARIS-style scheduler validations use as a
    latency oracle.
    """
    return mmc_mean_wait(arrival_rate, mean_service, servers) / 2.0


# ----------------------------------------------------------------------
# Conservation of work
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class WorkLedger:
    """Executed lane-time against what the WG accounting implies."""

    #: Lane-ticks integrated by the CUs' processor-sharing model.
    executed: float
    #: Lane-ticks owed by completed WGs (their full service demand).
    completed_work: float
    #: WGs that ran to completion (rounding slack is one tick each).
    completed_wgs: int
    #: Upper bound on lane-ticks lost to evicted WGs' partial progress.
    preempted_bound: float

    @property
    def lower(self) -> float:
        """Executed work can never be less than the completed WGs' demand."""
        return self.completed_work

    @property
    def upper(self) -> float:
        """Completed demand + per-WG timer rounding + evicted partials."""
        return self.completed_work + self.completed_wgs + self.preempted_bound

    def ok(self, tolerance: float = 1e-6) -> bool:
        """Whether the integrated work sits inside the analytic band."""
        return (self.lower - tolerance <= self.executed
                <= self.upper + tolerance)


def work_ledger(system: "GPUSystem", jobs: Iterable["Job"]) -> WorkLedger:
    """Audit conservation of work for a finished run."""
    executed = sum(cu.work_done for cu in system.dispatcher.cus)
    completed_work = 0.0
    completed_wgs = 0
    preempted_bound = 0.0
    for job in jobs:
        for kernel in job.kernels:
            work = kernel.descriptor.wg_work
            completed_work += kernel.wgs_completed * work
            completed_wgs += kernel.wgs_completed
            # An evicted WG forfeits at most its full service demand; a
            # cancelled job's resident WGs are evicted the same way.
            preempted_bound += kernel.wgs_preempted * work
    # Retired jobs' ledger terms were banked in the stream aggregate
    # before their kernel chains were released (see StreamAggregate.fold);
    # their now-empty kernel lists contributed nothing above.
    stream = system.metrics.stream
    if stream is not None:
        completed_work += stream.completed_work
        completed_wgs += stream.completed_wgs
        preempted_bound += stream.preempted_bound
    return WorkLedger(executed=executed, completed_work=completed_work,
                      completed_wgs=completed_wgs,
                      preempted_bound=preempted_bound)


# ----------------------------------------------------------------------
# Post-run oracle sweep (what --validate runs after a simulation)
# ----------------------------------------------------------------------

def audit_run(system: "GPUSystem", jobs: List["Job"],
              metrics: "RunMetrics",
              tolerance: float = 1e-6) -> List[str]:
    """Run every applicable oracle; return a list of failure descriptions.

    Empty list means the run matches all analytic expectations.  The
    single-job latency oracle only applies to single-job workloads that
    fit fully resident.
    """
    failures: List[str] = []
    ledger = work_ledger(system, jobs)
    if not ledger.ok(tolerance):
        failures.append(
            f"work conservation: executed {ledger.executed:.3f} lane-ticks "
            f"outside [{ledger.lower:.3f}, {ledger.upper:.3f}]")
    audit = utilization_audit(system, jobs, metrics)
    if not audit.ok(tolerance):
        failures.append(
            f"utilization bound: {audit.utilization:.6f} vs offered load "
            f"{audit.offered_load:.6f}")
    # metrics.outcomes can be empty under job retirement even for a
    # single-job workload; the closed-form oracle needs the per-job record.
    if len(jobs) == 1 and not system.policy.host_side and metrics.outcomes:
        job = jobs[0]
        outcome = metrics.outcomes[0]
        if (outcome.completion is not None
                and fits_fully_resident(job, system.config)):
            band = single_job_latency_band(job, system.config)
            if not band.contains(outcome.latency):
                failures.append(
                    f"single-job latency: measured {outcome.latency} ticks "
                    f"outside predicted [{band.lower}, {band.upper}]")
    return failures
