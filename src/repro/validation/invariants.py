"""Runtime invariant checking for the discrete-event core.

The :class:`InvariantChecker` is an opt-in hook layer the simulator's four
hot-path modules call into when one is attached (``GPUSystem(...,
validator=checker)``).  Each hook re-derives a conservation or occupancy
law from first principles and raises a structured
:class:`InvariantViolation` the moment the simulated state disagrees —
with the event context (time, job, kernel, CU, the numbers that failed)
attached, so a violation is a post-mortem, not a stack trace.

The invariants enforced, per event:

* **clock_monotonic** — the engine never executes an event scheduled
  before the current clock;
* **wg_conservation** — per kernel and per job, every workgroup is in
  exactly one of {completed, resident-on-a-CU, queued}:
  ``num_wgs == completed + resident + pending`` and
  ``resident == issued - completed`` matches the CUs' own residency;
* **cu_occupancy** — per CU, used + held threads / wavefronts / VGPR /
  LDS never exceed the Table 2 limits nor go negative, and the occupancy
  counters equal the sum over resident WGs;
* **stream_fifo** — a kernel only completes after every prerequisite in
  its stream (chain order, or the job's explicit DAG) has completed, and
  the host release marker stays within ``[0, num_kernels]``;
* **laxity_consistency** — Equation 1 identities: the remaining-time
  estimate is non-negative and finite, and
  ``laxity == deadline - elapsed - remaining`` reproduces
  :func:`repro.core.laxity.laxity_priority` exactly;
* **queue_pool** — queue bindings are a bijection (every bound queue maps
  back to its job, free + bound covers all queues, no job is both bound
  and backlogged);
* **job_lifecycle** — terminal jobs carry their timestamps, completed
  jobs have no unfinished kernels, accounting matches the metrics.

Disabled (no checker attached) the hooks cost one ``is not None``
attribute check per event — the same off-path discipline as the
telemetry layer, leaving untraced runs bit-identical.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, TYPE_CHECKING

from ..core.laxity import (estimate_remaining_time, laxity_priority,
                           laxity_time)
from ..errors import SimulationError
from ..sim.job import JobState
from ..sim.kernel import KernelPhase

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.compute_unit import ComputeUnit
    from ..sim.device import GPUSystem
    from ..sim.dispatcher import WGDispatcher
    from ..sim.engine import EventHandle
    from ..sim.job import Job
    from ..sim.kernel import KernelInstance

#: Float slack for identities over processor-sharing accumulators.
FLOAT_TOLERANCE = 1e-6


class InvariantViolation(SimulationError):
    """A machine-checked simulator invariant failed.

    Carries the invariant name, the simulated time and a structured
    ``context`` mapping so callers (CLI, telemetry bundle) can render or
    serialise the failure without parsing the message.
    """

    def __init__(self, invariant: str, message: str, time: int,
                 context: Optional[Dict[str, object]] = None) -> None:
        self.invariant = invariant
        self.time = time
        self.context: Dict[str, object] = dict(context or {})
        super().__init__(f"invariant {invariant!r} violated at t={time}: "
                         f"{message}")

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready record of the violation."""
        return {
            "invariant": self.invariant,
            "time": self.time,
            "message": str(self),
            "context": dict(self.context),
        }


class InvariantChecker:
    """Opt-in runtime validator for one :class:`GPUSystem` run.

    Attach with :meth:`attach` (the ``GPUSystem`` constructor does this
    when given ``validator=``); every hook either passes silently or
    raises :class:`InvariantViolation`.  :meth:`summary` reports how many
    checks ran per invariant plus any violations observed — the record
    the telemetry bundle embeds.
    """

    def __init__(self) -> None:
        self.checks: Dict[str, int] = {}
        self.violations: List[Dict[str, object]] = []
        self._system: Optional["GPUSystem"] = None
        self._sim = None
        self._config = None
        self._pool = None
        self._dispatcher: Optional["WGDispatcher"] = None
        self._profiler = None
        self._last_event_time = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, system: "GPUSystem") -> "InvariantChecker":
        """Hook this checker into every component of ``system``."""
        self._system = system
        self._sim = system.sim
        self._config = system.config
        self._pool = system.pool
        self._dispatcher = system.dispatcher
        self._profiler = system.profiler
        system.sim.validator = self
        system.cp.validator = self
        system.dispatcher.validator = self
        for cu in system.dispatcher.cus:
            cu.validator = self
        return self

    @property
    def total_checks(self) -> int:
        """Total invariant evaluations performed."""
        return sum(self.checks.values())

    def summary(self) -> Dict[str, object]:
        """Checks-per-invariant and violations, JSON-ready."""
        return {
            "checks": dict(sorted(self.checks.items())),
            "total_checks": self.total_checks,
            "violations": list(self.violations),
        }

    # ------------------------------------------------------------------
    # Violation plumbing
    # ------------------------------------------------------------------

    def _count(self, invariant: str) -> None:
        self.checks[invariant] = self.checks.get(invariant, 0) + 1

    def _fail(self, invariant: str, message: str,
              context: Optional[Dict[str, object]] = None) -> None:
        now = self._sim.now if self._sim is not None else 0
        violation = InvariantViolation(invariant, message, now, context)
        self.violations.append(violation.as_dict())
        raise violation

    # ------------------------------------------------------------------
    # Engine hook
    # ------------------------------------------------------------------

    def on_event(self, event: "EventHandle", now: int) -> None:
        """Engine is about to execute ``event``; clock must not rewind."""
        self._count("clock_monotonic")
        if event.when < now:
            name = getattr(event.callback, "__qualname__", "?")
            self._fail("clock_monotonic",
                       f"event {name} scheduled at {event.when} fired with "
                       f"clock already at {now}",
                       {"event_time": event.when, "clock": now,
                        "callback": name})
        self._last_event_time = event.when

    # ------------------------------------------------------------------
    # Compute-unit hook
    # ------------------------------------------------------------------

    def on_cu_update(self, cu: "ComputeUnit") -> None:
        """Residency changed on ``cu``; occupancy must stay within limits."""
        self._count("cu_occupancy")
        config = self._config.gpu
        limits = (
            ("threads", cu.used_threads, cu._held_threads,
             config.threads_per_cu),
            ("wavefronts", cu.used_wavefronts, cu._held_wavefronts,
             config.max_wavefronts_per_cu),
            ("vgpr_bytes", cu.used_vgpr, cu._held_vgpr,
             config.vgpr_bytes_per_cu),
            ("lds_bytes", cu.used_lds, cu._held_lds,
             config.lds_bytes_per_cu),
        )
        for name, used, held, limit in limits:
            if used < 0 or held < 0:
                self._fail("cu_occupancy",
                           f"CU{cu.cu_id} {name} accounting went negative "
                           f"(used={used}, held={held})",
                           {"cu": cu.cu_id, "resource": name,
                            "used": used, "held": held, "limit": limit})
            if used + held > limit:
                self._fail("cu_occupancy",
                           f"CU{cu.cu_id} over-committed {name}: "
                           f"used={used} + held={held} > limit={limit}",
                           {"cu": cu.cu_id, "resource": name,
                            "used": used, "held": held, "limit": limit})
        # The counters must equal the sum over resident WGs.
        wavefront_size = config.wavefront_size
        expect_threads = sum(wg.threads for wg in cu._residents)
        expect_waves = sum(wg.wavefronts for wg in cu._residents)
        if expect_threads != cu.used_threads or expect_waves != cu.used_wavefronts:
            self._fail("cu_occupancy",
                       f"CU{cu.cu_id} counters drifted from residents: "
                       f"threads {cu.used_threads} vs {expect_threads}, "
                       f"wavefronts {cu.used_wavefronts} vs {expect_waves}",
                       {"cu": cu.cu_id, "used_threads": cu.used_threads,
                        "resident_threads": expect_threads,
                        "used_wavefronts": cu.used_wavefronts,
                        "resident_wavefronts": expect_waves,
                        "wavefront_size": wavefront_size})

    # ------------------------------------------------------------------
    # Dispatcher hook
    # ------------------------------------------------------------------

    def on_dispatch(self, dispatcher: "WGDispatcher") -> None:
        """A pump / preemption / cancel finished; audit WG conservation."""
        self._count("wg_conservation")
        seen_jobs = {}
        for kernel in dispatcher.active_kernels:
            self._check_kernel_conservation(kernel, dispatcher)
            seen_jobs.setdefault(kernel.job.job_id, kernel.job)
        for job in seen_jobs.values():
            self._check_job_conservation(job, dispatcher)

    def _check_kernel_conservation(self, kernel: "KernelInstance",
                                   dispatcher: "WGDispatcher") -> None:
        num = kernel.descriptor.num_wgs
        completed = kernel.wgs_completed
        issued = kernel.wgs_issued
        pending = kernel.wgs_pending
        context = {"job": kernel.job.job_id, "kernel": kernel.name,
                   "index": kernel.index, "num_wgs": num,
                   "completed": completed, "issued": issued,
                   "pending": pending}
        if not 0 <= completed <= issued <= num:
            self._fail("wg_conservation",
                       f"kernel {kernel.name}#{kernel.index} counters out of "
                       f"order: completed={completed} issued={issued} "
                       f"num_wgs={num}", context)
        resident = dispatcher.resident_wgs(kernel)
        context["resident"] = resident
        if resident != issued - completed:
            self._fail("wg_conservation",
                       f"kernel {kernel.name}#{kernel.index} has {resident} "
                       f"resident WGs but issued-completed="
                       f"{issued - completed}", context)
        if completed + resident + pending != num:
            self._fail("wg_conservation",
                       f"kernel {kernel.name}#{kernel.index} loses WGs: "
                       f"completed({completed}) + resident({resident}) + "
                       f"queued({pending}) != dispatched({num})", context)

    def _check_job_conservation(self, job: "Job",
                                dispatcher: "WGDispatcher") -> None:
        total = job.total_wgs
        completed = sum(k.wgs_completed for k in job.kernels)
        resident = sum(dispatcher.resident_wgs(k) for k in job.kernels)
        queued = sum(k.wgs_pending for k in job.kernels)
        if completed + resident + queued != total:
            self._fail("wg_conservation",
                       f"job {job.job_id} loses WGs: completed({completed}) "
                       f"+ resident({resident}) + queued({queued}) != "
                       f"dispatched({total})",
                       {"job": job.job_id, "total_wgs": total,
                        "completed": completed, "resident": resident,
                        "queued": queued})

    # ------------------------------------------------------------------
    # Command-processor hooks
    # ------------------------------------------------------------------

    def on_kernel_complete(self, kernel: "KernelInstance") -> None:
        """A kernel finished; its stream prerequisites must all be done."""
        self._count("stream_fifo")
        job = kernel.job
        for dep in job.kernel_dependencies(kernel.index):
            predecessor = job.kernels[dep]
            if not predecessor.is_done:
                self._fail("stream_fifo",
                           f"kernel {kernel.name}#{kernel.index} of job "
                           f"{job.job_id} completed before its prerequisite "
                           f"#{dep} ({predecessor.name})",
                           {"job": job.job_id, "kernel": kernel.name,
                            "index": kernel.index, "prerequisite": dep,
                            "prerequisite_phase": predecessor.phase.value})
        if kernel.phase is not KernelPhase.DONE:
            self._fail("stream_fifo",
                       f"kernel {kernel.name}#{kernel.index} reported "
                       f"complete while {kernel.phase.value}",
                       {"job": job.job_id, "kernel": kernel.name,
                        "index": kernel.index, "phase": kernel.phase.value})

    def on_job_event(self, job: "Job", event: str) -> None:
        """A job changed state; audit lifecycle, release marker, laxity."""
        self._count("job_lifecycle")
        context = {"job": job.job_id, "event": event,
                   "state": job.state.value}
        if not 0 <= job.released_kernels <= job.num_kernels:
            self._fail("stream_fifo",
                       f"job {job.job_id} release marker "
                       f"{job.released_kernels} outside "
                       f"[0, {job.num_kernels}]", context)
        if job.state is JobState.COMPLETED:
            if job.completion_time is None:
                self._fail("job_lifecycle",
                           f"job {job.job_id} completed without a "
                           "completion time", context)
            if any(not k.is_done for k in job.kernels):
                self._fail("job_lifecycle",
                           f"job {job.job_id} completed with unfinished "
                           "kernels", context)
        if job.state is JobState.REJECTED and job.rejection_time is None:
            self._fail("job_lifecycle",
                       f"job {job.job_id} rejected without a rejection "
                       "time", context)
        if job.is_live and job.deadline is not None:
            self._check_laxity(job)
        self._check_queue_pool()

    def on_job_retired(self, job: "Job", pool) -> None:
        """A terminal job is about to release its kernel state.

        Retirement must be the *last* thing that happens to a job: it may
        not fire while the job is live, still bound to (or backlogged
        behind) a compute queue, or still owns resident WGs on any CU.
        """
        self._count("job_retirement")
        context = {"job": job.job_id, "state": job.state.value}
        if not job.is_done:
            self._fail("job_retirement",
                       f"job {job.job_id} retired while {job.state.value}",
                       context)
        if job.retired:
            self._fail("job_retirement",
                       f"job {job.job_id} retired twice", context)
        if job.job_id in pool._by_job:
            self._fail("job_retirement",
                       f"job {job.job_id} retired while bound to queue "
                       f"{pool._by_job[job.job_id].queue_id}", context)
        if any(j.job_id == job.job_id for j in pool.backlog):
            self._fail("job_retirement",
                       f"job {job.job_id} retired while backlogged", context)
        dispatcher = self._dispatcher
        if dispatcher is not None:
            resident = sum(dispatcher.resident_wgs(k) for k in job.kernels)
            if resident:
                self._fail("job_retirement",
                           f"job {job.job_id} retired with {resident} "
                           "resident WGs",
                           {"job": job.job_id, "resident": resident})
            for kernel in job.kernels:
                if kernel in dispatcher.active_kernels:
                    self._fail("job_retirement",
                               f"job {job.job_id} retired with kernel "
                               f"{kernel.name}#{kernel.index} still active",
                               {"job": job.job_id, "kernel": kernel.name})

    def _check_laxity(self, job: "Job") -> None:
        """Equation 1 identities between the laxity helpers."""
        self._count("laxity_consistency")
        now = self._sim.now
        table = self._profiler
        remaining = estimate_remaining_time(job, table, now)
        context = {"job": job.job_id, "deadline": job.deadline,
                   "elapsed": job.elapsed(now), "remaining": remaining}
        if remaining < 0 or not math.isfinite(remaining):
            self._fail("laxity_consistency",
                       f"job {job.job_id} remaining-time estimate is "
                       f"{remaining}", context)
        laxity = laxity_time(job, table, now)
        expected = job.deadline - (job.elapsed(now) + remaining)
        context["laxity"] = laxity
        if abs(laxity - expected) > FLOAT_TOLERANCE:
            self._fail("laxity_consistency",
                       f"job {job.job_id} laxity {laxity} != deadline - "
                       f"elapsed - remaining = {expected}", context)
        priority = laxity_priority(job, table, now)
        context["priority"] = priority
        if job.elapsed(now) > job.deadline:
            if priority != math.inf:
                self._fail("laxity_consistency",
                           f"job {job.job_id} is past its deadline but "
                           f"priority is {priority}, not infinite", context)
        elif priority < 0:
            self._fail("laxity_consistency",
                       f"job {job.job_id} priority {priority} is negative",
                       context)

    def _check_queue_pool(self) -> None:
        """Queue bindings are a bijection; backlog and queues are disjoint."""
        self._count("queue_pool")
        pool = self._pool
        bound = 0
        for queue in pool.queues:
            job = queue.job
            if job is None:
                continue
            bound += 1
            mapped = pool._by_job.get(job.job_id)
            if mapped is not queue:
                self._fail("queue_pool",
                           f"queue {queue.queue_id} holds job {job.job_id} "
                           "but the pool maps that job elsewhere",
                           {"queue": queue.queue_id, "job": job.job_id})
        if bound != pool.num_bound:
            self._fail("queue_pool",
                       f"pool reports {pool.num_bound} bound queues but "
                       f"{bound} queues hold jobs",
                       {"reported": pool.num_bound, "actual": bound})
        if pool.num_free + pool.num_bound != len(pool.queues):
            self._fail("queue_pool",
                       f"free({pool.num_free}) + bound({pool.num_bound}) != "
                       f"queues({len(pool.queues)})",
                       {"free": pool.num_free, "bound": pool.num_bound,
                        "queues": len(pool.queues)})
        backlogged = {job.job_id for job in pool.backlog}
        for queue in pool.queues:
            if queue.job is not None and queue.job.job_id in backlogged:
                self._fail("queue_pool",
                           f"job {queue.job.job_id} is both bound to queue "
                           f"{queue.queue_id} and backlogged",
                           {"queue": queue.queue_id,
                            "job": queue.job.job_id})

    # ------------------------------------------------------------------
    # End of run
    # ------------------------------------------------------------------

    def on_run_end(self, system: "GPUSystem", metrics) -> None:
        """Final audit: the device drained and the books balance."""
        self._count("run_end")
        pool = system.pool
        if pool.num_bound or pool.backlog:
            self._fail("run_end",
                       f"run ended with {pool.num_bound} bound and "
                       f"{len(pool.backlog)} backlogged jobs",
                       {"bound": pool.num_bound,
                        "backlogged": len(pool.backlog)})
        for cu in system.dispatcher.cus:
            if cu.num_residents:
                self._fail("run_end",
                           f"CU{cu.cu_id} ended the run with "
                           f"{cu.num_residents} resident WGs",
                           {"cu": cu.cu_id, "residents": cu.num_residents})
        outcomes = metrics.outcomes
        terminal = sum(1 for o in outcomes
                       if o.completion is not None or o.accepted is False)
        if terminal != len(outcomes):
            self._fail("run_end",
                       f"{len(outcomes) - terminal} of {len(outcomes)} jobs "
                       "ended the run without a terminal outcome",
                       {"jobs": len(outcomes), "terminal": terminal})
        completed_wgs = sum(o.total_wgs for o in outcomes
                            if o.completion is not None)
        # Retired jobs banked their completed-WG counts in the stream
        # aggregate before their outcomes were folded away.
        if metrics.stream is not None:
            completed_wgs += metrics.stream.completed_wgs
        if metrics.wg_completions < completed_wgs:
            self._fail("run_end",
                       f"only {metrics.wg_completions} WG completions "
                       f"recorded but completed jobs dispatched "
                       f"{completed_wgs}",
                       {"wg_completions": metrics.wg_completions,
                        "completed_job_wgs": completed_wgs})
