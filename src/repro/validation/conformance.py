"""Cross-scheduler conformance: one scenario battery, every policy.

Every scheduler in :mod:`repro.schedulers.registry` must survive the same
battery of deterministic scenarios under the runtime invariant checker
and satisfy **policy-independent postconditions** (every job terminal,
best-effort work never rejected, conservation of work, physically
impossible deadlines missed, uncontended generous deadlines met).  On top
of that, per-policy **contracts** pin down what makes each policy itself:
LAX admits iff Algorithm 1's inequality holds, RR serves queues in
rotation order, EDF finishes earlier deadlines first, SJF shorter jobs
first, PREMA actually preempts under priority inversion.

The battery is what the ``validation`` CI job runs for all registered
schedulers, and what every future perf refactor must keep green.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..config import SimConfig
from ..errors import SimulationError
from ..metrics.collector import RunMetrics
from ..schedulers.registry import ALL_SCHEDULERS, make_scheduler
from ..sim.device import GPUSystem
from ..sim.job import Job
from ..sim.kernel import KernelDescriptor
from ..units import MS, US
from .invariants import InvariantChecker
from .oracles import audit_run, single_job_latency_band

#: Deterministic kernel shapes used across scenarios.  16 WGs of 640
#: threads occupy exactly half the default device, so two kernels saturate
#: it — the same trick the Figure 3 test uses.
_HALF = dict(num_wgs=16, threads_per_wg=640, vgpr_bytes_per_wg=1024,
             lds_bytes_per_wg=512)
_SMALL = dict(num_wgs=4, threads_per_wg=64, vgpr_bytes_per_wg=1024,
              lds_bytes_per_wg=512)


def _desc(name: str, wg_work: int, shape: dict = _SMALL,
          **overrides) -> KernelDescriptor:
    fields = dict(shape)
    fields.update(overrides)
    return KernelDescriptor(name=name, wg_work=wg_work, **fields)


# ----------------------------------------------------------------------
# Scenario builders (all deterministic; no RNG anywhere)
# ----------------------------------------------------------------------

def empty_device_jobs() -> List[Job]:
    """One best-effort job arriving at an idle device mid-simulation."""
    return [Job(job_id=0, benchmark="CONF",
                descriptors=[_desc("lone", 20 * US)],
                arrival=1 * MS, deadline=None)]


def single_job_jobs() -> List[Job]:
    """A three-kernel deadline job, alone, with a generous deadline."""
    chain = [_desc("solo", 50 * US) for _ in range(3)]
    return [Job(job_id=0, benchmark="CONF", descriptors=chain,
                arrival=0, deadline=5 * MS)]


def saturation_jobs() -> List[Job]:
    """Thirty-two half-device jobs arriving nearly at once.

    Sixteen devices' worth of simultaneous work: deadline-blind policies
    drag everything late, deadline-aware ones shed load.  Either way the
    conservation laws must hold and every job must terminate.
    """
    jobs = []
    for i in range(32):
        jobs.append(Job(job_id=i, benchmark="CONF",
                        descriptors=[_desc("sat", 200 * US, _HALF)],
                        arrival=i * US, deadline=2 * MS))
    return jobs


def deadline_cliff_jobs() -> List[Job]:
    """Uncontended jobs straddling the feasibility cliff.

    Arrivals are spaced far apart so each job runs alone.  Even-indexed
    jobs get deadlines several times their isolated time — **every**
    policy must finish them in time.  Odd-indexed jobs get deadlines
    below their isolated time — **no** policy can finish them in time
    (they must miss or be shed).
    """
    gpu = SimConfig().gpu
    jobs = []
    spacing = 4 * MS
    for i in range(8):
        desc = _desc("cliff", 100 * US)
        isolated = desc.isolated_time(gpu)
        if i % 2 == 0:
            deadline = isolated * 4 + 200 * US
        else:
            deadline = max(1, isolated // 2)
        jobs.append(Job(job_id=i, benchmark="CONF", descriptors=[desc],
                        arrival=i * spacing, deadline=deadline))
    return jobs


def preemption_storm_jobs() -> List[Job]:
    """A long low-priority resident swamped by urgent high-priority work.

    A device-filling background job starts first; a burst of short,
    tight-deadline, high-user-priority jobs lands on top.  PREMA must
    preempt; everyone else must still conserve WGs while the burst and
    the background job fight for occupancy.
    """
    jobs = [Job(job_id=0, benchmark="CONF",
                descriptors=[_desc("storm_bg", 500 * US, _HALF)] * 2,
                arrival=0, deadline=20 * MS, user_priority=4)]
    for i in range(1, 9):
        jobs.append(Job(job_id=i, benchmark="CONF",
                        descriptors=[_desc("storm_fg", 50 * US, _HALF)],
                        arrival=300 * US + i * 10 * US, deadline=1500 * US,
                        user_priority=0))
    return jobs


SCENARIOS: Dict[str, Callable[[], List[Job]]] = {
    "empty_device": empty_device_jobs,
    "single_job": single_job_jobs,
    "saturation": saturation_jobs,
    "deadline_cliff": deadline_cliff_jobs,
    "preemption_storm": preemption_storm_jobs,
}


# ----------------------------------------------------------------------
# Running one (scheduler, scenario) cell
# ----------------------------------------------------------------------

@dataclass
class ScenarioOutcome:
    """Everything the postconditions and contracts inspect."""

    scheduler: str
    scenario: str
    jobs: List[Job]
    metrics: RunMetrics
    system: GPUSystem
    checker: InvariantChecker
    telemetry: Optional[object] = None
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every postcondition and contract held."""
        return not self.failures


def run_scenario(scheduler: str, scenario: str,
                 config: Optional[SimConfig] = None,
                 telemetry=None) -> ScenarioOutcome:
    """Run one scenario under one scheduler with the checker attached."""
    builder = SCENARIOS.get(scenario)
    if builder is None:
        raise SimulationError(
            f"unknown scenario {scenario!r}; known: "
            f"{', '.join(SCENARIOS)}")
    jobs = builder()
    checker = InvariantChecker()
    # Postconditions and contracts audit every job's individual outcome,
    # so scenario runs opt out of any globally enabled job retirement.
    system = GPUSystem(make_scheduler(scheduler),
                       config if config is not None else SimConfig(),
                       telemetry=telemetry, validator=checker,
                       retire=False)
    system.submit_workload(jobs)
    metrics = system.run()
    return ScenarioOutcome(scheduler=scheduler, scenario=scenario,
                           jobs=jobs, metrics=metrics, system=system,
                           checker=checker, telemetry=telemetry)


# ----------------------------------------------------------------------
# Policy-independent postconditions
# ----------------------------------------------------------------------

def check_postconditions(outcome: ScenarioOutcome) -> List[str]:
    """Invariants every scheduling policy must satisfy; returns failures."""
    failures: List[str] = []
    for job in outcome.jobs:
        if not job.is_done:
            failures.append(f"job {job.job_id} never reached a terminal "
                            f"state (is {job.state.value})")
        if job.deadline is None and job.state.value == "rejected":
            failures.append(f"best-effort job {job.job_id} was rejected")
    by_id = {o.job_id: o for o in outcome.metrics.outcomes}
    if len(by_id) != len(outcome.jobs):
        failures.append(f"metrics saw {len(by_id)} jobs, workload had "
                        f"{len(outcome.jobs)}")
    gpu = outcome.system.config.gpu
    for job in outcome.jobs:
        o = by_id.get(job.job_id)
        if o is None or o.completion is None:
            continue
        if o.latency < job.isolated_time(gpu):
            failures.append(
                f"job {job.job_id} finished in {o.latency} ticks, faster "
                f"than its isolated time {job.isolated_time(gpu)}")
        if o.met_deadline and o.latency > job.deadline:
            failures.append(f"job {job.job_id} marked met_deadline with "
                            f"latency {o.latency} > deadline {job.deadline}")
    failures.extend(audit_run(outcome.system, outcome.jobs, outcome.metrics))
    failures.extend(_scenario_postconditions(outcome, by_id))
    if outcome.checker.violations:
        failures.append(
            f"{len(outcome.checker.violations)} invariant violations")
    return failures


def _scenario_postconditions(outcome: ScenarioOutcome,
                             by_id: Dict[int, object]) -> List[str]:
    failures: List[str] = []
    scenario = outcome.scenario
    if scenario == "empty_device":
        o = by_id.get(0)
        if o is None or o.completion is None:
            failures.append("the lone best-effort job did not complete")
    elif scenario == "single_job":
        o = by_id.get(0)
        if o is None or not o.met_deadline:
            failures.append("the lone generous-deadline job missed")
    elif scenario == "deadline_cliff":
        for job in outcome.jobs:
            o = by_id.get(job.job_id)
            if job.job_id % 2 == 1 and o is not None and o.met_deadline:
                failures.append(
                    f"job {job.job_id} met a deadline below its isolated "
                    "time — physically impossible")
            if (job.job_id % 2 == 0
                    and (o is None or not o.met_deadline)):
                failures.append(
                    f"uncontended job {job.job_id} missed a deadline 4x "
                    "its isolated time")
    return failures


# ----------------------------------------------------------------------
# Per-policy contracts
# ----------------------------------------------------------------------

def lax_admission_contract(outcome: ScenarioOutcome) -> List[str]:
    """LAX admits iff Algorithm 1 predicts the job fits its deadline.

    Replays every ``admission_verdict`` decision event: a ``littles_law``
    verdict must agree with its own recorded inequality
    ``totRem + hold + dur < deadline``.
    """
    failures: List[str] = []
    hub = outcome.telemetry
    if hub is None or hub.decisions is None:
        return ["LAX contract needs a telemetry hub with decision events"]
    verdicts = [e for e in hub.decisions.events
                if e.kind == "admission_verdict"]
    if not verdicts:
        failures.append("no admission verdicts recorded")
    for event in verdicts:
        fields = event.fields
        if fields.get("reason") != "littles_law":
            continue
        predicted_fits = (fields["tot_rem_time"] + fields["hold_time"]
                          + fields["dur_time"]) < fields["deadline"]
        if bool(fields["accepted"]) != predicted_fits:
            failures.append(
                f"job {fields['job_id']}: verdict accepted="
                f"{fields['accepted']} contradicts Algorithm 1 inputs")
    return failures


def rr_rotation_contract(outcome: ScenarioOutcome) -> List[str]:
    """RR serves identical simultaneous jobs in queue-binding order."""
    completions = [(o.job_id, o.completion)
                   for o in outcome.metrics.outcomes
                   if o.completion is not None]
    failures = []
    for (a_id, a_done), (b_id, b_done) in zip(completions, completions[1:]):
        if a_id < b_id and a_done > b_done:
            failures.append(
                f"job {b_id} (bound later) finished before job {a_id} "
                f"under rotation order ({b_done} < {a_done})")
    return failures


def edf_order_contract(outcome: ScenarioOutcome) -> List[str]:
    """EDF never finishes a later-deadline job before an earlier one
    (identical shapes, saturation scenario)."""
    pairs = sorted(((job.arrival + job.deadline, job.job_id)
                    for job in outcome.jobs if job.deadline is not None))
    by_id = {o.job_id: o for o in outcome.metrics.outcomes}
    failures = []
    previous = None
    for absolute, job_id in pairs:
        o = by_id.get(job_id)
        if o is None or o.completion is None:
            continue
        if previous is not None and o.completion < previous[1]:
            failures.append(
                f"job {job_id} (deadline {absolute}) finished at "
                f"{o.completion}, before earlier-deadline job "
                f"{previous[0]}")
        previous = (job_id, o.completion)
    return failures


def prema_preempts_contract(outcome: ScenarioOutcome) -> List[str]:
    """PREMA must actually evict WGs in the preemption storm."""
    if outcome.system.dispatcher.wgs_preempted <= 0:
        return ["PREMA performed no preemptions under priority inversion"]
    return []


def lax_best_effort_contract(outcome: ScenarioOutcome) -> List[str]:
    """LAX never rejects deadline-less work (Section 5.2)."""
    failures = []
    for job in outcome.jobs:
        if job.deadline is None and job.state.value == "rejected":
            failures.append(f"LAX rejected best-effort job {job.job_id}")
    return failures


#: scheduler -> (scenario, contract, needs_decision_telemetry).
POLICY_CONTRACTS: Dict[str, List[tuple]] = {
    "LAX": [("saturation", lax_admission_contract, True),
            ("empty_device", lax_best_effort_contract, False)],
    "RR": [("saturation", rr_rotation_contract, False)],
    "EDF": [("saturation", edf_order_contract, False)],
    "PREMA": [("preemption_storm", prema_preempts_contract, False)],
}


def run_policy_contracts(scheduler: str) -> Dict[str, List[str]]:
    """Run ``scheduler``'s registered contracts; scenario -> failures."""
    results: Dict[str, List[str]] = {}
    for scenario, contract, needs_decisions in POLICY_CONTRACTS.get(
            scheduler, ()):
        telemetry = None
        if needs_decisions:
            from ..telemetry import TelemetryHub
            telemetry = TelemetryHub(self_profile=False)
        outcome = run_scenario(scheduler, scenario, telemetry=telemetry)
        results[scenario] = contract(outcome)
    return results


# ----------------------------------------------------------------------
# Full battery
# ----------------------------------------------------------------------

def run_conformance(schedulers=None, scenarios=None) -> Dict[str, Dict[str, List[str]]]:
    """Run the whole battery; scheduler -> scenario -> failure list.

    An empty failure list everywhere means full conformance.  This is the
    entry point the CI job and ``tests/test_conformance.py`` drive.
    """
    report: Dict[str, Dict[str, List[str]]] = {}
    for scheduler in (schedulers if schedulers is not None
                      else ALL_SCHEDULERS):
        per_scenario: Dict[str, List[str]] = {}
        for scenario in (scenarios if scenarios is not None else SCENARIOS):
            outcome = run_scenario(scheduler, scenario)
            per_scenario[scenario] = check_postconditions(outcome)
        for scenario, failures in run_policy_contracts(scheduler).items():
            key = f"{scenario}:contract"
            per_scenario[key] = per_scenario.get(key, []) + failures
        report[scheduler] = per_scenario
    return report
