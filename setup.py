"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works on environments whose setuptools lacks the
PEP 660 editable-wheel backend (e.g. offline boxes without ``wheel``):

    pip install -e . --no-use-pep517 --no-build-isolation
"""

from setuptools import setup

setup()
