"""Unit tests for the GPUSystem API surface and policy base plumbing."""

import math

import pytest

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.schedulers.base import SchedulerPolicy, default_issue_key
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem, run_workload
from repro.units import MS, US

from conftest import make_descriptor, make_job


class TestGPUSystemApi:
    def test_double_submit_rejected(self):
        system = GPUSystem(make_scheduler("RR"), SimConfig())
        system.submit_workload([make_job()])
        with pytest.raises(SimulationError):
            system.submit_workload([make_job(job_id=1)])

    def test_empty_workload_rejected(self):
        system = GPUSystem(make_scheduler("RR"), SimConfig())
        with pytest.raises(SimulationError):
            system.submit_workload([])

    def test_run_without_submit_rejected(self):
        system = GPUSystem(make_scheduler("RR"), SimConfig())
        with pytest.raises(SimulationError):
            system.run()

    def test_run_workload_convenience(self):
        metrics = run_workload(make_scheduler("RR"),
                               [make_job(descriptors=[make_descriptor(
                                   num_wgs=1, wg_work=10 * US)])])
        assert metrics.num_jobs == 1

    def test_context_exposes_components(self):
        system = GPUSystem(make_scheduler("RR"), SimConfig())
        ctx = system.ctx
        assert ctx.cp is system.cp
        assert ctx.host is system.host
        assert ctx.energy is system.energy
        assert ctx.dispatcher is system.dispatcher
        assert ctx.profiler is system.profiler
        assert ctx.now == 0

    def test_jobs_sorted_by_arrival(self):
        # Arrival order in the submitted list must not matter.
        early = make_job(job_id=1, arrival=10 * US, descriptors=[
            make_descriptor(num_wgs=1, wg_work=5 * US)])
        late = make_job(job_id=0, arrival=50 * US, descriptors=[
            make_descriptor(num_wgs=1, wg_work=5 * US)])
        metrics = run_workload(make_scheduler("RR"), [late, early])
        outcomes = {o.job_id: o for o in metrics.outcomes}
        assert outcomes[1].completion < outcomes[0].completion


class TestDefaultIssueKey:
    def _kernel(self, job_id, priority=0.0, arrival=0):
        job = make_job(job_id=job_id, arrival=arrival,
                       descriptors=[make_descriptor(num_wgs=1)])
        job.priority = priority
        return job.kernels[0]

    def test_priority_dominates(self):
        urgent = self._kernel(1, priority=1.0)
        relaxed = self._kernel(2, priority=5.0)
        assert default_issue_key(urgent) < default_issue_key(relaxed)

    def test_age_breaks_priority_ties(self):
        older = self._kernel(1, priority=1.0, arrival=10)
        newer = self._kernel(2, priority=1.0, arrival=20)
        assert default_issue_key(older) < default_issue_key(newer)

    def test_job_id_breaks_full_ties(self):
        a = self._kernel(1)
        b = self._kernel(2)
        assert default_issue_key(a) < default_issue_key(b)

    def test_infinite_priority_sorts_last(self):
        best_effort = self._kernel(1, priority=math.inf)
        normal = self._kernel(2, priority=1e12)
        assert default_issue_key(normal) < default_issue_key(best_effort)


class TestPolicyBaseDefaults:
    def test_base_policy_runs_fcfs(self):
        jobs = [make_job(job_id=i, arrival=(i + 1) * 10 * US,
                         deadline=100 * MS,
                         descriptors=[make_descriptor(num_wgs=1,
                                                      wg_work=20 * US)])
                for i in range(3)]
        metrics = run_workload(SchedulerPolicy(), jobs)
        assert all(o.completion is not None for o in metrics.outcomes)

    def test_base_policy_accepts_everything(self):
        policy = SchedulerPolicy()
        assert policy.admit(make_job())

    def test_issue_order_is_stable_sort(self):
        policy = SchedulerPolicy()
        jobs = [make_job(job_id=i, descriptors=[make_descriptor(num_wgs=1)])
                for i in range(5)]
        kernels = [job.kernels[0] for job in jobs]
        assert [k.job.job_id for k in policy.issue_order(kernels)] == \
            [0, 1, 2, 3, 4]
