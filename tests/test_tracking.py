"""Unit tests for the Figure 10 prediction tracker."""

import pytest

from repro.metrics.tracking import JobTrace, PredictionSample, PredictionTracker
from repro.units import MS, US

from conftest import make_job


class TestTrackerSelection:
    def test_tracks_listed_jobs_only(self):
        tracker = PredictionTracker(job_ids=[3])
        assert tracker.tracks(make_job(job_id=3))
        assert not tracker.tracks(make_job(job_id=4))

    def test_tracks_everything_by_default(self):
        tracker = PredictionTracker()
        assert tracker.tracks(make_job(job_id=123))

    def test_record_ignores_untracked(self):
        tracker = PredictionTracker(job_ids=[1])
        tracker.record(make_job(job_id=2), 0, 1000.0, 0.0)
        assert tracker.traces() == []


class TestRecording:
    def test_samples_accumulate(self):
        tracker = PredictionTracker(job_ids=[0])
        job = make_job(job_id=0, arrival=100)
        tracker.record(job, now=200, predicted_completion=5000.0, priority=1.0)
        tracker.record(job, now=300, predicted_completion=4000.0, priority=2.0)
        trace = tracker.trace_of(0)
        assert len(trace.samples) == 2
        assert trace.samples[0].elapsed == 100
        assert trace.samples[1].predicted_completion == 4000.0

    def test_finalize_records_actuals(self):
        tracker = PredictionTracker(job_ids=[0])
        job = make_job(job_id=0, arrival=100)
        tracker.record(job, 200, 1000.0, 0.0)
        job.mark_enqueued(100, 0)
        job.mark_ready()
        job.mark_running(150)
        job.completion_time = 1100
        tracker.finalize_job(job)
        trace = tracker.trace_of(0)
        assert trace.actual_completion == 1000
        assert trace.actual_running == 950

    def test_finalize_unknown_job_is_noop(self):
        tracker = PredictionTracker(job_ids=[0])
        job = make_job(job_id=0)
        job.completion_time = 100
        tracker.finalize_job(job)  # never sampled
        assert tracker.trace_of(0) is None


class TestMeanAbsoluteError:
    def test_perfect_prediction_has_zero_error(self):
        trace = JobTrace(0, "T", None, MS)
        trace.samples = [PredictionSample(0, 1000.0, 0.0)]
        trace.actual_completion = 1000
        assert trace.mean_absolute_error() == pytest.approx(0.0)

    def test_relative_error(self):
        trace = JobTrace(0, "T", None, MS)
        trace.samples = [PredictionSample(0, 900.0, 0.0),
                         PredictionSample(0, 1100.0, 0.0)]
        trace.actual_completion = 1000
        assert trace.mean_absolute_error() == pytest.approx(0.1)

    def test_none_without_actual(self):
        trace = JobTrace(0, "T", None, MS)
        trace.samples = [PredictionSample(0, 900.0, 0.0)]
        assert trace.mean_absolute_error() is None

    def test_none_without_samples(self):
        trace = JobTrace(0, "T", None, MS)
        trace.actual_completion = 1000
        assert trace.mean_absolute_error() is None
