"""Unit tests for the Table 1 kernel library and its calibration."""

import pytest

from repro.config import GPUConfig
from repro.errors import WorkloadError
from repro.units import US, from_us
from repro.workloads.kernels import (ACTIVATION_KERNEL_5, CUCKOO_KERNEL,
                                     GEMM_KERNEL, GMM_KERNEL, IPV6_KERNEL,
                                     KernelSpec, LSTM_KERNELS, STEM_KERNEL,
                                     TABLE1_SPECS, TENSOR_KERNEL_1)

GPU = GPUConfig()

#: (spec, Table 1 isolated exec time us, Table 1 threads).
TABLE1_ROWS = [
    (TENSOR_KERNEL_1, 3.96, 16384),
    (LSTM_KERNELS["TK2"], 1.79, 128),
    (LSTM_KERNELS["TK3"], 4.45, 2048),
    (LSTM_KERNELS["TK4"], 4.74, 64),
    (ACTIVATION_KERNEL_5, 8.87, 128),
    (GEMM_KERNEL, 127.48, 1024),
    (IPV6_KERNEL, 25.0, 8192),
    (CUCKOO_KERNEL, 300.0, 8192),
    (GMM_KERNEL, 1500.0, 2048),
    (STEM_KERNEL, 150.0, 4096),
]


class TestCalibration:
    @pytest.mark.parametrize("spec,exec_us,threads", TABLE1_ROWS,
                             ids=lambda row: getattr(row, "name", row))
    def test_isolated_time_matches_table1(self, spec, exec_us, threads):
        desc = spec.descriptor(GPU)
        assert desc.isolated_time(GPU) == pytest.approx(from_us(exec_us),
                                                        rel=0.01)

    @pytest.mark.parametrize("spec,exec_us,threads", TABLE1_ROWS,
                             ids=lambda row: getattr(row, "name", row))
    def test_thread_counts_match_table1(self, spec, exec_us, threads):
        assert spec.descriptor(GPU).total_threads == threads

    def test_context_bytes_match_table1(self):
        assert GEMM_KERNEL.descriptor(GPU).context_bytes == int(562.4 * 1024)

    def test_descriptors_are_cached(self):
        assert IPV6_KERNEL.descriptor(GPU) is IPV6_KERNEL.descriptor(GPU)

    def test_table1_has_ten_rows(self):
        assert len(TABLE1_SPECS) == 10


class TestResourceFootprints:
    def test_vgpr_is_fraction_of_context(self):
        desc = GEMM_KERNEL.descriptor(GPU)
        per_wg_context = desc.context_bytes / desc.num_wgs
        assert desc.vgpr_bytes_per_wg <= per_wg_context
        assert desc.vgpr_bytes_per_wg > 0

    def test_footprints_fit_one_cu(self):
        for spec in TABLE1_SPECS:
            desc = spec.descriptor(GPU)
            assert desc.vgpr_bytes_per_wg <= GPU.vgpr_bytes_per_cu
            assert desc.lds_bytes_per_wg <= GPU.lds_bytes_per_cu

    def test_gmm_is_latency_bound(self):
        assert GMM_KERNEL.cu_concurrency > GPUConfig().simd_per_cu


class TestScaling:
    def test_scaled_threads(self):
        scaled = GEMM_KERNEL.scaled("x.gemm", thread_factor=2.0)
        assert scaled.threads == 2048

    def test_scaled_work(self):
        scaled = GEMM_KERNEL.scaled("x.gemm", work_factor=4.0)
        assert scaled.isolated_us == pytest.approx(127.48 * 4)

    def test_scaled_preserves_wg_size(self):
        scaled = GEMM_KERNEL.scaled("x.gemm", thread_factor=0.5)
        assert scaled.threads_per_wg == GEMM_KERNEL.threads_per_wg

    def test_scale_below_one_wg_clamps(self):
        scaled = LSTM_KERNELS["TK4"].scaled("x.tk4", thread_factor=0.1)
        assert scaled.threads == scaled.threads_per_wg


class TestValidation:
    def test_bad_exec_time_rejected(self):
        with pytest.raises(WorkloadError):
            KernelSpec("bad", 0.0, 64, 64, 1.0)

    def test_bad_wg_size_rejected(self):
        with pytest.raises(WorkloadError):
            KernelSpec("bad", 1.0, 64, 0, 1.0)

    def test_num_wgs_rounds_up(self):
        spec = KernelSpec("x", 1.0, 100, 64, 1.0)
        assert spec.num_wgs == 2
