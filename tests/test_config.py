"""Unit tests for the system configuration (Table 2 parameters)."""

import dataclasses

import pytest

from repro.config import (DEFAULT_CONFIG, EnergyConfig, GPUConfig,
                          OverheadConfig, SimConfig)
from repro.errors import ConfigError
from repro.units import US


class TestGPUConfig:
    def test_table2_defaults(self):
        gpu = GPUConfig()
        assert gpu.num_cus == 8
        assert gpu.simd_per_cu == 4
        assert gpu.wavefronts_per_simd == 10
        assert gpu.threads_per_cu == 2560
        assert gpu.vgpr_bytes_per_cu == 256 * 1024
        assert gpu.lds_bytes_per_cu == 64 * 1024
        assert gpu.num_queues == 128

    def test_max_wavefronts_per_cu(self):
        assert GPUConfig().max_wavefronts_per_cu == 40

    def test_full_rate_lanes(self):
        assert GPUConfig().full_rate_lanes == 32

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            GPUConfig().num_cus = 16

    @pytest.mark.parametrize("field", [
        "num_cus", "simd_per_cu", "wavefronts_per_simd", "wavefront_size",
        "threads_per_cu", "vgpr_bytes_per_cu", "lds_bytes_per_cu",
        "num_queues"])
    def test_rejects_non_positive(self, field):
        with pytest.raises(ConfigError):
            GPUConfig(**{field: 0})

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ConfigError):
            GPUConfig(context_bw_bytes_per_ns=0)


class TestOverheadConfig:
    def test_section5_defaults(self):
        over = OverheadConfig()
        assert over.cp_parse_period == 2 * US
        assert over.cp_parse_width == 4
        assert over.host_device_latency == 4 * US
        assert over.baymax_prediction_latency == 50 * US
        assert over.prema_interval == 250 * US
        assert over.lax_update_period == 100 * US

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigError):
            OverheadConfig(cp_parse_period=0)


class TestEnergyConfig:
    def test_defaults_non_negative(self):
        energy = EnergyConfig()
        assert energy.dynamic_watts_per_lane > 0
        assert energy.static_watts > 0

    def test_rejects_negative_power(self):
        with pytest.raises(ConfigError):
            EnergyConfig(static_watts=-1)

    def test_rejects_negative_preemption_energy(self):
        with pytest.raises(ConfigError):
            EnergyConfig(preemption_joules_per_byte=-1e-9)


class TestSimConfig:
    def test_default_config_object(self):
        assert DEFAULT_CONFIG.gpu.num_cus == 8

    def test_replace_creates_modified_copy(self):
        changed = DEFAULT_CONFIG.replace(seed=99)
        assert changed.seed == 99
        assert DEFAULT_CONFIG.seed == 1

    def test_rejects_bad_max_time(self):
        with pytest.raises(ConfigError):
            SimConfig(max_sim_time=0)
