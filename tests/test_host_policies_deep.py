"""Deeper behavioural tests for the CPU-side comparator internals."""

import pytest

from repro.config import SimConfig
from repro.schedulers.cpu_side.bat import BatchMakerScheduler
from repro.schedulers.cpu_side.bay import BaymaxScheduler
from repro.schedulers.cpu_side.lax_host import LaxSoftwareScheduler
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.units import MS, US
from repro.workloads.registry import build_workload

from conftest import make_descriptor, make_job


def run_jobs(policy, jobs):
    system = GPUSystem(policy, SimConfig())
    system.submit_workload(jobs)
    return system, system.run()


class TestBatchMakerGrouping:
    def test_hybrid_models_batch_separately(self):
        policy = BatchMakerScheduler(max_batch=64)
        jobs = build_workload("HYBRID", "low", num_jobs=24, seed=1)
        run_jobs(policy, jobs)
        # Two model families (lstm128 / gru256) cannot share a lock-step
        # batch, so at least two batches must have been dispatched even
        # with an oversized batch limit.
        assert policy.batches_dispatched >= 2

    def test_members_of_a_batch_share_completion_window(self):
        policy = BatchMakerScheduler()
        jobs = [make_job(job_id=i, arrival=10 * US, deadline=100 * MS,
                         descriptors=[make_descriptor(name="a", num_wgs=1,
                                                      wg_work=50 * US),
                                      make_descriptor(name="b", num_wgs=1,
                                                      wg_work=50 * US)])
                for i in range(1, 4)]  # same timestamp -> one batch of 3
        _, metrics = run_jobs(policy, jobs)
        later = [o.completion for o in metrics.outcomes if o.job_id != 1]
        # Lock-step: the batched members complete within one kernel span
        # of each other.
        assert max(later) - min(later) <= 60 * US


class TestBaymaxDrainModel:
    def test_outstanding_decays_with_time(self):
        policy = BaymaxScheduler()
        system = GPUSystem(policy, SimConfig())
        job = make_job(deadline=100 * MS, descriptors=[
            make_descriptor(num_wgs=32, wg_work=500 * US)])
        system.submit_workload([job])
        system.sim.run_until(60 * US)  # past the 50us prediction
        if policy._inflight:
            now = system.sim.now
            early = policy._outstanding(now)
            later = policy._outstanding(now + 200 * US)
            assert later < early
        system.sim.run()

    def test_pending_sorted_by_headroom(self):
        policy = BaymaxScheduler()
        # Two jobs predicted identical, one with a much tighter deadline:
        # after predictions land, the tight one is dispatched first.
        loose = make_job(job_id=0, arrival=10 * US, deadline=50 * MS,
                         descriptors=[make_descriptor(name="k", num_wgs=32,
                                                      wg_work=400 * US)])
        tight = make_job(job_id=1, arrival=10 * US, deadline=2 * MS,
                         descriptors=[make_descriptor(name="k", num_wgs=32,
                                                      wg_work=400 * US)])
        _, metrics = run_jobs(policy, [loose, tight])
        outcomes = {o.job_id: o for o in metrics.outcomes}
        assert outcomes[1].completion <= outcomes[0].completion


class TestLaxSwWindow:
    def test_window_of_one_serialises_jobs(self):
        policy = LaxSoftwareScheduler(window=1)
        jobs = [make_job(job_id=i, arrival=10 * US, deadline=100 * MS,
                         descriptors=[make_descriptor(name="k", num_wgs=4,
                                                      wg_work=100 * US)])
                for i in range(3)]
        _, metrics = run_jobs(policy, jobs)
        spans = sorted((o.completion - o.latency, o.completion)
                       for o in metrics.outcomes)
        # With one job in flight at a time, completions are spread at
        # least one job-execution apart.
        completions = sorted(o.completion for o in metrics.outcomes)
        assert completions[1] - completions[0] >= 90 * US
        assert completions[2] - completions[1] >= 90 * US

    def test_stalled_job_resumes_when_selected(self):
        # More accepted jobs than the window: the overflow job's chain
        # pauses, then resumes once a slot frees, and still completes.
        policy = LaxSoftwareScheduler(window=2)
        descs = [make_descriptor(name=f"k{i}", num_wgs=2, wg_work=80 * US)
                 for i in range(3)]
        jobs = [make_job(job_id=i, arrival=10 * US, deadline=100 * MS,
                         descriptors=descs) for i in range(4)]
        _, metrics = run_jobs(policy, jobs)
        assert all(o.completion is not None for o in metrics.outcomes)


class TestProUtilizationKnob:
    def test_half_cap_serialises_more(self):
        wide = make_descriptor(num_wgs=48, threads_per_wg=256,
                               wg_work=100 * US)
        jobs_a = [make_job(job_id=i, arrival=10 * US, deadline=100 * MS,
                           descriptors=[wide]) for i in range(4)]
        _, generous = run_jobs(make_scheduler("PRO", utilization_cap=1.0),
                               jobs_a)
        jobs_b = [make_job(job_id=i, arrival=10 * US, deadline=100 * MS,
                           descriptors=[wide]) for i in range(4)]
        _, strict = run_jobs(make_scheduler("PRO", utilization_cap=0.6),
                             jobs_b)
        # A tighter utilisation cap can only stretch the makespan.
        assert strict.makespan_ticks >= generous.makespan_ticks
