"""Unit tests for the Figure 4 batching model."""

import pytest

from repro.errors import WorkloadError
from repro.metrics.collector import JobOutcome, RunMetrics
from repro.workloads.batching import (member_response_times,
                                      merge_into_batches)

from conftest import make_descriptor, make_job


def jobs_with_arrivals(arrivals, num_wgs=4):
    return [make_job(job_id=i, arrival=t,
                     descriptors=[make_descriptor(num_wgs=num_wgs)])
            for i, t in enumerate(arrivals)]


class TestMergeIntoBatches:
    def test_batch_of_one_is_identity_shape(self):
        jobs = jobs_with_arrivals([10, 20, 30])
        merged, members = merge_into_batches(jobs, batch_size=1)
        assert len(merged) == 3
        assert [m.arrival for m in merged] == [10, 20, 30]
        assert all(len(v) == 1 for v in members.values())

    def test_batch_waits_for_last_member(self):
        jobs = jobs_with_arrivals([10, 20, 30, 40])
        merged, members = merge_into_batches(jobs, batch_size=4)
        assert len(merged) == 1
        assert merged[0].arrival == 40
        assert members[0] == [10, 20, 30, 40]

    def test_wgs_scale_with_batch(self):
        jobs = jobs_with_arrivals([1, 2], num_wgs=4)
        merged, _ = merge_into_batches(jobs, batch_size=2)
        assert merged[0].kernels[0].num_wgs == 8

    def test_partial_final_batch(self):
        jobs = jobs_with_arrivals([1, 2, 3])
        merged, members = merge_into_batches(jobs, batch_size=2)
        assert len(merged) == 2
        assert len(members[1]) == 1

    def test_template_is_largest_member(self):
        small = make_job(job_id=0, arrival=1,
                         descriptors=[make_descriptor(num_wgs=2)])
        big = make_job(job_id=1, arrival=2,
                       descriptors=[make_descriptor(num_wgs=2),
                                    make_descriptor(num_wgs=2)])
        merged, _ = merge_into_batches([small, big], batch_size=2)
        assert merged[0].num_kernels == 2  # padded to the big member

    def test_zero_batch_rejected(self):
        with pytest.raises(WorkloadError):
            merge_into_batches(jobs_with_arrivals([1]), 0)


class TestMemberResponses:
    def test_responses_relative_to_member_arrivals(self):
        outcome = JobOutcome(job_id=0, benchmark="T", tag=None, arrival=40,
                             deadline=1000, num_kernels=1, total_wgs=4,
                             accepted=True, completion=100)
        metrics = RunMetrics(outcomes=[outcome], end_time=100,
                             first_arrival=0, total_energy_joules=0,
                             dynamic_energy_joules=0, static_energy_joules=0,
                             wg_completions=4)
        responses = member_response_times(metrics, {0: [10, 20, 40]})
        assert responses == [90, 80, 60]

    def test_unfinished_batches_skipped(self):
        outcome = JobOutcome(job_id=0, benchmark="T", tag=None, arrival=40,
                             deadline=1000, num_kernels=1, total_wgs=4)
        metrics = RunMetrics(outcomes=[outcome], end_time=100,
                             first_arrival=0, total_energy_joules=0,
                             dynamic_energy_joules=0, static_energy_joules=0,
                             wg_completions=0)
        assert member_response_times(metrics, {0: [10]}) == []
