"""Reusable hypothesis strategies for workloads, jobs and schedulers.

The property and validation suites all draw random workloads; keeping the
generators here means one tuned definition of "a plausible workload"
(shapes the device can actually host, bounded job counts, mixed deadline
and best-effort work, optional DAG streams) instead of each test file
re-inventing a weaker one.

Everything is shape-bounded so a single draw simulates in milliseconds:
the point of these strategies is coverage of *structure* (arrival
patterns, kernel mixes, dependency graphs), not scale.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.sim.job import Job
from repro.units import US

from conftest import make_descriptor

#: Schedulers exercised by randomized runs: the paper's contribution, its
#: three baselines families (fair rotation, deadline-aware, preemptive)
#: and one host-side policy so the Host command path gets fuzzed too.
REPRESENTATIVE_SCHEDULERS = ("LAX", "RR", "EDF", "PREMA", "LAX-CPU")

scheduler_names = st.sampled_from(REPRESENTATIVE_SCHEDULERS)

#: Kernel shapes the default device can always host at least one WG of.
kernel_descriptors = st.builds(
    make_descriptor,
    name=st.sampled_from(["alpha", "beta", "gamma", "delta"]),
    num_wgs=st.integers(min_value=1, max_value=12),
    threads_per_wg=st.sampled_from([64, 256, 640]),
    wg_work=st.integers(min_value=1, max_value=200).map(lambda u: u * US),
    cu_concurrency=st.sampled_from([4, 8]),
)

#: Relative deadlines from clearly-infeasible to comfortably-loose, or
#: None for best-effort work.
deadlines = st.one_of(
    st.none(),
    st.integers(min_value=50, max_value=5000).map(lambda u: u * US))


@st.composite
def chain_dependencies(draw, num_kernels: int):
    """An explicit DAG over ``num_kernels`` kernels, or None (plain chain).

    Edges only point backwards (the Job constructor's rule); an empty
    tuple marks a dependency-free kernel, so draws include wide fan-out
    streams as well as strict chains.
    """
    if num_kernels < 2 or not draw(st.booleans()):
        return None
    dependencies = {}
    for index in range(1, num_kernels):
        prerequisites = draw(st.lists(
            st.integers(min_value=0, max_value=index - 1),
            max_size=index, unique=True))
        dependencies[index] = tuple(sorted(prerequisites))
    return dependencies


@st.composite
def jobs(draw, job_id: int = 0, max_kernels: int = 4,
         allow_dags: bool = True, allow_best_effort: bool = True):
    """One randomized job: kernel chain or DAG, deadline or best-effort."""
    num_kernels = draw(st.integers(min_value=1, max_value=max_kernels))
    descriptors = [draw(kernel_descriptors) for _ in range(num_kernels)]
    deadline = draw(deadlines if allow_best_effort
                    else deadlines.filter(lambda d: d is not None))
    dependencies = (draw(chain_dependencies(num_kernels))
                    if allow_dags else None)
    arrival = draw(st.integers(min_value=0, max_value=500)) * US
    user_priority = draw(st.integers(min_value=0, max_value=4))
    return Job(job_id=job_id, benchmark="RAND", descriptors=descriptors,
               arrival=arrival, deadline=deadline,
               user_priority=user_priority, dependencies=dependencies)


@st.composite
def workloads(draw, max_jobs: int = 8, max_kernels: int = 4,
              allow_dags: bool = True, allow_best_effort: bool = True):
    """A small randomized workload (1..max_jobs jobs)."""
    count = draw(st.integers(min_value=1, max_value=max_jobs))
    return [draw(jobs(job_id=i, max_kernels=max_kernels,
                      allow_dags=allow_dags,
                      allow_best_effort=allow_best_effort))
            for i in range(count)]


# ----------------------------------------------------------------------
# Streaming arrival sources
# ----------------------------------------------------------------------

@st.composite
def job_templates(draw, max_kernels: int = 3):
    """One streamed job template over small hostable kernels."""
    from repro.workloads.streaming import JobTemplate
    num_kernels = draw(st.integers(min_value=1, max_value=max_kernels))
    descriptors = tuple(draw(kernel_descriptors)
                        for _ in range(num_kernels))
    deadline = draw(deadlines)
    return JobTemplate(benchmark="STREAM", descriptors=descriptors,
                       deadline=deadline,
                       tag=draw(st.sampled_from([None, "a", "b"])),
                       user_priority=draw(st.integers(min_value=0,
                                                      max_value=4)))

#: Arrival rates spanning trickle to device-saturating, jobs/s.
arrival_rates = st.sampled_from([2e4, 1e5, 5e5, 2e6])


@st.composite
def arrival_sources(draw, max_templates: int = 3):
    """A randomized streaming source: Poisson, diurnal or MMPP on-off.

    Templates, weights, seed and the curve's own shape parameters are
    all drawn, so properties quantified over this strategy hold for the
    whole source family, not one tuned configuration.
    """
    from repro.units import MS
    from repro.workloads.streaming import (DiurnalSource, OnOffSource,
                                           PoissonSource)
    count = draw(st.integers(min_value=1, max_value=max_templates))
    templates = [draw(job_templates()) for _ in range(count)]
    weights = draw(st.one_of(
        st.none(),
        st.lists(st.floats(min_value=0.1, max_value=5.0),
                 min_size=count, max_size=count)))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    start = draw(st.sampled_from([0, 17, 1000]))
    kind = draw(st.sampled_from(["poisson", "diurnal", "onoff"]))
    rate = draw(arrival_rates)
    if kind == "poisson":
        return PoissonSource(templates, rate, weights=weights, seed=seed,
                             start=start)
    if kind == "diurnal":
        return DiurnalSource(
            templates, rate,
            amplitude=draw(st.floats(min_value=0.0, max_value=0.95)),
            period_ticks=draw(st.sampled_from([1 * MS, 10 * MS, 100 * MS])),
            weights=weights, seed=seed, start=start)
    return OnOffSource(
        templates, on_rate_jobs_per_s=rate,
        off_rate_jobs_per_s=draw(st.sampled_from([0.0, rate / 10])),
        mean_on_ticks=draw(st.sampled_from([1 * MS, 5 * MS])),
        mean_off_ticks=draw(st.sampled_from([1 * MS, 5 * MS])),
        weights=weights, seed=seed, start=start)
