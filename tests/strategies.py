"""Reusable hypothesis strategies for workloads, jobs and schedulers.

The property and validation suites all draw random workloads; keeping the
generators here means one tuned definition of "a plausible workload"
(shapes the device can actually host, bounded job counts, mixed deadline
and best-effort work, optional DAG streams) instead of each test file
re-inventing a weaker one.

Everything is shape-bounded so a single draw simulates in milliseconds:
the point of these strategies is coverage of *structure* (arrival
patterns, kernel mixes, dependency graphs), not scale.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.sim.job import Job
from repro.units import US

from conftest import make_descriptor

#: Schedulers exercised by randomized runs: the paper's contribution, its
#: three baselines families (fair rotation, deadline-aware, preemptive)
#: and one host-side policy so the Host command path gets fuzzed too.
REPRESENTATIVE_SCHEDULERS = ("LAX", "RR", "EDF", "PREMA", "LAX-CPU")

scheduler_names = st.sampled_from(REPRESENTATIVE_SCHEDULERS)

#: Kernel shapes the default device can always host at least one WG of.
kernel_descriptors = st.builds(
    make_descriptor,
    name=st.sampled_from(["alpha", "beta", "gamma", "delta"]),
    num_wgs=st.integers(min_value=1, max_value=12),
    threads_per_wg=st.sampled_from([64, 256, 640]),
    wg_work=st.integers(min_value=1, max_value=200).map(lambda u: u * US),
    cu_concurrency=st.sampled_from([4, 8]),
)

#: Relative deadlines from clearly-infeasible to comfortably-loose, or
#: None for best-effort work.
deadlines = st.one_of(
    st.none(),
    st.integers(min_value=50, max_value=5000).map(lambda u: u * US))


@st.composite
def chain_dependencies(draw, num_kernels: int):
    """An explicit DAG over ``num_kernels`` kernels, or None (plain chain).

    Edges only point backwards (the Job constructor's rule); an empty
    tuple marks a dependency-free kernel, so draws include wide fan-out
    streams as well as strict chains.
    """
    if num_kernels < 2 or not draw(st.booleans()):
        return None
    dependencies = {}
    for index in range(1, num_kernels):
        prerequisites = draw(st.lists(
            st.integers(min_value=0, max_value=index - 1),
            max_size=index, unique=True))
        dependencies[index] = tuple(sorted(prerequisites))
    return dependencies


@st.composite
def jobs(draw, job_id: int = 0, max_kernels: int = 4,
         allow_dags: bool = True, allow_best_effort: bool = True):
    """One randomized job: kernel chain or DAG, deadline or best-effort."""
    num_kernels = draw(st.integers(min_value=1, max_value=max_kernels))
    descriptors = [draw(kernel_descriptors) for _ in range(num_kernels)]
    deadline = draw(deadlines if allow_best_effort
                    else deadlines.filter(lambda d: d is not None))
    dependencies = (draw(chain_dependencies(num_kernels))
                    if allow_dags else None)
    arrival = draw(st.integers(min_value=0, max_value=500)) * US
    user_priority = draw(st.integers(min_value=0, max_value=4))
    return Job(job_id=job_id, benchmark="RAND", descriptors=descriptors,
               arrival=arrival, deadline=deadline,
               user_priority=user_priority, dependencies=dependencies)


@st.composite
def workloads(draw, max_jobs: int = 8, max_kernels: int = 4,
              allow_dags: bool = True, allow_best_effort: bool = True):
    """A small randomized workload (1..max_jobs jobs)."""
    count = draw(st.integers(min_value=1, max_value=max_jobs))
    return [draw(jobs(job_id=i, max_kernels=max_kernels,
                      allow_dags=allow_dags,
                      allow_best_effort=allow_best_effort))
            for i in range(count)]
