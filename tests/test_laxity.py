"""Unit and property tests for laxity math (Equation 1 / Algorithm 2)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.laxity import (INFINITE_PRIORITY, estimate_completion_time,
                               estimate_remaining_time, laxity_priority,
                               laxity_time)
from repro.core.profiling import KernelProfilingTable
from repro.units import MS, US

from conftest import make_descriptor, make_job

WINDOW = 100 * US


def table_with_rate(name, rate_per_us, until=10 * WINDOW):
    """A profiling table publishing roughly ``rate_per_us`` for ``name``."""
    table = KernelProfilingTable(WINDOW)
    count = max(1, int(rate_per_us * 50))  # completions over 50 us busy
    for _ in range(count):
        table.on_wg_issued(name, 0)
    for _ in range(count):
        table.record_wg_completion(name, 50 * US)
    table.completion_rate(name, until)  # force publication
    return table


class TestRemainingTime:
    def test_zero_when_no_rates(self):
        job = make_job()
        table = KernelProfilingTable(WINDOW)
        assert estimate_remaining_time(job, table, 0) == 0.0

    def test_uses_wg_count_over_rate(self):
        job = make_job(descriptors=[make_descriptor(name="k", num_wgs=10)])
        table = table_with_rate("k", rate_per_us=1.0)
        estimate = estimate_remaining_time(job, table, 10 * WINDOW)
        assert estimate == pytest.approx(10 * US, rel=0.05)

    def test_completed_wgs_reduce_estimate(self):
        job = make_job(descriptors=[make_descriptor(name="k", num_wgs=4)])
        kernel = job.kernels[0]
        kernel.mark_active(0)
        kernel.note_wg_issued(0)
        kernel.note_wg_issued(0)
        kernel.note_wg_completed(1)
        kernel.note_wg_completed(1)
        table = table_with_rate("k", rate_per_us=1.0)
        estimate = estimate_remaining_time(job, table, 10 * WINDOW)
        assert estimate == pytest.approx(2 * US, rel=0.05)

    def test_sums_over_kernels(self):
        descs = [make_descriptor(name="a", num_wgs=5),
                 make_descriptor(name="b", num_wgs=5)]
        job = make_job(descriptors=descs)
        table = table_with_rate("a", rate_per_us=1.0)
        # kernel b has no rate: optimistic zero contribution.
        estimate = estimate_remaining_time(job, table, 10 * WINDOW)
        assert estimate == pytest.approx(5 * US, rel=0.05)


class TestLaxity:
    def test_laxity_is_deadline_minus_completion(self):
        job = make_job(arrival=0, deadline=MS,
                       descriptors=[make_descriptor(name="k", num_wgs=10)])
        table = table_with_rate("k", rate_per_us=1.0)
        now = 10 * WINDOW
        expected = (job.deadline
                    - estimate_completion_time(job, table, now))
        assert laxity_time(job, table, now) == pytest.approx(expected)

    def test_positive_laxity_becomes_priority(self):
        job = make_job(arrival=0, deadline=10 * MS,
                       descriptors=[make_descriptor(name="k", num_wgs=10)])
        table = table_with_rate("k", rate_per_us=1.0)
        now = 10 * WINDOW
        priority = laxity_priority(job, table, now)
        assert priority == pytest.approx(laxity_time(job, table, now))

    def test_predicted_miss_uses_completion_time(self):
        # Tight deadline: remaining alone exceeds it.
        job = make_job(arrival=0, deadline=2 * US,
                       descriptors=[make_descriptor(name="k", num_wgs=100)])
        table = table_with_rate("k", rate_per_us=1.0)
        now = 10 * WINDOW
        # now is past arrival+deadline already -> INF.
        assert laxity_priority(job, table, now) == INFINITE_PRIORITY

    def test_predicted_miss_before_deadline_ranks_below_laxity(self):
        table = table_with_rate("k", rate_per_us=1.0)
        now = 10 * WINDOW
        hopeless = make_job(
            job_id=1, arrival=now - US, deadline=50 * US,
            descriptors=[make_descriptor(name="k", num_wgs=1000)])
        comfortable = make_job(
            job_id=2, arrival=now - US, deadline=100 * MS,
            descriptors=[make_descriptor(name="k", num_wgs=10)])
        p_hopeless = laxity_priority(hopeless, table, now)
        p_comfortable = laxity_priority(comfortable, table, now)
        # The hopeless job's priority value (completion time) exceeds its
        # deadline and so exceeds any positive laxity below that deadline...
        assert p_hopeless > hopeless.deadline - hopeless.elapsed(now)
        # ...but the ordering guarantee of Algorithm 2 is against jobs with
        # positive laxity *under the same deadline scale*.
        urgent = make_job(
            job_id=3, arrival=now - US, deadline=55 * US,
            descriptors=[make_descriptor(name="k", num_wgs=10)])
        assert laxity_priority(urgent, table, now) < p_hopeless

    def test_past_deadline_is_infinite(self):
        job = make_job(arrival=0, deadline=10 * US)
        table = KernelProfilingTable(WINDOW)
        assert laxity_priority(job, table, 20 * US) == INFINITE_PRIORITY
        assert math.isinf(laxity_priority(job, table, 20 * US))


class TestLaxityProperties:
    @given(deadline_us=st.integers(min_value=10, max_value=10_000),
           wgs=st.integers(min_value=1, max_value=500),
           elapsed_us=st.integers(min_value=0, max_value=20_000))
    def test_priority_piecewise_structure(self, deadline_us, wgs, elapsed_us):
        now = 10 * WINDOW + elapsed_us * US
        job = make_job(arrival=10 * WINDOW, deadline=deadline_us * US,
                       descriptors=[make_descriptor(name="k", num_wgs=wgs)])
        table = table_with_rate("k", rate_per_us=1.0)
        priority = laxity_priority(job, table, now)
        completion = estimate_completion_time(job, table, now)
        if elapsed_us * US > job.deadline:
            assert priority == INFINITE_PRIORITY
        elif job.deadline > completion:
            # priority is the laxity, which is within (0, deadline].
            assert 0 < priority <= job.deadline
        else:
            # priority is the completion time, beyond the deadline.
            assert priority >= job.deadline

    @given(wgs_a=st.integers(min_value=1, max_value=100),
           wgs_b=st.integers(min_value=1, max_value=100))
    def test_more_remaining_work_is_more_urgent(self, wgs_a, wgs_b):
        """With equal deadlines/arrivals, the job with more remaining work
        has less laxity, hence a smaller (more urgent) priority value —
        the Figure 3 intuition."""
        table = table_with_rate("k", rate_per_us=1.0)
        now = 10 * WINDOW
        job_a = make_job(job_id=1, arrival=now, deadline=10 * MS,
                         descriptors=[make_descriptor(name="k", num_wgs=wgs_a)])
        job_b = make_job(job_id=2, arrival=now, deadline=10 * MS,
                         descriptors=[make_descriptor(name="k", num_wgs=wgs_b)])
        pa = laxity_priority(job_a, table, now)
        pb = laxity_priority(job_b, table, now)
        if wgs_a > wgs_b:
            assert pa < pb
        elif wgs_a < wgs_b:
            assert pa > pb
        else:
            assert pa == pb
